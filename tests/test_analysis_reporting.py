"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    compare_results,
    continuity_increment,
    describe_result,
    per_round_table,
    sparkline,
)
from repro.core.system import StreamingSystem, run_comparison


@pytest.fixture(scope="module")
def comparison(request):
    from repro.core.config import SystemConfig

    config = SystemConfig(
        num_nodes=40, rounds=10, buffer_capacity=200, scheduling_window=80,
        playback_lag_segments=40, seed=4,
    )
    return run_comparison(config)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped_at_width(self):
        assert len(sparkline([0.5] * 200, width=40)) == 40

    def test_short_series_keeps_length(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_extremes_map_to_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_values_clamped(self):
        assert sparkline([-1.0, 2.0]) == sparkline([0.0, 1.0])


class TestResultReports:
    def test_describe_result_mentions_key_metrics(self, comparison):
        text = describe_result(comparison["continustreaming"])
        assert "stable continuity" in text
        assert "pre-fetch overhead" in text
        assert "continustreaming" in text

    def test_compare_results_contains_both_rows(self, comparison):
        text = compare_results(comparison)
        assert "coolstreaming" in text and "continustreaming" in text

    def test_continuity_increment(self, comparison):
        delta = continuity_increment(comparison)
        assert delta == pytest.approx(
            comparison["continustreaming"].stable_continuity()
            - comparison["coolstreaming"].stable_continuity()
        )

    def test_continuity_increment_requires_both_systems(self, comparison):
        with pytest.raises(KeyError):
            continuity_increment({"coolstreaming": comparison["coolstreaming"]})

    def test_per_round_table(self, comparison):
        result = comparison["continustreaming"]
        table = per_round_table(result, every=2)
        assert "continuity" in table
        assert len(table.splitlines()) == 2 + len(result.rounds[::2])
        with pytest.raises(ValueError):
            per_round_table(result, every=0)
