"""Tests for the three-part Peer Table."""

from __future__ import annotations

import pytest

from repro.dht.peer_table import (
    DhtPeerEntry,
    NeighborEntry,
    OverheardEntry,
    PeerTable,
)
from repro.dht.ring import IdRing


@pytest.fixture
def table(ring: IdRing) -> PeerTable:
    return PeerTable(owner_id=100, ring=ring, max_neighbors=3, max_overheard=5)


class TestConnectedNeighbors:
    def test_add_and_list(self, table):
        assert table.add_neighbor(NeighborEntry(peer_id=7, latency_ms=10))
        assert table.add_neighbor(NeighborEntry(peer_id=9, latency_ms=20))
        assert table.neighbor_ids() == [7, 9]
        assert table.has_neighbor(7)

    def test_capacity_enforced(self, table):
        for peer in (1, 2, 3):
            assert table.add_neighbor(NeighborEntry(peer_id=peer, latency_ms=1))
        assert table.neighbor_slots_free() == 0
        assert not table.add_neighbor(NeighborEntry(peer_id=4, latency_ms=1))

    def test_self_and_duplicates_rejected(self, table):
        assert not table.add_neighbor(NeighborEntry(peer_id=100, latency_ms=1))
        table.add_neighbor(NeighborEntry(peer_id=5, latency_ms=1))
        assert not table.add_neighbor(NeighborEntry(peer_id=5, latency_ms=2))

    def test_remove(self, table):
        table.add_neighbor(NeighborEntry(peer_id=5, latency_ms=1))
        removed = table.remove_neighbor(5)
        assert removed.peer_id == 5
        assert table.remove_neighbor(5) is None

    def test_record_supply_and_worst(self, table):
        table.add_neighbor(NeighborEntry(peer_id=5, latency_ms=1))
        table.add_neighbor(NeighborEntry(peer_id=6, latency_ms=1))
        table.record_supply(5, 30.0)
        table.record_supply(6, 10.0)
        assert table.worst_neighbor() == 6
        table.record_supply(99, 5.0)  # unknown: ignored

    def test_worst_neighbor_empty(self, table):
        assert table.worst_neighbor() is None

    def test_replace_neighbor(self, table):
        table.add_neighbor(NeighborEntry(peer_id=5, latency_ms=1))
        assert table.replace_neighbor(5, NeighborEntry(peer_id=8, latency_ms=2))
        assert table.neighbor_ids() == [8]
        assert not table.replace_neighbor(8, NeighborEntry(peer_id=100, latency_ms=1))


class TestDhtPeers:
    def test_set_dht_peer_assigns_level(self, table, ring):
        level = table.set_dht_peer(101, latency_ms=10)  # distance 1 -> level 1
        assert level == 1
        assert table.dht_peer_at_level(1).peer_id == 101

    def test_set_dht_peer_rejects_self(self, table):
        assert table.set_dht_peer(100, latency_ms=1) is None

    def test_levels_cover_distances(self, table, ring):
        assert table.set_dht_peer(102, 1) == 2      # distance 2
        assert table.set_dht_peer(104, 1) == 3      # distance 4
        assert table.set_dht_peer(100 + 512, 1) == 10

    def test_dht_peer_ids_ordered_by_level(self, table):
        table.set_dht_peer(104, 1)
        table.set_dht_peer(101, 1)
        assert table.dht_peer_ids() == [101, 104]

    def test_closest_dht_peer_is_lowest_level(self, table):
        assert table.closest_dht_peer() is None
        table.set_dht_peer(108, 1)
        table.set_dht_peer(101, 1)
        assert table.closest_dht_peer() == 101

    def test_remove_dht_peer(self, table):
        table.set_dht_peer(101, 1)
        table.remove_dht_peer(101)
        assert table.dht_peer_ids() == []

    def test_routing_candidates_union(self, table):
        table.add_neighbor(NeighborEntry(peer_id=7, latency_ms=1))
        table.set_dht_peer(101, 1)
        assert table.routing_candidates() == [7, 101]


class TestOverheard:
    def test_record_and_cap(self, table):
        for peer in range(1, 9):
            table.record_overheard(OverheardEntry(peer_id=peer, latency_ms=peer))
        assert len(table.overheard) == 5  # capped at max_overheard
        assert table.overheard_ids() == [4, 5, 6, 7, 8]  # newest kept

    def test_rehearing_refreshes_position(self, table):
        table.record_overheard(OverheardEntry(peer_id=1, latency_ms=10))
        table.record_overheard(OverheardEntry(peer_id=2, latency_ms=10))
        table.record_overheard(OverheardEntry(peer_id=1, latency_ms=5))
        assert table.overheard_ids() == [2, 1]
        assert len(table.overheard) == 2

    def test_owner_not_recorded(self, table):
        table.record_overheard(OverheardEntry(peer_id=100, latency_ms=1))
        assert table.overheard == []

    def test_forget_overheard(self, table):
        table.record_overheard(OverheardEntry(peer_id=3, latency_ms=1))
        table.forget_overheard(3)
        assert table.overheard_ids() == []

    def test_lowest_latency_overheard_with_exclusions(self, table):
        table.record_overheard(OverheardEntry(peer_id=1, latency_ms=30))
        table.record_overheard(OverheardEntry(peer_id=2, latency_ms=10))
        table.record_overheard(OverheardEntry(peer_id=3, latency_ms=20))
        assert table.lowest_latency_overheard().peer_id == 2
        assert table.lowest_latency_overheard(exclude=[2]).peer_id == 3
        assert table.lowest_latency_overheard(exclude=[1, 2, 3]) is None


class TestRefresh:
    def test_refresh_fills_levels_from_overheard(self, table):
        table.record_overheard(OverheardEntry(peer_id=101, latency_ms=1))
        table.record_overheard(OverheardEntry(peer_id=104, latency_ms=1))
        updated = table.refresh_dht_peers_from_overheard()
        assert updated == 2
        assert table.dht_peer_at_level(1).peer_id == 101
        assert table.dht_peer_at_level(3).peer_id == 104

    def test_refresh_does_not_replace_other_peer(self, table):
        table.set_dht_peer(102, 1)  # level 2
        table.record_overheard(OverheardEntry(peer_id=103, latency_ms=1))  # also level 2
        table.refresh_dht_peers_from_overheard()
        assert table.dht_peer_at_level(2).peer_id == 102

    def test_adopt_base_table(self, ring):
        base = PeerTable(owner_id=10, ring=ring, max_neighbors=3)
        base.add_neighbor(NeighborEntry(peer_id=20, latency_ms=5))
        base.set_dht_peer(14, 1)
        newcomer = PeerTable(owner_id=500, ring=ring, max_neighbors=3)
        newcomer.adopt_base_table(base)
        # The bootstrap node and its neighbours become overheard candidates.
        assert 10 in newcomer.overheard_ids()
        assert 20 in newcomer.overheard_ids()
        # The copied DHT peer is re-levelled relative to the newcomer.
        assert 14 in newcomer.dht_peer_ids() or 20 in newcomer.dht_peer_ids() or (
            10 in newcomer.dht_peer_ids()
        )
