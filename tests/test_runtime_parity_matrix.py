"""Sim-vs-runtime parity across the built-in scenario matrix.

The acceptance bar: |Δ stable continuity| ≤ 0.03 per scenario, between
the deterministic simulator and a live swarm of the same spec on the
deterministic virtual clock.  Two tiers:

* a **2-scenario smoke** (static + paper-dynamic) that runs on every
  push — both engines, real churn, one overlay size;
* the **full 6-scenario matrix** at a larger size, which takes minutes
  and runs in the nightly/manual CI job (set ``CONTINU_NIGHTLY=1``).

Both tiers run on the virtual clock, so the numbers are bit-reproducible
and independent of machine load — a failure is a real divergence, never
scheduling noise.
"""

import os

import pytest

from repro.runtime.parity import (
    PARITY_TOLERANCE,
    ParityMatrix,
    ParityReport,
    run_parity_matrix,
)

SMOKE_SCENARIOS = ("static", "paper-dynamic")


def _report(scenario: str, sim: float, runtime: float) -> ParityReport:
    return ParityReport(
        scenario=scenario,
        num_nodes=0,
        rounds=0,
        sim_stable_continuity=sim,
        runtime_stable_continuity=runtime,
        sim_prefetch_overhead=0.0,
        runtime_prefetch_overhead=0.0,
        sim_result=None,
        runtime_result=None,
    )


class TestParityMatrixHelpers:
    def test_failures_and_max_delta(self):
        matrix = ParityMatrix(
            reports=(
                _report("good", 0.95, 0.96),
                _report("bad", 0.95, 0.80),
            )
        )
        assert matrix.max_delta == pytest.approx(0.15)
        assert [r.scenario for r in matrix.failures(0.03)] == ["bad"]
        assert matrix.failures(0.2) == []

    def test_formatted_carries_verdicts(self):
        matrix = ParityMatrix(
            reports=(_report("good", 0.95, 0.96), _report("bad", 0.95, 0.80))
        )
        text = matrix.formatted(0.03)
        assert "ok" in text and "FAIL" in text
        assert "max |Δ stable continuity|" in text

    def test_empty_matrix_is_trivially_clean(self):
        matrix = ParityMatrix(reports=())
        assert matrix.max_delta == 0.0
        assert matrix.failures() == []


@pytest.mark.slow
class TestParitySmoke:
    """The 2-scenario parity smoke that runs on every push."""

    def test_static_and_dynamic_parity_within_tolerance(self):
        matrix = run_parity_matrix(
            scenarios=list(SMOKE_SCENARIOS), num_nodes=80, rounds=30, seed=0
        )
        assert [r.scenario for r in matrix.reports] == list(SMOKE_SCENARIOS)
        for report in matrix.reports:
            # both engines must actually stream, not vacuously agree at 0
            assert report.sim_stable_continuity > 0.5, report.formatted()
            assert report.runtime_stable_continuity > 0.5, report.formatted()
        assert matrix.failures(PARITY_TOLERANCE) == [], matrix.formatted()


@pytest.mark.nightly
@pytest.mark.skipif(
    os.environ.get("CONTINU_NIGHTLY") != "1",
    reason="full 6-scenario parity matrix runs in the nightly/manual CI job "
    "(set CONTINU_NIGHTLY=1 to run locally)",
)
class TestParityFullMatrix:
    """All six built-in scenarios, the ISSUE-4 acceptance matrix."""

    def test_every_builtin_scenario_within_tolerance(self):
        from repro.scenarios.library import builtin_names

        matrix = run_parity_matrix()  # every built-in, n=120, rounds=40
        assert [r.scenario for r in matrix.reports] == list(builtin_names())
        assert matrix.failures(PARITY_TOLERANCE) == [], matrix.formatted()
