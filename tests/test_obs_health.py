"""Live telemetry and SLOs: health engine, writers, cockpit, swarm frames.

Covers the run-level health plane from ``docs/observability.md`` →
*Live telemetry & SLOs*: ``--slo`` spec parsing, burn-rate breach
timing (grace/confirm semantics), the watchdog alert catalog, the
streaming :class:`TelemetryWriter` (JSONL + Prometheus exposition),
the :class:`Cockpit` renderer, and the single-process
:class:`LiveSwarm` telemetry source feeding the same stream the
cluster coordinator consumes.
"""

import io
import json

import pytest

from repro.obs import (
    Alert,
    Cockpit,
    HealthEngine,
    ObsConfig,
    SloSpec,
    SloViolation,
    TelemetryWriter,
    load_telemetry_jsonl,
    parse_slo,
    run_live,
)
from repro.runtime import LiveSwarm
from repro.scenarios.library import builtin_scenario


def frame(shard=0, period=0, playing=10, total=10, t=None, gauges=None, **extra):
    """One telemetry frame body in the schema ``LiveSwarm._emit_telemetry`` ships."""
    body = {
        "shard": shard,
        "period": period,
        "t": float(period) if t is None else t,
        "playing": playing,
        "total": total,
        "continuity": (playing / total) if total else 1.0,
        "peers_live": 20,
        "gauges": gauges or {},
        "counters": {},
        "miss_causes": {},
        "flight": [],
    }
    body.update(extra)
    return body


class TestSloSpec:
    def test_parse_full_spec(self):
        slo = SloSpec.parse("continuity>=0.95:burn=3x:grace=5:confirm=4")
        assert slo.target == 0.95
        assert slo.burn == 3.0
        assert slo.grace == 5
        assert slo.confirm == 4
        assert slo.budget == pytest.approx(0.05)

    def test_parse_defaults_and_text_round_trip(self):
        slo = SloSpec.parse("continuity>=0.9")
        assert slo.burn == 3.0
        assert slo.confirm == 2
        assert slo.grace is None
        assert SloSpec.parse(slo.text) == slo

    def test_parse_tolerates_spaces_and_bare_burn(self):
        slo = SloSpec.parse(" continuity >= 0.8 : burn=2 ")
        assert slo.target == 0.8
        assert slo.burn == 2.0

    @pytest.mark.parametrize(
        "spec",
        [
            "latency>=0.95",  # unsupported metric
            "continuity<=0.95",  # unsupported operator
            "continuity>=1.5",  # target out of (0, 1]
            "continuity>=0.95:burn=0x",  # non-positive burn
            "continuity>=0.95:confirm=0",  # confirm below 1
            "continuity>=0.95:frobnicate=1",  # unknown option
            "nonsense",
        ],
    )
    def test_bad_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            SloSpec.parse(spec)

    def test_parse_slo_passes_none_through(self):
        assert parse_slo(None) is None
        assert parse_slo("continuity>=0.9").target == 0.9


class TestBurnRateBreach:
    SLO = SloSpec.parse("continuity>=0.95:burn=2x:grace=1:confirm=2")

    def test_breach_after_confirm_consecutive_burning_periods(self):
        engine = HealthEngine(slo=self.SLO)
        # continuity 0.5 burns at 10x the budget — period 0 is grace,
        # periods 1 and 2 make the confirm=2 streak.
        engine.observe_frame(frame(period=0, playing=5, total=10))
        assert engine.breach is None
        engine.observe_frame(frame(period=1, playing=5, total=10))
        assert engine.breach is None, "one burning period is noise, not a breach"
        engine.observe_frame(frame(period=2, playing=5, total=10))
        assert engine.breach is not None
        assert engine.breach.kind == "continuity_burn"
        assert engine.breach.severity == "critical"
        assert engine.breach.period == 2
        assert "burned the error budget" in engine.breach.message

    def test_good_period_resets_the_streak(self):
        engine = HealthEngine(slo=self.SLO)
        engine.observe_frame(frame(period=0, playing=5, total=10))
        engine.observe_frame(frame(period=1, playing=5, total=10))
        engine.observe_frame(frame(period=2, playing=10, total=10))  # recovers
        engine.observe_frame(frame(period=3, playing=5, total=10))
        assert engine.breach is None, "non-consecutive burn must not breach"

    def test_grace_periods_never_count(self):
        slo = SloSpec.parse("continuity>=0.95:burn=2x:confirm=1")
        engine = HealthEngine(slo=slo, grace=3)
        for period in range(3):
            engine.observe_frame(frame(period=period, playing=0, total=10))
        assert engine.breach is None
        engine.observe_frame(frame(period=3, playing=0, total=10))
        assert engine.breach is not None
        assert engine.breach.period == 3

    def test_no_slo_means_no_breach_ever(self):
        engine = HealthEngine()
        for period in range(6):
            engine.observe_frame(frame(period=period, playing=0, total=10))
        assert engine.breach is None
        assert engine.alerts == []

    def test_breach_writes_a_postmortem_to_the_recorder(self):
        events, postmortems = [], []

        class Recorder:
            def flight(self, event, **fields):
                events.append((event, fields))

            def postmortem(self, reason):
                postmortems.append(reason)

        engine = HealthEngine(slo=self.SLO, recorder=Recorder())
        for period in range(3):
            engine.observe_frame(frame(period=period, playing=5, total=10))
        assert [e for e, _ in events] == ["alert"]
        assert events[0][1]["kind"] == "continuity_burn"
        assert len(postmortems) == 1
        assert "SLO breach" in postmortems[0]

    def test_violation_carries_the_alert_and_obs(self):
        alert = Alert(kind="continuity_burn", severity="critical", message="boom")
        exc = SloViolation(alert, obs={"spans": []})
        assert exc.alert is alert
        assert exc.obs == {"spans": []}
        assert "boom" in str(exc)
        assert isinstance(exc, RuntimeError)


class TestPeriodClosing:
    def test_period_closes_only_when_every_known_shard_reported(self):
        engine = HealthEngine(expected_shards=2)
        engine.observe_frame(frame(shard=0, period=0, playing=3, total=10))
        assert engine._closed_through == -1, "shard 1 has not been heard from"
        engine.observe_frame(frame(shard=1, period=0, playing=7, total=10))
        assert engine._closed_through == 0
        # Run-level continuity sums playing/total across the fleet.
        period, continuity, _ = engine.continuity[-1]
        assert period == 0
        assert continuity == pytest.approx(0.5)
        # Period 1 stays open until the slower shard reports it too.
        engine.observe_frame(frame(shard=0, period=1, playing=9, total=10))
        assert engine._closed_through == 0, "shard 1 has not reported period 1"
        engine.observe_frame(frame(shard=1, period=1, playing=7, total=10))
        assert engine._closed_through == 1
        assert engine.continuity[-1][1] == pytest.approx(0.8)

    def test_dead_shard_unblocks_closing_on_the_survivors(self):
        engine = HealthEngine()
        engine.observe_frame(frame(shard=0, period=0))
        engine.observe_frame(frame(shard=1, period=0))
        engine.observe_frame(frame(shard=0, period=1))
        engine.observe_frame(frame(shard=0, period=2))
        assert engine._closed_through == 0, "gated on shard 1"
        engine.mark_shard_dead(1)
        assert engine._closed_through == 2
        assert engine.dead_shards == {1}

    def test_empty_period_defaults_to_full_continuity(self):
        engine = HealthEngine()
        engine.observe_frame(frame(period=0, playing=0, total=0))
        _, continuity, burn = engine.continuity[-1]
        assert continuity == 1.0
        assert burn == 0.0

    def test_shard_dead_before_first_frame_still_unblocks_the_fleet(self):
        # A shard killed before it ever reports must count toward the
        # expected fleet via dead_shards, or no period would ever close.
        engine = HealthEngine(expected_shards=2)
        engine.observe_frame(frame(shard=0, period=0, playing=6, total=10))
        engine.observe_frame(frame(shard=0, period=1, playing=8, total=10))
        assert engine._closed_through == -1, "shard 1 was never heard from"
        engine.mark_shard_dead(1, reason="SIGKILL before first frame")
        assert engine._closed_through == 1, "survivor's periods close now"
        assert [c for _, c, _ in engine.continuity] == [
            pytest.approx(0.6),
            pytest.approx(0.8),
        ]
        dead = [a for a in engine.alerts if a.kind == "shard_dead"]
        assert len(dead) == 1
        assert dead[0].period is None, "no last period — it never reported"
        # Frames from the survivor keep closing periods afterwards.
        engine.observe_frame(frame(shard=0, period=2, playing=10, total=10))
        assert engine._closed_through == 2


class TestFrameRejection:
    """Frames without a valid shard id are dropped, not coerced to shard 0."""

    @pytest.mark.parametrize(
        "body",
        [
            frame(shard=None),
            frame(shard="1"),
            frame(shard=1.0),
            frame(shard=True),
            frame(shard=-1),
            {"period": 0, "playing": 5, "total": 10},  # no shard key at all
        ],
    )
    def test_invalid_shard_is_rejected_without_polluting_state(self, body):
        engine = HealthEngine()
        engine.observe_frame(body)
        assert engine.rejected_frames == 1
        assert engine.shards == {}, "no shard record was fabricated"
        assert engine._acc == {}, "no playback accumulated"
        assert engine._closed_through == -1

    def test_rejection_counts_accumulate_and_valid_frames_still_land(self):
        engine = HealthEngine()
        engine.observe_frame(frame(shard=None, playing=0, total=10))
        engine.observe_frame(frame(shard=0, period=0, playing=9, total=10))
        engine.observe_frame(frame(shard="oops", period=0, playing=0, total=10))
        assert engine.rejected_frames == 2
        assert engine.shards[0].frames == 1
        # The rejected frames' zeros never reached the rollup.
        assert engine.continuity[-1][1] == pytest.approx(0.9)

    def test_snapshot_surfaces_the_rejected_count(self):
        engine = HealthEngine()
        engine.observe_frame(frame(shard=None))
        engine.observe_frame(frame(shard=0, period=0))
        snap = engine.snapshot()
        json.dumps(snap)
        assert snap["rejected_frames"] == 1


class TestWatchdogs:
    def test_dilation_stretch_warns_once_and_rearms(self):
        engine = HealthEngine()
        engine.observe_frame(frame(period=0, gauges={"dilation_stretch": 5.0}))
        engine.observe_frame(frame(period=1, gauges={"dilation_stretch": 6.0}))
        stretch = [a for a in engine.alerts if a.kind == "dilation_stretch"]
        assert len(stretch) == 1, "one alert per episode"
        assert stretch[0].severity == "warn"
        # Recovery re-arms the watchdog; a new episode alerts again.
        engine.observe_frame(frame(period=2, gauges={"dilation_stretch": 1.0}))
        engine.observe_frame(frame(period=3, gauges={"dilation_stretch": 13.0}))
        stretch = [a for a in engine.alerts if a.kind == "dilation_stretch"]
        assert len(stretch) == 2
        assert stretch[1].severity == "critical"

    def test_credit_starvation_needs_a_stuck_streak(self):
        engine = HealthEngine()
        for period in range(2):
            engine.observe_frame(
                frame(period=period, gauges={"credit_pending_total": 4.0})
            )
        assert not any(a.kind == "credit_starvation" for a in engine.alerts)
        engine.observe_frame(frame(period=2, gauges={"credit_pending_total": 4.0}))
        starving = [a for a in engine.alerts if a.kind == "credit_starvation"]
        assert len(starving) == 1
        assert starving[0].severity == "warn"
        # Credits draining to zero ends the episode.
        engine.observe_frame(frame(period=3, gauges={"credit_pending_total": 0.0}))
        assert engine.shards[0].credit_streak == 0

    def test_lagging_shard_trips_the_stall_watchdog(self):
        engine = HealthEngine()
        engine.observe_frame(frame(shard=1, period=0))
        for period in range(5):
            engine.observe_frame(frame(shard=0, period=period))
        stalls = [a for a in engine.alerts if a.kind == "telemetry_stall"]
        assert len(stalls) == 1
        assert stalls[0].shard == 1

    def test_shard_dead_alerts_exactly_once(self):
        engine = HealthEngine()
        engine.observe_frame(frame(shard=0, period=2))
        engine.mark_shard_dead(0, reason="SIGKILL")
        engine.mark_shard_dead(0)
        dead = [a for a in engine.alerts if a.kind == "shard_dead"]
        assert len(dead) == 1
        assert dead[0].severity == "critical"
        assert "shard 0 presumed dead (SIGKILL)" in dead[0].message
        assert dead[0].period == 2

    def test_drain_alerts_returns_each_alert_once(self):
        engine = HealthEngine()
        engine.mark_shard_dead(0)
        first = engine.drain_alerts()
        assert [a.kind for a in first] == ["shard_dead"]
        assert engine.drain_alerts() == []
        assert engine.alerts == first, "history is kept even after draining"

    def test_snapshot_is_json_friendly(self):
        engine = HealthEngine(slo=SloSpec.parse("continuity>=0.9"), grace=1)
        engine.observe_frame(frame(period=0, gauges={"dilation_stretch": 5.0}))
        engine.mark_shard_dead(1)
        snap = engine.snapshot()
        json.dumps(snap)  # must serialise as-is
        assert snap["slo"] == "continuity>=0.9:burn=3x"
        assert snap["grace"] == 1
        assert snap["dead_shards"] == [1]
        assert snap["closed_through"] == 0
        assert snap["breach"] is None
        assert [a["kind"] for a in snap["alerts"]] == ["dilation_stretch", "shard_dead"]
        assert snap["shards"][0]["frames"] == 1


class TestTelemetryWriter:
    def test_jsonl_stream_and_exposition(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            writer.frame(
                frame(
                    shard=0, period=0, playing=9, total=10,
                    gauges={"dilation_stretch": 1.0},
                    counters={"messages_sent": 5},
                    miss_causes={"delivered_late": 1},
                )
            )
            writer.frame(frame(shard=0, period=1, counters={"messages_sent": 7}))
            writer.frame(frame(shard=1, period=1))
            writer.alert(
                Alert(kind="shard_dead", severity="critical", message="gone", shard=1)
            )
        records = list(load_telemetry_jsonl(path))
        assert [r["type"] for r in records] == [
            "telemetry", "telemetry", "telemetry", "alert",
        ]
        assert records[0]["continuity"] == pytest.approx(0.9)
        assert records[3]["kind"] == "shard_dead"

        prom = writer.exposition_path.read_text()
        assert writer.exposition_path.name == "telemetry.jsonl.prom"
        assert "# TYPE continu_continuity gauge" in prom
        assert 'continu_telemetry_period{shard="1"} 1' in prom
        # Counters accumulate the per-frame deltas.
        assert 'continu_messages_sent{shard="0"} 12' in prom
        assert "# TYPE continu_miss_cause_delivered_late counter" in prom

    def test_metric_names_are_sanitized_to_the_prom_charset(self, tmp_path):
        """Scenario-derived names with quotes/backslashes/newlines must
        still produce a parseable exposition file."""
        import re

        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path) as writer:
            writer.frame(
                frame(
                    shard=0,
                    gauges={'weird "gauge"\nwith\\stuff': 1.5, "dotted.name-x": 2.0},
                    counters={"3starts_with_digit": 4.0},
                    miss_causes={'ca"use\\with\nnewline': 2},
                )
            )
        prom = writer.exposition_path.read_text()
        assert "continu_weird__gauge__with_stuff" in prom
        assert "continu_dotted_name_x" in prom
        assert "continu__3starts_with_digit" in prom
        assert "continu_miss_cause_ca_use_with_newline" in prom
        # Every non-comment line must match the exposition grammar.
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*\{shard="[^"\n]*"\} \S+$'
        )
        for line in prom.splitlines():
            if not line or line.startswith("# "):
                continue
            assert sample.match(line), line

    def test_colliding_sanitized_names_merge_instead_of_duplicating(self, tmp_path):
        with TelemetryWriter(tmp_path / "t.jsonl") as writer:
            writer.frame(frame(shard=0, counters={"a.b": 1.0, "a-b": 2.0}))
        prom = writer.exposition_path.read_text()
        assert prom.count('continu_a_b{shard="0"}') == 1
        assert 'continu_a_b{shard="0"} 3' in prom

    def test_label_values_escape_quotes_backslashes_newlines(self):
        from repro.obs.live import _prom_escape

        assert _prom_escape('a"b') == 'a\\"b'
        assert _prom_escape("a\\b") == "a\\\\b"
        assert _prom_escape("a\nb") == "a\\nb"

    def test_namespace_is_sanitized_too(self, tmp_path):
        with TelemetryWriter(
            tmp_path / "t.jsonl", namespace='bad "ns"'
        ) as writer:
            writer.frame(frame(shard=0))
        prom = writer.exposition_path.read_text()
        assert "bad__ns__continuity" in prom

    def test_writer_counts_and_close_is_idempotent(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        writer.frame(frame())
        writer.alert({"kind": "x", "severity": "warn", "message": "m"})
        writer.close()
        writer.close()
        assert writer.frames == 1
        assert writer.alerts == 1


class TestCockpit:
    def feed_run(self, cockpit):
        for period in range(4):
            cockpit.feed(
                frame(
                    shard=0, period=period, playing=8 + period % 2, total=10,
                    gauges={"dilation_stretch": 2.0, "messages_sent": 40},
                    miss_causes={"delivered_late": 1},
                )
            )
            cockpit.feed(frame(shard=1, period=period))

    def test_render_shows_every_shard_and_miss_causes(self):
        cockpit = Cockpit()
        self.feed_run(cockpit)
        text = cockpit.render()
        assert "live cockpit — period 3, 2 shard(s), 8 frame(s)" in text
        assert "shard 0" in text and "shard 1" in text
        assert "stretch 2.0x" in text
        assert "miss causes: delivered_late=4" in text
        assert "alerts: none" in text

    def test_alerts_feed_into_the_tail(self):
        cockpit = Cockpit()
        self.feed_run(cockpit)
        cockpit.feed_alert(
            Alert(
                kind="continuity_burn", severity="critical",
                message="budget burned", period=3,
            )
        )
        text = cockpit.render()
        assert "[critical] continuity_burn @p3: budget burned" in text
        assert cockpit.alert_count == 1

    def test_feed_record_dispatches_and_counts_unknown_types(self):
        cockpit = Cockpit()
        cockpit.feed_record({"type": "telemetry", **frame()})
        cockpit.feed_record({"type": "alert", "kind": "x", "severity": "warn",
                             "message": "m"})
        cockpit.feed_record({"type": "mystery"})
        assert cockpit.frames == 1
        assert cockpit.alert_count == 1
        assert cockpit.skipped == 1


class TestRunLive:
    def test_once_renders_from_a_stream_with_garbage_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        lines = [
            json.dumps({"type": "telemetry", **frame(period=0)}),
            "{not json",
            json.dumps({"type": "telemetry", **frame(period=1, playing=5)}),
            json.dumps({
                "type": "alert", "kind": "continuity_burn",
                "severity": "critical", "message": "m", "period": 1,
            }),
            '{"type": "telemetry", "period": 2, "contin',  # torn mid-append
        ]
        path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        cockpit = run_live(path, once=True, out=out)
        assert cockpit.frames == 2
        assert cockpit.alert_count == 1
        assert cockpit.skipped >= 1
        assert "live cockpit" in out.getvalue()
        assert "continuity_burn" in out.getvalue()


class TestSwarmTelemetry:
    """The single-process LiveSwarm feeds the same stream the cluster does."""

    def run_with_sink(self, obs, rounds=8, sink=None, spec_seed=3):
        spec = builtin_scenario("static").scaled(
            num_nodes=30, rounds=rounds, seed=spec_seed
        )
        swarm = LiveSwarm(spec, clock="virtual", obs=obs)
        frames = []
        swarm.telemetry_sink = sink if sink is not None else frames.append
        result = swarm.run()
        return result, frames

    def test_one_frame_per_period_with_the_full_schema(self):
        result, frames = self.run_with_sink(ObsConfig(trace_sample=4))
        assert [f["period"] for f in frames] == list(range(8))
        body = frames[-1]
        assert {
            "shard", "period", "t", "playing", "total", "continuity",
            "peers_live", "gauges", "counters", "miss_causes", "flight",
        } <= set(body)
        assert 0.0 <= body["continuity"] <= 1.0
        assert body["gauges"]["peers_live"] == body["peers_live"]
        # The final frame's gauges reflect the run's end state.
        assert body["gauges"]["messages_sent"] == result.messages_sent

    def test_telemetry_every_thins_the_stream(self):
        _, frames = self.run_with_sink(ObsConfig(trace_sample=4, telemetry_every=3))
        assert [f["period"] for f in frames] == [0, 3, 6]

    def test_no_frames_without_obs_or_with_telemetry_off(self):
        _, no_obs = self.run_with_sink(None)
        _, telemetry_off = self.run_with_sink(ObsConfig(telemetry=False))
        assert no_obs == []
        assert telemetry_off == []

    def test_attached_sink_does_not_perturb_the_run(self):
        base, _ = self.run_with_sink(ObsConfig(trace_sample=4), sink=lambda body: None)
        with_frames, frames = self.run_with_sink(ObsConfig(trace_sample=4))
        assert frames
        assert with_frames.continuity_series() == base.continuity_series()
        assert with_frames.messages_sent == base.messages_sent

    def test_sink_raising_slo_violation_aborts_with_obs_attached(self):
        engine = HealthEngine(
            slo=SloSpec.parse("continuity>=0.999:burn=1x:confirm=1"), grace=0
        )

        def sink(body):
            engine.observe_frame(body)
            if engine.breach is not None:
                raise SloViolation(engine.breach)

        spec = builtin_scenario("static").scaled(num_nodes=30, rounds=12, seed=1)
        import dataclasses

        spec = dataclasses.replace(spec, loss_rate=0.4)
        swarm = LiveSwarm(spec, clock="virtual", obs=ObsConfig(trace_sample=8))
        swarm.telemetry_sink = sink
        with pytest.raises(SloViolation) as excinfo:
            swarm.run()
        exc = excinfo.value
        assert exc.alert.kind == "continuity_burn"
        assert exc.obs is not None, "the swarm attaches its export at abort"
        assert any(
            "SLO breach" in p["reason"] for p in exc.obs["postmortems"]
        ) or engine.breach is not None
