"""The campaign runner's live-runtime backend.

ISSUE 4's tentpole acceptance: ``campaign --backend runtime`` fans the
same scenario × seed × size grid over live virtual-clock swarms with the
same SHA-256 per-cell seeding and a byte-compatible JSONL schema, and the
run is **deterministic modulo wall-time fields** — the only field of a
cell record allowed to differ between two runs of the same grid is
``wall_time_s`` (wall-clock cost is machine-dependent by nature; every
metric is produced on the deterministic virtual clock).
"""

import json

import pytest

from repro.scenarios import (
    BACKENDS,
    CampaignSpec,
    CellResult,
    METRIC_NAMES,
    ResultsStore,
    builtin_scenario,
    run_campaign,
    run_cell,
)
from repro.scenarios.campaign import cell_seed_for

#: The one record field excluded from the determinism guarantee (see the
#: module docstring and docs/scenarios.md).
WALL_TIME_FIELDS = ("wall_time_s",)


def tiny_spec(name="static", num_nodes=25, rounds=6):
    return builtin_scenario(name).scaled(num_nodes=num_nodes, rounds=rounds)


def stripped(record):
    data = dict(record)
    for field in WALL_TIME_FIELDS:
        data.pop(field, None)
    return data


class TestBackendValidation:
    def test_known_backends(self):
        assert BACKENDS == ("sim", "runtime", "cluster")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            CampaignSpec(scenarios=(tiny_spec(),), backend="cluster", shards=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            CampaignSpec(scenarios=(tiny_spec(),), backend="telepathy")

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ValueError, match="time_scale"):
            CampaignSpec(scenarios=(tiny_spec(),), backend="runtime", time_scale=0.0)

    def test_run_cell_rejects_unknown_backend(self):
        payload = {
            "scenario": tiny_spec().to_dict(),
            "system": "continustreaming",
            "num_nodes": 25,
            "rounds": 2,
            "seed": 0,
            "cell_seed": 1,
            "backend": "telepathy",
        }
        with pytest.raises(ValueError, match="backend"):
            run_cell(payload)


class TestSchemaCompatibility:
    """Runtime cells are byte-compatible with sim cells: same fields,
    same metric names, same summary structure."""

    @pytest.fixture(scope="class")
    def paired_stores(self):
        stores = {}
        for backend in BACKENDS:
            stores[backend] = run_campaign(
                [tiny_spec()], seeds=(0, 1), backend=backend
            )
        return stores

    def test_metric_names_identical_across_backends(self, paired_stores):
        for backend, store in paired_stores.items():
            for cell in store:
                assert tuple(sorted(cell.metrics)) == tuple(sorted(METRIC_NAMES)), (
                    backend
                )

    def test_record_fields_identical_across_backends(self, paired_stores):
        sim_fields = {
            frozenset(cell.to_record()) for cell in paired_stores["sim"]
        }
        runtime_fields = {
            frozenset(cell.to_record()) for cell in paired_stores["runtime"]
        }
        assert sim_fields == runtime_fields

    def test_summary_structure_identical_across_backends(self, paired_stores):
        summaries = {
            backend: store.summary() for backend, store in paired_stores.items()
        }
        assert set(summaries["sim"]) == set(summaries["runtime"])
        for group in summaries["sim"]:
            assert set(summaries["sim"][group]) == set(summaries["runtime"][group])

    def test_cell_seeds_are_backend_independent(self, paired_stores):
        sim_seeds = {
            (c.scenario, c.num_nodes, c.seed): c.cell_seed
            for c in paired_stores["sim"]
        }
        runtime_seeds = {
            (c.scenario, c.num_nodes, c.seed): c.cell_seed
            for c in paired_stores["runtime"]
        }
        assert sim_seeds == runtime_seeds
        for (scenario, nodes, seed), cell_seed in sim_seeds.items():
            assert cell_seed == cell_seed_for(seed, scenario, nodes)

    def test_backend_recorded_on_every_cell(self, paired_stores):
        for backend, store in paired_stores.items():
            assert {cell.backend for cell in store} == {backend}

    def test_runtime_cells_actually_streamed(self, paired_stores):
        for cell in paired_stores["runtime"]:
            assert cell.metrics["stable_continuity"] > 0.5
            assert cell.rounds == 6

    def test_legacy_records_without_backend_still_load(self):
        record = {
            "scenario": "static", "system": "continustreaming",
            "num_nodes": 10, "seed": 0, "cell_seed": 1, "rounds": 2,
            "metrics": {"stable_continuity": 1.0}, "wall_time_s": 0.1,
        }
        cell = CellResult.from_record(record)
        assert cell.backend == "sim"


class TestRuntimeBackendDeterminism:
    """Same grid twice ⇒ identical JSONL modulo wall-time fields."""

    def _run(self, tmp_path, tag, workers):
        path = tmp_path / f"{tag}.jsonl"
        store = run_campaign(
            [tiny_spec(), tiny_spec("paper-dynamic")],
            seeds=(0, 1),
            backend="runtime",
            workers=workers,
            results_path=path,
        )
        assert store.is_complete
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    @pytest.mark.slow
    def test_repeated_grids_identical_modulo_wall_time(self, tmp_path):
        first = self._run(tmp_path, "first", workers=1)
        second = self._run(tmp_path, "second", workers=1)
        assert [stripped(r) for r in first] == [stripped(r) for r in second]

    @pytest.mark.slow
    def test_worker_count_does_not_change_results(self, tmp_path):
        serial = self._run(tmp_path, "serial", workers=1)
        parallel = self._run(tmp_path, "parallel", workers=2)
        assert [stripped(r) for r in serial] == [stripped(r) for r in parallel]

    def test_wall_time_is_the_only_machine_dependent_field(self):
        """The exclusion list documents itself: a cell record consists of
        the coordinates, the backend, deterministic metrics — and the
        wall-time field(s) listed in :data:`WALL_TIME_FIELDS`."""
        record = run_cell(
            {
                "scenario": tiny_spec().to_dict(),
                "system": "continustreaming",
                "num_nodes": 25,
                "rounds": 3,
                "seed": 0,
                "cell_seed": 42,
                "backend": "runtime",
            }
        )
        assert set(WALL_TIME_FIELDS) <= set(record)
        deterministic_fields = set(stripped(record))
        assert deterministic_fields == {
            "scenario", "system", "num_nodes", "seed", "cell_seed",
            "rounds", "backend", "metrics",
        }


class TestRuntimeBackendCli:
    def test_campaign_backend_flag(self, capsys):
        from repro.experiments.runner import main

        code = main(
            [
                "campaign", "--backend", "runtime", "--scenario", "static",
                "--seeds", "2", "--nodes", "20", "--rounds", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign[runtime]" in out
        assert "static/continustreaming/n20" in out

    def test_campaign_defaults_to_sim_backend(self, capsys):
        from repro.experiments.runner import main

        code = main(
            [
                "campaign", "--scenario", "static",
                "--seeds", "1", "--nodes", "20", "--rounds", "2",
            ]
        )
        assert code == 0
        assert "campaign[sim]" in capsys.readouterr().out


class TestClusterBackend:
    """Cluster cells: multi-process swarms behind the same campaign schema."""

    def test_cluster_cell_reports_the_standard_schema(self):
        store = run_campaign(
            [tiny_spec(num_nodes=24, rounds=6)],
            seeds=[0],
            backend="cluster",
            shards=2,
            # Pool workers are daemonic and cannot host shard processes;
            # the runner must fall back to serial cells on its own.
            workers=4,
        )
        assert store.is_complete
        (cell,) = list(store)
        assert cell.backend == "cluster"
        assert set(cell.metrics) == set(METRIC_NAMES)
        assert cell.metrics["stable_continuity"] > 0.0
        assert cell.cell_seed == cell_seed_for(0, "static", 24)


class TestCampaignObs:
    """``--obs`` rides the grid: collision-free per-cell obs JSONL exports."""

    def test_runtime_grid_writes_one_obs_file_per_cell(self, tmp_path):
        from repro.obs import ObsConfig, load_obs_jsonl

        store = run_campaign(
            [tiny_spec(num_nodes=20, rounds=4)],
            seeds=(0, 1),
            backend="runtime",
            obs=ObsConfig(trace_sample=8),
            obs_dir=tmp_path,
        )
        assert store.is_complete
        files = sorted(p.name for p in tmp_path.glob("obs_*.jsonl"))
        assert files == [
            "obs_static_continustreaming_n20_s0_runtime.jsonl",
            "obs_static_continustreaming_n20_s1_runtime.jsonl",
        ]
        for path in tmp_path.glob("obs_*.jsonl"):
            loaded = load_obs_jsonl(path)
            assert loaded["metrics"]["series"], path
        # ...and the grid results themselves are untouched by obs.
        for cell in store:
            assert cell.metrics["stable_continuity"] > 0.5

    def test_cell_obs_filenames_cannot_collide_and_are_sanitized(self):
        from repro.scenarios.campaign import cell_obs_filename

        payloads = [
            {"scenario": {"name": "static"}, "system": "continustreaming",
             "num_nodes": 20, "seed": 0, "backend": "runtime"},
            {"scenario": {"name": "static"}, "system": "continustreaming",
             "num_nodes": 20, "seed": 1, "backend": "runtime"},
            {"scenario": {"name": "static"}, "system": "continustreaming",
             "num_nodes": 200, "seed": 0, "backend": "runtime"},
            {"scenario": {"name": "static"}, "system": "continustreaming",
             "num_nodes": 20, "seed": 0, "backend": "cluster"},
            {"scenario": {"name": "paper-dynamic"}, "system": "continustreaming",
             "num_nodes": 20, "seed": 0, "backend": "runtime"},
        ]
        names = [cell_obs_filename(p) for p in payloads]
        assert len(set(names)) == len(names), names
        hostile = cell_obs_filename(
            {"scenario": {"name": "evil/../name with spaces"},
             "system": "sys$tem", "num_nodes": 5, "seed": 0}
        )
        assert "/" not in hostile and " " not in hostile
        assert hostile.startswith("obs_") and hostile.endswith(".jsonl")

    def test_hybrid_and_full_runs_of_the_same_cell_do_not_collide(self):
        from repro.scenarios.campaign import cell_obs_filename

        cell = {"scenario": {"name": "static"}, "system": "continustreaming",
                "num_nodes": 20, "seed": 0, "backend": "runtime"}
        full = cell_obs_filename(cell)
        hybrid = cell_obs_filename({**cell, "fidelity": "hybrid", "core_peers": 50})
        hybrid_default = cell_obs_filename({**cell, "fidelity": "hybrid"})
        assert len({full, hybrid, hybrid_default}) == 3, (full, hybrid, hybrid_default)
        # The full-fidelity name is pinned: adding the fidelity knob must
        # not rename every obs artifact ever written by earlier releases.
        assert full == "obs_static_continustreaming_n20_s0_runtime.jsonl"
        assert hybrid == "obs_static_continustreaming_n20_s0_runtime_hybrid-c50.jsonl"
        assert cell_obs_filename({**cell, "fidelity": "full"}) == full

    def test_sim_backend_rejects_obs(self):
        from repro.obs import ObsConfig

        with pytest.raises(ValueError, match="sim backend"):
            CampaignSpec(
                scenarios=(tiny_spec(),), backend="sim",
                obs=ObsConfig(),
            )

    def test_obs_dir_requires_obs(self):
        with pytest.raises(ValueError, match="obs"):
            CampaignSpec(
                scenarios=(tiny_spec(),), backend="runtime", obs_dir="/tmp/x",
            )
