"""Tests for the Urgent Line mechanism and the on-demand retrieval (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ondemand import OnDemandRetriever, PrefetchPlan
from repro.core.urgent_line import UrgentLine
from repro.dht.hashing import backup_keys
from repro.dht.network import DhtNetwork
from repro.net.message import ROUTING_MESSAGE_BITS


def make_line(**overrides) -> UrgentLine:
    params = dict(
        buffer_capacity=600,
        playback_rate=10.0,
        period=1.0,
        hop_latency=0.05,
        fetch_time=0.4,
        prefetch_limit=5,
    )
    params.update(overrides)
    return UrgentLine(**params)


class TestUrgentLineAlpha:
    def test_initial_alpha_is_lower_bound(self):
        line = make_line()
        # max(tau, t_fetch) = 1 s -> alpha = p/B = 1/60.
        assert line.alpha == pytest.approx(10 / 600)
        assert line.alpha_floor == pytest.approx(10 / 600)

    def test_initial_alpha_uses_fetch_time_when_larger(self):
        line = make_line(fetch_time=3.0)
        assert line.alpha == pytest.approx(10 * 3.0 / 600)

    def test_explicit_alpha_respected(self):
        line = make_line(alpha=0.1)
        assert line.alpha == 0.1

    def test_alpha_step_matches_paper(self):
        line = make_line()
        assert line.alpha_step == pytest.approx(10 * 0.05 / 600)

    def test_overdue_increases_alpha(self):
        line = make_line()
        before = line.alpha
        line.record_overdue(2)
        assert line.alpha == pytest.approx(before + 2 * line.alpha_step)
        assert line.adjustments == 2

    def test_repeated_decreases_but_not_below_floor(self):
        line = make_line()
        line.record_overdue(3)
        line.record_repeated(100)
        assert line.alpha == pytest.approx(line.alpha_floor)

    def test_zero_counts_do_nothing(self):
        line = make_line()
        before = line.alpha
        line.update(overdue=0, repeated=0)
        assert line.alpha == before
        assert line.adjustments == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_line(buffer_capacity=0)
        with pytest.raises(ValueError):
            make_line(hop_latency=-1)

    def test_urgent_span_and_id(self):
        line = make_line()
        assert line.urgent_span() == 10
        assert line.urgent_id(100) == 110


class TestUrgentLinePrediction:
    def test_no_missing_segments_not_triggered(self):
        line = make_line()
        prediction = line.predict(
            head_id=100, held_ids=range(90, 200), newest_available_id=300
        )
        assert prediction.miss_count == 0
        assert not prediction.triggered

    def test_small_miss_count_triggers(self):
        line = make_line()
        held = set(range(100, 111)) - {103, 107}
        prediction = line.predict(100, held, newest_available_id=300)
        assert prediction.missed_segment_ids == (103, 107)
        assert prediction.triggered

    def test_large_miss_count_not_triggered(self):
        line = make_line(prefetch_limit=3)
        prediction = line.predict(100, set(), newest_available_id=300)
        assert prediction.miss_count > 3
        assert not prediction.triggered

    def test_never_predicts_ungenerated_segments(self):
        line = make_line()
        prediction = line.predict(100, set(), newest_available_id=102)
        assert max(prediction.missed_segment_ids) <= 102

    def test_already_scheduled_excluded_when_requested(self):
        line = make_line()
        held = set(range(100, 111)) - {103, 107}
        prediction = line.predict(
            100, held, newest_available_id=300, already_scheduled={103}
        )
        assert prediction.missed_segment_ids == (107,)

    def test_missed_ids_ascending(self):
        line = make_line()
        prediction = line.predict(100, {104, 101}, newest_available_id=300)
        assert list(prediction.missed_segment_ids) == sorted(
            prediction.missed_segment_ids
        )


class TestOnDemandRetriever:
    @pytest.fixture
    def dht(self) -> DhtNetwork:
        network = DhtNetwork(id_space=2048, rng=np.random.default_rng(8))
        network.populate(150)
        return network

    def _retriever(self, dht, origin, holders_with_data, rates=None):
        rates = rates or {}
        return OnDemandRetriever(
            node_id=origin,
            router=dht.router,
            replicas=4,
            has_segment=lambda holder, sid: holder in holders_with_data,
            available_rate=lambda holder: rates.get(holder, 5.0),
        )

    def test_validation(self, dht):
        with pytest.raises(ValueError):
            OnDemandRetriever(
                node_id=1, router=dht.router, replicas=0,
                has_segment=lambda h, s: True, available_rate=lambda h: 1.0,
            )

    def test_locates_holder_that_has_the_segment(self, dht):
        origin = dht.node_ids()[0]
        segment_id = 42
        holders = {
            dht.responsible_node(key) for key in backup_keys(segment_id, 4, 2048)
        }
        retriever = self._retriever(dht, origin, holders)
        plan = retriever.locate(segment_id)
        assert plan.located
        assert plan.supplier_id in holders
        assert plan.holders_with_data >= 1
        assert plan.routing_messages > 0

    def test_no_holder_has_data(self, dht):
        origin = dht.node_ids()[0]
        retriever = self._retriever(dht, origin, holders_with_data=set())
        plan = retriever.locate(7)
        assert not plan.located
        assert plan.holders_with_data == 0
        # Routing cost is still paid.
        assert plan.routing_bits() == plan.routing_messages * ROUTING_MESSAGE_BITS

    def test_picks_highest_rate_holder(self, dht):
        origin = dht.node_ids()[0]
        segment_id = 99
        holders = {
            dht.responsible_node(key) for key in backup_keys(segment_id, 4, 2048)
        }
        holders.discard(origin)
        if len(holders) >= 2:
            holders = set(holders)
            rates = {holder: 1.0 for holder in holders}
            best = max(holders)
            rates[best] = 50.0
            retriever = self._retriever(dht, origin, holders, rates)
            plan = retriever.locate(segment_id)
            assert plan.supplier_id == best

    def test_zero_rate_holders_excluded(self, dht):
        origin = dht.node_ids()[0]
        segment_id = 13
        holders = {
            dht.responsible_node(key) for key in backup_keys(segment_id, 4, 2048)
        }
        retriever = self._retriever(dht, origin, holders, rates={h: 0.0 for h in holders})
        plan = retriever.locate(segment_id)
        assert not plan.located

    def test_retrieve_batch_sorted_and_recorded(self, dht):
        origin = dht.node_ids()[0]
        retriever = self._retriever(dht, origin, holders_with_data=set())
        plans = retriever.retrieve([9, 3, 7])
        assert [plan.segment_id for plan in plans] == [3, 7, 9]
        assert retriever.last_plans == plans

    def test_expected_costs_match_section_5_4_3(self):
        # k(log2(n)/2 + 1) + 1 messages; the paper's example: ~33000 bits at n<=8000.
        messages = OnDemandRetriever.expected_routing_messages(4, 8000)
        assert messages == pytest.approx(4 * (np.log2(8000) / 2 + 1) + 1)
        bits = OnDemandRetriever.expected_fetch_bits(4, 8000, 30 * 1024)
        assert bits == pytest.approx(33000, rel=0.05)

    def test_prefetch_plan_routing_bits(self):
        plan = PrefetchPlan(
            segment_id=1, supplier_id=None, routing_messages=10,
            routing_paths=(), holders_probed=0, holders_with_data=0,
        )
        assert plan.routing_bits() == 10 * ROUTING_MESSAGE_BITS
        assert not plan.located
