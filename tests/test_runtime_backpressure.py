"""Bounded-transport semantics and the backpressured swarm's guarantees.

Covers the flow-control primitives (two-lane bounded inbox, per-link
credit windows, credit ledger batching), their aggregation into run
summaries, swarm-level bounded-memory behaviour under stress scenarios,
and the regression test for the 200-peer ``BENCH_runtime.json`` anomaly:
stable continuity at the bench's swarm size and time scale must stay
≥ 0.9 now that overload dilates the schedule coherently instead of
letting peers' clocks drift apart (see docs/runtime.md).
"""

import asyncio
import os

import pytest

from repro.analysis.metrics import summarize_ledger
from repro.net.message import MessageLedger
from repro.runtime import LiveSwarm
from repro.runtime.transport import (
    BoundedInbox,
    CreditLedger,
    SendWindowSet,
    TransportConfig,
    TransportStats,
    TransportSummary,
)
from repro.scenarios.library import builtin_scenario

TIME_SCALE = float(os.environ.get("CONTINU_RUNTIME_TIME_SCALE", "0.5"))


class TestTransportConfig:
    def test_defaults_are_positive_and_batched(self):
        config = TransportConfig()
        assert config.inbox_watermark >= 1
        assert config.data_window >= 1
        assert 1 <= config.credit_batch <= config.data_window

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"inbox_watermark": 0},
            {"data_window": 0},
            {"pending_limit": 0},
            {"inbox_watermark": -5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TransportConfig(**kwargs)


class TestBoundedInbox:
    def test_control_lane_always_drains_first(self):
        stats = TransportStats()
        inbox = BoundedInbox(watermark=8, stats=stats)
        inbox.put(1, b"data-1", control=False)
        inbox.put(2, b"ctl-1", control=True)
        inbox.put(3, b"data-2", control=False)
        inbox.put(4, b"ctl-2", control=True)

        async def drain():
            return [await inbox.get() for _ in range(4)]

        order = asyncio.run(drain())
        assert [frame for _, frame, _ in order] == [
            b"ctl-1", b"ctl-2", b"data-1", b"data-2",
        ]
        assert [was_control for _, _, was_control in order] == [
            True, True, False, False,
        ]

    def test_each_lane_sheds_at_its_watermark(self):
        stats = TransportStats()
        inbox = BoundedInbox(watermark=2, stats=stats)
        assert inbox.put(1, b"d1", control=False)
        assert inbox.put(1, b"d2", control=False)
        assert not inbox.put(1, b"d3", control=False)  # data lane full
        assert inbox.put(1, b"c1", control=True)  # control lane unaffected
        assert inbox.put(1, b"c2", control=True)
        assert not inbox.put(1, b"c3", control=True)
        assert stats.inbox_dropped_data == 1
        assert stats.inbox_dropped_control == 1
        assert stats.inbox_high_watermark == 4
        assert len(inbox) == 4

    def test_get_batch_returns_everything_control_first(self):
        stats = TransportStats()
        inbox = BoundedInbox(watermark=8, stats=stats)
        inbox.put(1, b"d", control=False)
        inbox.put(2, b"c", control=True)

        async def drain():
            return await inbox.get_batch()

        batch = asyncio.run(drain())
        assert [frame for _, frame, _ in batch] == [b"c", b"d"]
        assert len(inbox) == 0

    def test_get_blocks_until_put(self):
        stats = TransportStats()
        inbox = BoundedInbox(watermark=4, stats=stats)

        async def scenario():
            getter = asyncio.create_task(inbox.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            inbox.put(9, b"late", control=True)
            return await asyncio.wait_for(getter, timeout=1.0)

        src, frame, was_control = asyncio.run(scenario())
        assert (src, frame, was_control) == (9, b"late", True)

    def test_zero_watermark_rejected(self):
        with pytest.raises(ValueError):
            BoundedInbox(watermark=0, stats=TransportStats())


class TestSendWindowSet:
    def test_window_exhaustion_queues_then_grant_releases_in_order(self):
        stats = TransportStats()
        windows = SendWindowSet(TransportConfig(data_window=2), stats)
        assert windows.acquire(7, "a")
        assert windows.acquire(7, "b")
        assert not windows.acquire(7, "c")  # window spent: queued
        assert not windows.acquire(7, "d")
        assert stats.send_stalls == 2
        assert windows.pending_count() == 2
        released = windows.grant(7, 2)
        assert released == ["c", "d"]
        assert windows.pending_count() == 0

    def test_fifo_order_is_preserved_across_partial_grants(self):
        windows = SendWindowSet(TransportConfig(data_window=1), TransportStats())
        assert windows.acquire(7, "a")
        for item in "bcd":
            assert not windows.acquire(7, item)
        assert windows.grant(7, 1) == ["b"]
        assert windows.grant(7, 2) == ["c", "d"]

    def test_pending_overflow_sheds_oldest(self):
        stats = TransportStats()
        windows = SendWindowSet(
            TransportConfig(data_window=1, pending_limit=2), stats
        )
        assert windows.acquire(3, "sent")
        for item in ("p1", "p2", "p3"):
            assert not windows.acquire(3, item)
        assert stats.pending_shed == 1
        assert windows.grant(3, 3) == ["p2", "p3"]  # p1 was shed

    def test_credits_never_exceed_the_window(self):
        windows = SendWindowSet(TransportConfig(data_window=4), TransportStats())
        windows.grant(5, 100)
        assert windows.link(5).credits == 4

    def test_links_are_independent(self):
        stats = TransportStats()
        windows = SendWindowSet(TransportConfig(data_window=1), stats)
        assert windows.acquire(1, "x")
        assert windows.acquire(2, "y")  # other link has its own window
        assert stats.send_stalls == 0

    def test_reset_forgets_exhausted_link_state(self):
        """A departed peer's link resets: a joiner recycled onto the same
        ring id must meet a fresh full window, not a wedged one."""
        windows = SendWindowSet(TransportConfig(data_window=1), TransportStats())
        assert windows.acquire(9, "sent")
        assert not windows.acquire(9, "stuck")
        windows.reset(9)
        assert windows.pending_count() == 0
        assert windows.acquire(9, "fresh")  # full window again


class TestCreditLedger:
    def test_batches_at_threshold(self):
        ledger = CreditLedger(batch=3)
        assert not ledger.consume(5)
        assert not ledger.consume(5)
        assert ledger.consume(5)  # third consumption: grant due
        assert ledger.take(5) == 3
        assert ledger.take(5) == 0

    def test_drain_collects_all_balances(self):
        ledger = CreditLedger(batch=10)
        ledger.consume(1)
        ledger.consume(1)
        ledger.consume(2)
        assert ledger.drain() == {1: 2, 2: 1}
        assert ledger.drain() == {}


class TestTransportSummary:
    def test_aggregate_sums_counters_and_maxes_watermarks(self):
        a = TransportStats(
            inbox_high_watermark=10, send_stalls=2, credits_granted=5,
            inbox_dropped_data=1, pending_high_watermark=3,
        )
        b = TransportStats(
            inbox_high_watermark=7, send_stalls=4, credits_granted=1,
            inbox_dropped_control=2, pending_high_watermark=9,
        )
        summary = TransportSummary.aggregate([a, b])
        assert summary.inbox_high_watermark == 10
        assert summary.pending_high_watermark == 9
        assert summary.send_stalls == 6
        assert summary.credits_granted == 6
        assert summary.inbox_dropped_data == 1
        assert summary.inbox_dropped_control == 2

    def test_summarize_ledger_reports_stall_counts(self):
        summary = TransportSummary.aggregate(
            [TransportStats(send_stalls=3, inbox_high_watermark=12)]
        )
        facts = summarize_ledger(MessageLedger(), transport=summary)
        assert facts["transport_send_stalls"] == 3.0
        assert facts["transport_inbox_high_watermark"] == 12.0
        # the plain ledger summary is unchanged without a transport
        assert "transport_send_stalls" not in summarize_ledger(MessageLedger())


class TestSwarmBoundedness:
    """Every inbox/transport in a live swarm is bounded and configurable."""

    def test_every_peer_gets_the_configured_watermark(self):
        config = TransportConfig(inbox_watermark=17, data_window=3)
        swarm = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=12, rounds=2),
            transport=config,
            clock="virtual",
        ).build()
        for peer in swarm.peers.values():
            assert peer.inbox.watermark == 17
            assert peer.send_windows.config.data_window == 3

    def test_tiny_windows_stall_but_never_deadlock(self):
        """A deliberately starved transport still completes and delivers."""
        result = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=20, rounds=8),
            transport=TransportConfig(
                inbox_watermark=16, data_window=1, pending_limit=4
            ),
            clock="virtual",
        ).run()
        assert len(result.continuity_series()) == 8
        assert result.segments_delivered() > 0
        assert result.transport.send_stalls > 0  # the window actually bit
        assert result.transport.credits_granted > 0

    @pytest.mark.parametrize("scenario", ["blackout", "flash-crowd"])
    def test_stress_scenarios_complete_within_bounds(self, scenario):
        """ISSUE-4 acceptance: blackout and flash-crowd complete without
        deadlock or unbounded queue growth, stall counts reported."""
        config = TransportConfig(inbox_watermark=256, data_window=8)
        swarm = LiveSwarm(
            builtin_scenario(scenario).scaled(num_nodes=30, rounds=12),
            transport=config,
            clock="virtual",
        )
        result = swarm.run()
        assert len(result.continuity_series()) == 12
        assert result.stable_continuity() > 0.5
        # bounded: no queue ever exceeded its configured ceiling
        assert result.transport.inbox_high_watermark <= 2 * config.inbox_watermark
        assert result.transport.pending_high_watermark <= config.pending_limit
        # the summary carries the stall/shed counters (>= 0 and present)
        facts = result.transport.to_dict()
        for key in ("send_stalls", "inbox_dropped_data", "pending_shed"):
            assert key in facts

    def test_shed_credit_grants_are_still_applied(self):
        """A CreditGrant shed at a full control lane must still restore
        the sender's window — the granting side already reset its owed
        balance, so losing the frame would shrink the window forever."""
        from repro.runtime import wire

        swarm = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=10, rounds=2),
            transport=TransportConfig(data_window=1),
            clock="virtual",
        ).build()
        peers = iter(swarm.peers.values())
        peer, other = next(peers), next(peers)
        # exhaust the window towards `other` and queue one pending frame
        assert peer.send_windows.acquire(other.peer_id, (b"f1", None))
        assert not peer.send_windows.acquire(other.peer_id, (b"f2", None))
        assert peer.send_windows.pending_count() == 1
        grant = wire.encode(wire.CreditGrant(sender=other.peer_id, credits=1))

        async def shed():
            peer.absorb_shed_control(grant)

        asyncio.run(shed())
        assert peer.send_windows.pending_count() == 0  # pending frame released
        # repeatable control frames shed silently, no state change
        peer.absorb_shed_control(wire.encode(wire.Ping(sender=1, nonce=2)))

    def test_shed_handovers_are_still_applied(self):
        """A graceful-leave Handover shed at a full control lane must
        still reach the successor's backup store — the departing sender
        stops right after shipping it, so there is no retransmit."""
        from repro.runtime import wire

        swarm = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=10, rounds=2),
            clock="virtual",
        ).build()
        peer = next(p for p in swarm.peers.values() if not p.is_source)
        frame = wire.encode(
            wire.Handover(
                sender=1,
                segment_bits=swarm.config.segment_bits,
                segment_ids=(5, 6),
            )
        )
        peer.absorb_shed_control(frame)
        assert peer.node.serves_segment(5)
        assert peer.node.serves_segment(6)

    def test_shed_data_frames_refund_their_credits(self):
        """Inbox overflow must not wedge the sender's window: with a
         1-frame data lane, sheds are frequent, yet transfers continue
        every period (credits flow back for shed frames)."""
        result = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=15, rounds=10),
            transport=TransportConfig(inbox_watermark=1, data_window=2),
            clock="virtual",
        ).run()
        assert result.transport.inbox_dropped_data > 0
        # deliveries keep happening in the stable phase despite the sheds
        assert result.stable_continuity() > 0.0
        assert result.segments_delivered() > 0


@pytest.mark.slow
class TestBenchAnomalyRegression:
    """The BENCH_runtime.json 200-peer anomaly, pinned fixed.

    The seed artifact recorded stable_continuity 0.343 at 200 peers with
    ``time_scale = 0.1`` (the bench's aggressive clock): without
    backpressure or coherent pacing, the overloaded event loop let peers'
    period clocks drift apart.  Post-fix, the swarm dilates its schedule
    coherently under overload, so the same settings (with enough rounds
    for a stable phase — the sim itself only reaches ~0.73 at the old
    12-round horizon) must stream at ≥ 0.9.
    """

    def test_bench_settings_reach_stable_continuity(self):
        result = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=200, rounds=30),
            time_scale=0.1,
            clock="wall",
        ).run()
        assert result.stable_continuity() >= 0.9, (
            f"stable continuity {result.stable_continuity():.4f} at the "
            f"bench's 200-peer settings (dilated {result.clock_dilations}x, "
            f"+{result.clock_dilation_s:.2f}s)"
        )
        # overload is expected at this clock; the fix is that the swarm
        # stretches coherently instead of collapsing
        assert result.clock_dilations > 0
