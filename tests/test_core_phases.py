"""Unit tests for the round pipeline: phases, context, registry, hooks.

Each extracted phase is exercised in isolation against a minimal synthetic
:class:`~repro.core.phases.base.RoundContext` — no full overlay build — plus
integration tests for the ``pipeline=`` hook and third-party protocol
registration (which must work without touching ``repro.core.system``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.core.baseline import CoolStreamingNode
from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.core.overlay import OverlayManager
from repro.core.phases import (
    END,
    BufferMapGossipPhase,
    ChurnMaintenancePhase,
    ContinuStreamingProtocol,
    DataSchedulingPhase,
    OnDemandRetrievalPhase,
    Phase,
    PhaseReport,
    PlaybackPhase,
    ProtocolRegistry,
    RoundContext,
    SourceGenerationPhase,
    UrgentLinePredictionPhase,
)
from repro.core.system import StreamingSystem
from repro.dht.peer_table import NeighborEntry
from repro.dht.ring import IdRing
from repro.net.message import MessageKind, MessageLedger
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.streaming.source import MediaSource


CONFIG = SystemConfig(
    num_nodes=4,
    rounds=5,
    buffer_capacity=60,
    playback_lag_segments=20,
    scheduling_window=30,
    startup_segments=5,
    seed=7,
)

RING = IdRing(1024)


def make_node(
    node_id: int,
    cls=ContinuStreamingNode,
    *,
    is_source: bool = False,
    inbound: float = 15.0,
    outbound: float = 15.0,
) -> StreamingNode:
    kwargs = dict(
        buffer_capacity=CONFIG.buffer_capacity,
        playback_rate=CONFIG.playback_rate,
        period=CONFIG.scheduling_period,
        inbound_rate=inbound,
        outbound_rate=outbound,
        max_neighbors=CONFIG.connected_neighbors,
        overheard_capacity=CONFIG.overheard_capacity,
        playback_lag=CONFIG.playback_lag_segments,
        is_source=is_source,
    )
    if cls is ContinuStreamingNode:
        kwargs.update(
            backup_replicas=CONFIG.backup_replicas,
            prefetch_limit=CONFIG.prefetch_limit,
            hop_latency=0.05,
            fetch_time=0.2,
        )
    return cls(node_id, RING, **kwargs)


def make_ctx(nodes: Dict[int, StreamingNode], source_id: int, **overrides) -> RoundContext:
    defaults = dict(
        config=CONFIG,
        protocol="continustreaming",
        round_index=0,
        round_start=0.0,
        period=CONFIG.scheduling_period,
        rng=np.random.default_rng(99),
        ledger=MessageLedger(),
        nodes=nodes,
        source=MediaSource(
            playback_rate=CONFIG.playback_rate, segment_bits=CONFIG.segment_bits
        ),
        source_id=source_id,
    )
    defaults.update(overrides)
    return RoundContext(**defaults)


def partner(a: StreamingNode, b: StreamingNode) -> None:
    """Minimal symmetric partnership for synthetic contexts."""
    a.peer_table.add_neighbor(NeighborEntry(peer_id=b.node_id, latency_ms=20.0))
    b.peer_table.add_neighbor(NeighborEntry(peer_id=a.node_id, latency_ms=20.0))
    a.rate_controller.register_neighbor(b.node_id, b.outbound_rate, 1)
    b.rate_controller.register_neighbor(a.node_id, a.outbound_rate, 1)


class TestSourceGenerationPhase:
    def test_generates_one_period_of_segments(self):
        source = make_node(1, is_source=True)
        ctx = make_ctx({1: source}, source_id=1)
        report = SourceGenerationPhase().execute(ctx)
        assert ctx.newest_segment_id >= CONFIG.segments_per_round - 1
        assert len(source.buffer) == ctx.newest_segment_id + 1
        assert report.details["segments_generated"] == ctx.newest_segment_id + 1

    def test_second_round_continues_the_stream(self):
        source = make_node(1, is_source=True)
        ctx = make_ctx({1: source}, source_id=1)
        SourceGenerationPhase().execute(ctx)
        first_newest = ctx.newest_segment_id
        ctx2 = make_ctx({1: source}, source_id=1, round_start=1.0, source=ctx.source)
        SourceGenerationPhase().execute(ctx2)
        assert ctx2.newest_segment_id == first_newest + CONFIG.segments_per_round


class TestBufferMapGossipPhase:
    def test_census_snapshots_and_budgets(self):
        source = make_node(1, is_source=True, inbound=0.0, outbound=100.0)
        peer = make_node(2)
        dead = make_node(3)
        dead.mark_departed()
        source.buffer.add(0)
        ctx = make_ctx({1: source, 2: peer, 3: dead}, source_id=1)
        report = BufferMapGossipPhase().execute(ctx)
        assert ctx.alive_ids == [1, 2]
        assert ctx.consumers == [2]
        assert 0 in ctx.snapshots[1].present
        assert ctx.inbound_budget[2] == pytest.approx(15.0)
        assert ctx.outbound_budget[1] == pytest.approx(100.0)
        assert report.details["nodes_alive"] == 2

    def test_snapshots_are_start_of_period_state(self):
        node = make_node(1)
        ctx = make_ctx({1: node}, source_id=99)
        BufferMapGossipPhase().execute(ctx)
        node.buffer.add(7)  # delivered mid-round
        assert 7 not in ctx.snapshots[1].present


class TestUrgentLinePredictionPhase:
    def test_matches_node_level_prediction(self):
        node = make_node(2)
        # Playing at segment 0 with a gap right ahead: urgent and missing.
        for sid in (0, 2, 3):
            node.buffer.add(sid)
        node.maybe_start_playback(1, newest_available_id=10)
        ctx = make_ctx({2: node}, source_id=1, newest_segment_id=10)
        ctx.consumers = [2]
        report = UrgentLinePredictionPhase().execute(ctx)
        expected = node.predict_missed(10)
        if expected.triggered:
            assert ctx.predictions[2] == list(expected.missed_segment_ids)
            assert ctx.prefetch_triggers == 1
        else:
            assert 2 not in ctx.predictions
        assert report.details["triggers"] == ctx.prefetch_triggers

    def test_complete_buffer_never_triggers(self):
        node = make_node(2)
        for sid in range(10):
            node.buffer.add(sid)
        ctx = make_ctx({2: node}, source_id=1, newest_segment_id=9)
        ctx.consumers = [2]
        UrgentLinePredictionPhase().execute(ctx)
        assert ctx.predictions == {}

    def test_coolstreaming_nodes_are_skipped(self):
        node = make_node(2, cls=CoolStreamingNode)
        ctx = make_ctx({2: node}, source_id=1, newest_segment_id=50)
        ctx.consumers = [2]
        UrgentLinePredictionPhase().execute(ctx)
        assert ctx.predictions == {}
        assert ctx.prefetch_triggers == 0


class TestDataSchedulingPhase:
    def _scheduling_ctx(self):
        supplier = make_node(1, is_source=True, inbound=0.0, outbound=100.0)
        consumer = make_node(2)
        partner(supplier, consumer)
        for sid in range(10):
            supplier.buffer.add(sid)
        ctx = make_ctx({1: supplier, 2: consumer}, source_id=1)
        BufferMapGossipPhase().execute(ctx)
        ctx.newest_segment_id = 9
        return ctx, supplier, consumer

    def test_segments_flow_and_traffic_is_charged(self):
        ctx, _, consumer = self._scheduling_ctx()
        report = DataSchedulingPhase().execute(ctx)
        assert ctx.segments_scheduled > 0
        assert report.details["segments_delivered"] == ctx.segments_scheduled
        assert len(consumer.buffer) == ctx.segments_scheduled
        assert ctx.ledger.bits_of(MessageKind.BUFFER_MAP) > 0
        assert ctx.ledger.bits_of(MessageKind.DATA_SCHEDULED) > 0

    def test_budgets_are_spent(self):
        ctx, supplier, consumer = self._scheduling_ctx()
        DataSchedulingPhase().execute(ctx)
        spent = ctx.segments_scheduled
        assert ctx.inbound_budget[2] == pytest.approx(15.0 - spent)
        assert ctx.outbound_budget[1] == pytest.approx(100.0 - spent)

    def test_no_newest_segment_means_no_requests(self):
        ctx, _, consumer = self._scheduling_ctx()
        ctx.newest_segment_id = -1
        DataSchedulingPhase().execute(ctx)
        assert ctx.segments_scheduled == 0
        assert len(consumer.buffer) == 0


class TestOnDemandRetrievalPhase:
    def _manager_ctx(self, nodes: Dict[int, StreamingNode], **overrides):
        manager = OverlayManager(config=CONFIG, streams=RngStreams(seed=3))
        manager.nodes.update(nodes)
        ctx = make_ctx(nodes, source_id=1, manager=manager, **overrides)
        BufferMapGossipPhase().execute(ctx)
        return ctx

    def test_no_predictions_is_a_cheap_no_op(self):
        node = make_node(2)
        ctx = self._manager_ctx({2: node})
        report = OnDemandRetrievalPhase().execute(ctx)
        assert report.details["nodes_triggered"] == 0
        assert ctx.segments_prefetched == 0

    def test_repeated_data_is_detected_inline(self):
        node = make_node(2)
        node.buffer.add(5)  # the scheduler delivered it while the DHT looked
        ctx = self._manager_ctx({2: node})
        ctx.predictions = {2: [5]}
        OnDemandRetrievalPhase().execute(ctx)  # ctx.sim is None -> inline
        assert node.stats.prefetch_repeated == 1
        assert ctx.segments_prefetched == 0

    def test_retrieval_rides_the_event_engine(self):
        node = make_node(2)
        node.buffer.add(5)
        sim = Simulator()
        ctx = self._manager_ctx({2: node}, sim=sim)
        ctx.predictions = {2: [5]}
        OnDemandRetrievalPhase().execute(ctx)
        assert node.stats.prefetch_repeated == 0  # nothing ran yet
        assert len(sim.queue) == 1
        sim.run()
        assert node.stats.prefetch_repeated == 1
        assert sim.now == pytest.approx(ctx.manager.fetch_time_s)


class TestPlaybackPhase:
    def test_playing_node_counts_toward_continuity(self):
        node = make_node(2)
        for sid in range(30):
            node.buffer.add(sid)
        ctx = make_ctx({2: node}, source_id=1, newest_segment_id=29)
        ctx.consumers = [2]
        report = PlaybackPhase().execute(ctx)
        assert node.playback.started
        assert ctx.nodes_playing == 1
        assert ctx.continuity == pytest.approx(1.0)
        assert report.details["continuity"] == pytest.approx(1.0)

    def test_starved_node_does_not_count(self):
        node = make_node(2)
        ctx = make_ctx({2: node}, source_id=1, newest_segment_id=50)
        ctx.consumers = [2]
        PlaybackPhase().execute(ctx)
        assert ctx.nodes_playing == 0
        assert ctx.continuity == pytest.approx(0.0)

    def test_runs_at_period_end(self):
        assert PlaybackPhase.timing == END


class TestChurnMaintenancePhase:
    def test_static_config_changes_nothing(self):
        node = make_node(2)
        manager = OverlayManager(config=CONFIG, streams=RngStreams(seed=3))
        manager.nodes[2] = node
        ctx = make_ctx({2: node}, source_id=1, manager=manager)
        report = ChurnMaintenancePhase().execute(ctx)
        assert (ctx.nodes_joined, ctx.nodes_left) == (0, 0)
        assert report.details["nodes_left"] == 0
        assert node.alive

    def test_runs_at_period_end(self):
        assert ChurnMaintenancePhase.timing == END


class TestPipelineHook:
    def test_custom_tap_phase_sees_every_round(self, tiny_config):
        taps = []

        class MetricsTapPhase(Phase):
            name = "metrics-tap"
            timing = END

            def execute(self, ctx: RoundContext) -> PhaseReport:
                taps.append((ctx.round_index, ctx.segments_scheduled))
                return self.report(rounds_seen=len(taps))

        system = StreamingSystem(tiny_config)
        pipeline = list(system.protocol.build_pipeline()) + [MetricsTapPhase()]
        result = StreamingSystem(tiny_config, pipeline=pipeline).run()
        assert len(taps) == tiny_config.rounds
        assert [index for index, _ in taps] == list(range(tiny_config.rounds))
        assert sum(count for _, count in taps) == sum(
            r.segments_scheduled for r in result.rounds
        )

    def test_ablating_a_phase_switches_off_its_traffic(self, tiny_config):
        default = StreamingSystem(tiny_config)
        pipeline = [
            phase
            for phase in default.protocol.build_pipeline()
            if phase.name not in ("urgent-line-prediction", "on-demand-retrieval")
        ]
        result = StreamingSystem(tiny_config, pipeline=pipeline).run()
        totals = result.traffic.cumulative()
        assert totals.bits_of(MessageKind.DHT_ROUTING) == 0
        assert totals.bits_of(MessageKind.DATA_PREFETCH) == 0

    def test_invalid_phase_timing_is_rejected(self, tiny_config):
        class TypoTimingPhase(Phase):
            name = "typo-timing"
            timing = "End"  # not the END constant

            def execute(self, ctx: RoundContext) -> PhaseReport:
                return self.report()

        with pytest.raises(ValueError, match="invalid timing"):
            StreamingSystem(tiny_config, pipeline=[TypoTimingPhase()])

    def test_default_pipeline_comes_from_the_registry(self, tiny_config):
        conti = StreamingSystem(tiny_config, system="continustreaming")
        cool = StreamingSystem(tiny_config, system="coolstreaming")
        conti_names = [phase.name for phase in conti.pipeline]
        cool_names = [phase.name for phase in cool.pipeline]
        assert "on-demand-retrieval" in conti_names
        assert "on-demand-retrieval" not in cool_names
        assert conti_names[-1] == cool_names[-1] == "churn-maintenance"


class TestProtocolRegistry:
    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError, match="unknown system"):
            ProtocolRegistry.get("bittorrent")

    def test_builtins_are_registered(self):
        assert ProtocolRegistry.known("continustreaming")
        assert ProtocolRegistry.known("coolstreaming")

    def test_alias_registration_does_not_relabel_the_original(self):
        from repro.core.phases.registry import CoolStreamingProtocol

        ProtocolRegistry.register("cool-alias")(CoolStreamingProtocol)
        try:
            assert ProtocolRegistry.get("cool-alias").name == "cool-alias"
            assert ProtocolRegistry.get("coolstreaming").name == "coolstreaming"
        finally:
            ProtocolRegistry.unregister("cool-alias")

    def test_third_protocol_registers_without_touching_system(self, tiny_config):
        """A no-prefetch ablation variant plugs in from one file/test."""

        @ProtocolRegistry.register("noprefetch")
        class NoPrefetchProtocol(ContinuStreamingProtocol):
            def build_pipeline(self):
                return tuple(
                    phase
                    for phase in super().build_pipeline()
                    if phase.name
                    not in ("urgent-line-prediction", "on-demand-retrieval")
                )

        try:
            result = StreamingSystem(tiny_config, system="noprefetch").run()
            assert result.system == "noprefetch"
            totals = result.traffic.cumulative()
            assert totals.bits_of(MessageKind.DHT_ROUTING) == 0
            assert totals.bits_of(MessageKind.DATA_PREFETCH) == 0
            assert totals.bits_of(MessageKind.DATA_SCHEDULED) > 0
        finally:
            ProtocolRegistry.unregister("noprefetch")
        with pytest.raises(ValueError):
            StreamingSystem(tiny_config, system="noprefetch")
