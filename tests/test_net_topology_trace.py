"""Tests for the overlay topology and the synthetic trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import OverlayTopology
from repro.net.trace import TraceTopologyGenerator, build_streaming_overlay


class TestOverlayTopology:
    def test_add_and_remove_nodes(self):
        graph = OverlayTopology([1, 2])
        assert len(graph) == 2
        graph.add_node(3)
        assert 3 in graph
        graph.remove_node(3)
        assert 3 not in graph

    def test_add_node_idempotent(self):
        graph = OverlayTopology()
        graph.add_node(1)
        graph.add_edge(1, 2)
        graph.add_node(1)  # must not clear the adjacency
        assert graph.has_edge(1, 2)

    def test_add_edge_rejects_self_loops(self):
        graph = OverlayTopology()
        assert not graph.add_edge(1, 1)

    def test_add_edge_rejects_duplicates(self):
        graph = OverlayTopology()
        assert graph.add_edge(1, 2)
        assert not graph.add_edge(2, 1)
        assert graph.edge_count() == 1

    def test_remove_edge(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        assert graph.remove_edge(1, 2)
        assert not graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)

    def test_remove_node_cleans_neighbour_sets(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        neighbours = graph.remove_node(1)
        assert neighbours == {2, 3}
        assert graph.degree(2) == 0
        assert graph.degree(3) == 0

    def test_neighbors_returns_copy(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        neighbours = graph.neighbors(1)
        neighbours.add(99)
        assert 99 not in graph.neighbors(1)

    def test_degree_and_average_degree(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1
        assert graph.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert OverlayTopology().average_degree() == 0.0

    def test_edges_sorted_unique(self):
        graph = OverlayTopology()
        graph.add_edge(3, 1)
        graph.add_edge(2, 3)
        assert graph.edges() == [(1, 3), (2, 3)]

    def test_densify_reaches_target_degree(self, rng):
        graph = OverlayTopology(range(30))
        added = graph.densify_to_degree(5, rng)
        assert added > 0
        assert all(graph.degree(v) >= 5 for v in graph.nodes())

    def test_densify_small_graph_caps_at_n_minus_one(self, rng):
        graph = OverlayTopology(range(3))
        graph.densify_to_degree(10, rng)
        assert all(graph.degree(v) == 2 for v in graph.nodes())

    def test_densify_keeps_existing_edges(self, rng):
        graph = OverlayTopology(range(10))
        graph.add_edge(0, 1)
        graph.densify_to_degree(3, rng)
        assert graph.has_edge(0, 1)

    def test_random_neighbor_sample(self, rng):
        graph = OverlayTopology()
        for other in range(1, 6):
            graph.add_edge(0, other)
        sample = graph.random_neighbor_sample(0, 3, rng)
        assert len(sample) == 3
        assert set(sample) <= {1, 2, 3, 4, 5}
        assert graph.random_neighbor_sample(0, 10, rng) == [1, 2, 3, 4, 5]
        assert graph.random_neighbor_sample(99, 3, rng) == []

    def test_connected_component_sizes(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.add_edge(4, 5)
        graph.add_node(9)
        assert graph.connected_component_sizes() == [3, 2, 1]

    def test_copy_is_independent(self):
        graph = OverlayTopology()
        graph.add_edge(1, 2)
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_edge(2, 3)


class TestTraceGenerator:
    def test_record_schema(self):
        records = TraceTopologyGenerator(seed=1).generate_records(50)
        assert len(records) == 50
        assert [r.node_id for r in records] == list(range(50))
        for record in records:
            assert 1024 <= record.port < 65535
            assert 5.0 <= record.ping_ms <= 1500.0
            assert record.speed_kbps in TraceTopologyGenerator.SPEED_CLASSES
            assert record.ip.count(".") == 3

    def test_generate_records_requires_positive_count(self):
        with pytest.raises(ValueError):
            TraceTopologyGenerator(seed=1).generate_records(0)

    def test_trace_graph_is_sparse(self):
        trace = TraceTopologyGenerator(seed=2).generate(300)
        assert len(trace.graph) == 300
        assert 0.3 <= trace.graph.average_degree() <= 4.0

    def test_trace_respects_requested_degree(self):
        trace = TraceTopologyGenerator(seed=3).generate(200, average_degree=2.0)
        assert trace.graph.average_degree() == pytest.approx(2.0, abs=0.4)

    def test_trace_reproducible_with_seed(self):
        a = TraceTopologyGenerator(seed=9).generate(100, seed=42)
        b = TraceTopologyGenerator(seed=1).generate(100, seed=42)
        assert a.records == b.records
        assert a.graph.edges() == b.graph.edges()

    def test_ping_times_accessor(self):
        trace = TraceTopologyGenerator(seed=4).generate(20)
        pings = trace.ping_times()
        assert set(pings) == set(range(20))

    def test_generate_suite_sizes(self):
        suite = TraceTopologyGenerator(seed=5).generate_suite([30, 60], traces_per_size=2)
        assert [len(t.records) for t in suite] == [30, 30, 60, 60]

    def test_build_streaming_overlay_densifies(self, rng):
        trace = TraceTopologyGenerator(seed=6).generate(100)
        overlay = build_streaming_overlay(trace, target_degree=5, rng=rng)
        assert all(overlay.degree(v) >= 5 for v in overlay.nodes())
        # Original crawl edges are preserved.
        for a, b in trace.graph.edges():
            assert overlay.has_edge(a, b)
