"""Tests for data segments and the segment store."""

from __future__ import annotations

import pytest

from repro.streaming.segment import DEFAULT_SEGMENT_BITS, Segment, SegmentStore


class TestSegment:
    def test_defaults(self):
        segment = Segment(segment_id=3)
        assert segment.size_bits == DEFAULT_SEGMENT_BITS
        assert segment.origin_time == 0.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Segment(segment_id=-1)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            Segment(segment_id=0, size_bits=0)

    def test_deadline_scales_with_playback_rate(self):
        segment = Segment(segment_id=20)
        assert segment.deadline(playback_rate=10.0) == pytest.approx(2.0)
        assert segment.deadline(playback_rate=20.0) == pytest.approx(1.0)

    def test_deadline_includes_startup_delay(self):
        segment = Segment(segment_id=10, origin_time=5.0)
        assert segment.deadline(10.0, startup_delay=2.0) == pytest.approx(8.0)

    def test_deadline_requires_positive_rate(self):
        with pytest.raises(ValueError):
            Segment(segment_id=1).deadline(0.0)

    def test_segments_are_hashable_and_frozen(self):
        segment = Segment(segment_id=1)
        with pytest.raises(AttributeError):
            segment.segment_id = 2  # type: ignore[misc]
        assert len({segment, Segment(segment_id=1)}) == 1


class TestSegmentStore:
    def test_add_and_get(self):
        store = SegmentStore()
        store.add(Segment(segment_id=4))
        assert 4 in store
        assert store.get(4).segment_id == 4
        assert store.get(5) is None

    def test_len_and_iter(self):
        store = SegmentStore([Segment(segment_id=i) for i in range(3)])
        assert len(store) == 3
        assert sorted(s.segment_id for s in store) == [0, 1, 2]

    def test_add_overwrites_same_id(self):
        store = SegmentStore()
        store.add(Segment(segment_id=1, size_bits=10))
        store.add(Segment(segment_id=1, size_bits=20))
        assert len(store) == 1
        assert store.get(1).size_bits == 20

    def test_remove(self):
        store = SegmentStore([Segment(segment_id=1)])
        removed = store.remove(1)
        assert removed.segment_id == 1
        assert store.remove(1) is None
        assert len(store) == 0

    def test_ids_sorted(self):
        store = SegmentStore([Segment(segment_id=i) for i in (5, 1, 3)])
        assert store.ids() == [1, 3, 5]

    def test_prune_older_than(self):
        store = SegmentStore([Segment(segment_id=i) for i in range(10)])
        removed = store.prune_older_than(6)
        assert removed == 6
        assert store.ids() == [6, 7, 8, 9]

    def test_prune_noop_when_everything_is_new(self):
        store = SegmentStore([Segment(segment_id=10)])
        assert store.prune_older_than(5) == 0
        assert 10 in store

    def test_total_bits(self):
        store = SegmentStore(
            [Segment(segment_id=0, size_bits=100), Segment(segment_id=1, size_bits=50)]
        )
        assert store.total_bits() == 150
