"""Exhaustive round-trip and robustness tests for the runtime wire codec."""

import dataclasses

import pytest

from repro.net.message import (
    PING_MESSAGE_BITS,
    ROUTING_MESSAGE_BITS,
    MessageKind,
)
from repro.runtime import wire
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMap, buffer_map_bits


def sample_messages():
    """At least one instance of every wire kind, plus boundary payloads."""
    full_map = BufferMap(head_id=0, capacity=600, present=frozenset(range(600)))
    empty_map = BufferMap(head_id=7, capacity=600, present=frozenset())
    tiny_map = BufferMap(head_id=0, capacity=1, present=frozenset([0]))
    odd_map = BufferMap(head_id=3, capacity=13, present=frozenset([3, 9, 15]))
    return [
        # -- buffer maps: fresh stream (-1 edge), full, empty, 1-slot, odd size
        wire.BufferMapMsg.from_buffer_map(0, -1, tiny_map),
        wire.BufferMapMsg.from_buffer_map(1, 0, odd_map),
        wire.BufferMapMsg.from_buffer_map(8191, 2**31 - 1, full_map),
        wire.BufferMapMsg.from_buffer_map(42, 599, empty_map),
        # -- segment transfer plane
        wire.SegmentRequest(sender=0, segment_id=0),
        wire.SegmentRequest(sender=2**32 - 1, segment_id=2**32 - 1, prefetch=True),
        wire.SegmentData(sender=1, segment_id=2, size_bits=30 * 1024),
        wire.SegmentData(sender=3, segment_id=4, size_bits=0, prefetch=True),
        wire.SegmentNack(sender=9, segment_id=11),
        wire.SegmentNack(sender=9, segment_id=11, prefetch=True),
        # -- traced segment frames (8-byte observability tail, u64 edge)
        wire.SegmentRequest(sender=3, segment_id=5, trace_id=1),
        wire.SegmentData(
            sender=1, segment_id=2, size_bits=30 * 1024, trace_id=2**64 - 1
        ),
        wire.SegmentNack(sender=9, segment_id=11, prefetch=True, trace_id=77),
        # -- DHT plane: empty-ish and long paths
        wire.DhtLookup(origin=5, target_key=1234, segment_id=77, path=(5,)),
        wire.DhtLookup(
            origin=5, target_key=0, segment_id=0, path=tuple(range(64))
        ),
        wire.DhtResponse(
            responder=6, origin=5, target_key=1234, segment_id=77,
            has_data=True, rate=12.5, path=(5, 6),
        ),
        wire.DhtResponse(
            responder=6, origin=5, target_key=8191, segment_id=0,
            has_data=False, rate=0.0, path=(),
        ),
        # -- membership plane
        wire.Ping(sender=0, nonce=0),
        wire.Ping(sender=17, nonce=2**32 - 1),
        wire.Pong(sender=18, nonce=3),
        wire.Handover(sender=4, segment_bits=30 * 1024, segment_ids=()),
        wire.Handover(
            sender=4, segment_bits=30 * 1024, segment_ids=tuple(range(100))
        ),
        # -- flow-control plane
        wire.CreditGrant(sender=0, credits=1),
        wire.CreditGrant(sender=2**32 - 1, credits=2**16 - 1),
        # -- cluster transport plane: handshake and routed envelopes
        wire.ShardHello(shard_index=0, num_shards=1, token=0, ring_size=8192),
        wire.ShardHello(
            shard_index=2**16 - 1, num_shards=2**16 - 1,
            token=2**32 - 1, ring_size=2**32 - 1,
        ),
        wire.RoutedFrame(src=0, dst=1, payload=b""),
        wire.RoutedFrame(
            src=2**32 - 1, dst=0,
            payload=wire.encode(wire.SegmentData(sender=1, segment_id=2, size_bits=64)),
            data=True,
        ),
        # src matches the inner frame's sender: exercises the src-elision path
        wire.RoutedFrame(
            src=1, dst=9,
            payload=wire.encode(wire.SegmentData(sender=1, segment_id=2, size_bits=64)),
            data=True,
        ),
        # -- fast-path envelopes: batches and incremental maps
        wire.FrameBatch(
            frames=(
                wire.encode(wire.Ping(sender=1, nonce=7)),
                wire.encode(wire.SegmentRequest(sender=2, segment_id=3)),
                wire.encode(wire.BufferMapMsg.from_buffer_map(1, 0, odd_map, seq=4)),
            )
        ),
        wire.FrameBatch(frames=(wire.encode(wire.Pong(sender=5, nonce=6)),)),
        wire.BufferMapDelta(
            sender=3, seq=9, newest_id=120, head_id=40, capacity=600,
            runs=((0, 3), (17, 1), (599, 1)),
        ),
        wire.BufferMapDelta(
            sender=3, seq=1, newest_id=-1, head_id=0, capacity=600, runs=(),
        ),
        # -- observability plane: telemetry pushes (opaque JSON bodies)
        wire.TelemetryFrame.from_body(
            shard=0, period=3,
            body={"continuity": 0.97, "playing": 29, "total": 30},
        ),
        wire.TelemetryFrame(shard=2**16 - 1, period=2**32 - 1, payload=b"{}"),
        wire.TelemetryFrame(shard=1, period=0, payload=b""),
    ]


class TestRoundTrip:
    def test_every_wire_kind_is_covered(self):
        covered = set()
        for msg in sample_messages():
            decoded, _ = wire.decode(wire.encode(msg))
            covered.add(type(decoded).__name__)
        by_kind = {
            wire.WireKind.BUFFER_MAP: "BufferMapMsg",
            wire.WireKind.SEGMENT_REQUEST: "SegmentRequest",
            wire.WireKind.SEGMENT_DATA: "SegmentData",
            wire.WireKind.SEGMENT_NACK: "SegmentNack",
            wire.WireKind.DHT_LOOKUP: "DhtLookup",
            wire.WireKind.DHT_RESPONSE: "DhtResponse",
            wire.WireKind.PING: "Ping",
            wire.WireKind.PONG: "Pong",
            wire.WireKind.HANDOVER: "Handover",
            wire.WireKind.CREDIT: "CreditGrant",
            wire.WireKind.SHARD_HELLO: "ShardHello",
            wire.WireKind.ROUTE: "RoutedFrame",
            wire.WireKind.BATCH: "FrameBatch",
            wire.WireKind.MAP_DELTA: "BufferMapDelta",
            wire.WireKind.TELEMETRY: "TelemetryFrame",
        }
        assert set(by_kind) == set(wire.WireKind), "update the map for new kinds"
        assert covered == set(by_kind.values())

    @pytest.mark.parametrize(
        "msg", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_round_trip_identity(self, msg):
        frame = wire.encode(msg)
        decoded, consumed = wire.decode(frame)
        assert consumed == len(frame)
        if isinstance(msg, wire.DhtResponse):
            # float32 on the wire: compare the rate at that precision.
            assert decoded.responder == msg.responder
            assert decoded.origin == msg.origin
            assert decoded.target_key == msg.target_key
            assert decoded.segment_id == msg.segment_id
            assert decoded.has_data == msg.has_data
            assert decoded.path == msg.path
            assert decoded.rate == pytest.approx(msg.rate, rel=1e-6)
        else:
            assert decoded == msg

    def test_buffer_map_payload_round_trips_exactly(self):
        buffer = SegmentBuffer(capacity=600)
        for sid in (0, 1, 17, 256, 599):
            buffer.add(sid)
        original = BufferMap.from_buffer(buffer)
        msg = wire.BufferMapMsg.from_buffer_map(3, 599, original)
        decoded, _ = wire.decode(wire.encode(msg))
        rebuilt = decoded.buffer_map()
        assert rebuilt.head_id == original.head_id
        assert rebuilt.capacity == original.capacity
        assert rebuilt.present == original.present

    def test_concatenated_frames_decode_in_order(self):
        msgs = sample_messages()
        stream = b"".join(wire.encode(m) for m in msgs)
        offset = 0
        decoded = []
        while offset < len(stream):
            msg, offset = wire.decode(stream, offset)
            decoded.append(msg)
        assert len(decoded) == len(msgs)
        assert [type(m) for m in decoded] == [type(m) for m in msgs]


class TestTraceTail:
    """The 8-byte observability tail on segment frames (repro.obs)."""

    def _pairs(self):
        return [
            (
                wire.SegmentRequest(sender=3, segment_id=5),
                wire.SegmentRequest(sender=3, segment_id=5, trace_id=41),
            ),
            (
                wire.SegmentData(sender=1, segment_id=2, size_bits=64),
                wire.SegmentData(sender=1, segment_id=2, size_bits=64, trace_id=41),
            ),
            (
                wire.SegmentNack(sender=9, segment_id=11),
                wire.SegmentNack(sender=9, segment_id=11, trace_id=41),
            ),
        ]

    def test_untraced_frames_are_byte_identical_to_the_pre_obs_wire(self):
        # trace_id=0 must cost nothing: same bytes, no flag bit set.
        for plain, traced in self._pairs():
            zeroed = dataclasses.replace(traced, trace_id=0)
            assert wire.encode(zeroed) == wire.encode(plain)
            # flags is the final byte of all three untraced segment frames
            assert not wire.encode(plain)[-1] & 0x2

    def test_traced_frames_cost_exactly_eight_extra_bytes(self):
        for plain, traced in self._pairs():
            assert len(wire.encode(traced)) == len(wire.encode(plain)) + 8
            decoded, _ = wire.decode(wire.encode(traced))
            assert decoded == traced

    def test_trace_tail_is_never_charged_to_the_ledger(self):
        plain = wire.SegmentData(sender=1, segment_id=2, size_bits=30 * 1024)
        traced = wire.SegmentData(
            sender=1, segment_id=2, size_bits=30 * 1024, trace_id=99
        )
        assert wire.ledger_entry(traced) == wire.ledger_entry(plain)
        assert wire.ledger_entry(
            wire.SegmentRequest(sender=1, segment_id=2, trace_id=99)
        ) is None

    def test_trace_flag_with_missing_tail_is_rejected(self):
        frame = bytearray(wire.encode(wire.SegmentRequest(sender=3, segment_id=5)))
        # Set the traced flag without appending the tail: corrupt frame.
        flags_offset = len(frame) - 1
        frame[flags_offset] |= 0x2
        with pytest.raises(wire.WireError):
            wire.decode(bytes(frame))


class TestTruncationAndCorruption:
    @pytest.mark.parametrize(
        "msg", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_every_proper_prefix_is_rejected_as_truncated(self, msg):
        frame = wire.encode(msg)
        for cut in range(len(frame)):
            with pytest.raises(wire.TruncatedFrameError):
                wire.decode(frame[:cut])

    def test_unknown_kind_rejected(self):
        frame = bytearray(wire.encode(wire.Ping(sender=1)))
        frame[4] = 0xEE  # the kind byte
        with pytest.raises(wire.WireError):
            wire.decode(bytes(frame))

    def test_zero_length_frame_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode(b"\x00\x00\x00\x00")

    def test_oversized_length_prefix_rejected(self):
        header = (wire.MAX_FRAME_PAYLOAD + 1).to_bytes(4, "big")
        with pytest.raises(wire.WireError):
            wire.decode(header + b"\x00" * 16)

    def test_body_size_mismatch_rejected(self):
        # A ping frame whose declared length covers one extra byte.
        good = wire.encode(wire.Ping(sender=1, nonce=2))
        bad = (len(good) - 4 + 1).to_bytes(4, "big") + good[4:] + b"\x00"
        with pytest.raises(wire.WireError):
            wire.decode(bad)

    def test_bitmap_size_mismatch_rejected(self):
        msg = wire.BufferMapMsg.from_buffer_map(
            1, 5, BufferMap(head_id=0, capacity=16, present=frozenset([1]))
        )
        frame = bytearray(wire.encode(msg))
        frame[-2:] = b""  # drop a bitmap byte
        frame[0:4] = (len(frame) - 4 - 2 + 2).to_bytes(4, "big")
        frame[0:4] = (len(frame) - 4).to_bytes(4, "big")
        with pytest.raises(wire.WireError):
            wire.decode(bytes(frame))

    def test_out_of_range_fields_rejected_at_encode(self):
        with pytest.raises(wire.WireError):
            wire.encode(wire.Ping(sender=2**32))
        with pytest.raises(wire.WireError):
            wire.encode(wire.SegmentRequest(sender=-1, segment_id=0))
        with pytest.raises(wire.WireError):
            wire.encode(
                wire.BufferMapMsg(
                    sender=1, newest_id=-2, head_id=0, capacity=8, bitmap=b"\x00"
                )
            )
        with pytest.raises(wire.WireError):
            wire.encode(
                wire.BufferMapMsg(
                    sender=1, newest_id=0, head_id=0, capacity=16, bitmap=b"\x00"
                )
            )


class TestFrameDecoder:
    def test_single_byte_feeds_reassemble_every_message(self):
        msgs = sample_messages()
        stream = b"".join(wire.encode(m) for m in msgs)
        decoder = wire.FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i : i + 1]))
        assert len(decoded) == len(msgs)
        assert decoder.pending_bytes == 0

    def test_coalesced_feed_returns_all_messages_at_once(self):
        msgs = sample_messages()
        stream = b"".join(wire.encode(m) for m in msgs)
        decoder = wire.FrameDecoder()
        decoded = decoder.feed(stream)
        assert len(decoded) == len(msgs)

    def test_split_across_frame_boundary(self):
        a = wire.encode(wire.Ping(sender=1, nonce=2))
        b = wire.encode(wire.Pong(sender=3, nonce=4))
        decoder = wire.FrameDecoder()
        first = decoder.feed(a + b[:3])
        assert [type(m) for m in first] == [wire.Ping]
        assert decoder.pending_bytes == 3
        second = decoder.feed(b[3:])
        assert [type(m) for m in second] == [wire.Pong]

    def test_malformed_frame_poisons_the_stream(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(wire.WireError):
            decoder.feed(b"\x00\x00\x00\x01\xee")

    def test_one_byte_chunks_keep_the_receive_buffer_compacted(self):
        # Regression for the quadratic re-slicing decoder: a long stream
        # arriving one byte at a time must neither lose messages nor let
        # the internal buffer grow past the compaction threshold (the old
        # implementation copied the whole pending buffer per chunk; this
        # one tracks an offset and compacts periodically).
        msgs = [wire.Ping(sender=i, nonce=i) for i in range(2000)]
        stream = b"".join(wire.encode(m) for m in msgs)
        decoder = wire.FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i : i + 1]))
            assert len(decoder._buffer) <= decoder._COMPACT_AT + 16
        assert decoded == msgs
        assert decoder.pending_bytes == 0

    def test_dead_prefix_past_threshold_is_compacted(self):
        # One huge chunk of complete frames plus a partial tail: the dead
        # prefix exceeds _COMPACT_AT inside a single feed, so the buffer
        # must shrink back to (roughly) the partial frame.
        msgs = [wire.Ping(sender=i, nonce=i) for i in range(6000)]
        stream = b"".join(wire.encode(m) for m in msgs)
        assert len(stream) > wire.FrameDecoder._COMPACT_AT
        decoder = wire.FrameDecoder()
        decoded = decoder.feed(stream[:-2])
        assert len(decoded) == len(msgs) - 1
        assert decoder.pending_bytes == len(wire.encode(msgs[0])) - 2
        assert len(decoder._buffer) < 64
        decoded.extend(decoder.feed(stream[-2:]))
        assert decoded == msgs
        assert decoder.pending_bytes == 0


class TestLedgerAccounting:
    """Accounted sizes reconcile against net/message.py, not frame lengths."""

    def test_buffer_map_costs_capacity_plus_anchor(self):
        for capacity in (1, 13, 600):
            msg = wire.BufferMapMsg.from_buffer_map(
                1, 5, BufferMap(head_id=0, capacity=capacity, present=frozenset())
            )
            kind, bits = wire.ledger_entry(msg)
            assert kind is MessageKind.BUFFER_MAP
            assert bits == buffer_map_bits(capacity)
            # ...and is decoupled from the physical frame size.
            assert bits != len(wire.encode(msg)) * 8

    def test_data_costs_declared_payload_by_path(self):
        scheduled = wire.SegmentData(sender=1, segment_id=2, size_bits=30 * 1024)
        prefetched = wire.SegmentData(
            sender=1, segment_id=2, size_bits=30 * 1024, prefetch=True
        )
        assert wire.ledger_entry(scheduled) == (
            MessageKind.DATA_SCHEDULED, 30 * 1024.0,
        )
        assert wire.ledger_entry(prefetched) == (
            MessageKind.DATA_PREFETCH, 30 * 1024.0,
        )

    def test_dht_messages_cost_80_bits(self):
        lookup = wire.DhtLookup(origin=1, target_key=2, segment_id=3, path=(1,))
        response = wire.DhtResponse(
            responder=2, origin=1, target_key=2, segment_id=3,
            has_data=True, rate=1.0, path=(1, 2),
        )
        assert wire.ledger_entry(lookup) == (
            MessageKind.DHT_ROUTING, float(ROUTING_MESSAGE_BITS),
        )
        assert wire.ledger_entry(response) == (
            MessageKind.DHT_ROUTING, float(ROUTING_MESSAGE_BITS),
        )

    def test_membership_messages_cost_ping_bits(self):
        for msg in (
            wire.Ping(sender=1),
            wire.Pong(sender=1),
            wire.Handover(sender=1, segment_bits=8, segment_ids=(1, 2)),
        ):
            assert wire.ledger_entry(msg) == (
                MessageKind.MEMBERSHIP, float(PING_MESSAGE_BITS),
            )

    def test_pull_requests_are_not_charged(self):
        assert wire.ledger_entry(wire.SegmentRequest(sender=1, segment_id=2)) is None
        assert wire.ledger_entry(wire.SegmentNack(sender=1, segment_id=2)) is None
        assert wire.ledger_entry(wire.CreditGrant(sender=1, credits=4)) is None
        # Cluster transport frames are free too: the inner frame of a
        # routed envelope is charged once, at its originating peer.
        assert wire.ledger_entry(
            wire.ShardHello(shard_index=0, num_shards=2, token=1, ring_size=8192)
        ) is None
        assert wire.ledger_entry(wire.RoutedFrame(src=1, dst=2, payload=b"x")) is None

    def test_telemetry_frames_are_never_charged(self):
        # The observability plane is physical-only: a telemetry push must
        # not perturb the paper-facing ledger no matter how large its body.
        small = wire.TelemetryFrame.from_body(shard=0, period=1, body={})
        big = wire.TelemetryFrame.from_body(
            shard=3, period=9,
            body={"counters": {f"k{i}": i for i in range(200)}},
        )
        assert wire.ledger_entry(small) is None
        assert wire.ledger_entry(big) is None

    def test_telemetry_body_round_trips_through_the_codec(self):
        body = {"continuity": 0.5, "miss_causes": {"deadline": 2}, "period": 7}
        frame = wire.TelemetryFrame.from_body(shard=2, period=7, body=body)
        decoded, _ = wire.decode(wire.encode(frame))
        assert decoded.shard == 2
        assert decoded.period == 7
        assert decoded.body() == body
