"""Unit tests for the cluster's interchangeable links.

:class:`~repro.runtime.cluster.links.SocketLink` is exercised over real
localhost TCP streams inside a single event loop (two fake hosts, one
accepting side, one dialing side), so framing, the hello exchange, the
bounded outbound queue and the disconnect → refund → reconnect →
presume-dead ladder are all tested against genuine sockets — no mocks of
the transport itself.
"""

import asyncio

import pytest

from repro.runtime import wire
from repro.runtime.cluster.links import (
    LinkConfig,
    SocketLink,
    dial_shard,
    read_handshake,
    validate_hello,
)

HELLO_A = wire.ShardHello(shard_index=0, num_shards=2, token=42, ring_size=8192)
HELLO_B = wire.ShardHello(shard_index=1, num_shards=2, token=42, ring_size=8192)

#: A valid inner frame to route around (content is irrelevant to links).
PING_FRAME = wire.encode(wire.Ping(sender=7, nonce=1))
DATA_FRAME = wire.encode(wire.SegmentData(sender=7, segment_id=3, size_bits=64))
CREDIT_FRAME = wire.encode(wire.CreditGrant(sender=7, credits=2))


class FakeHost:
    """Records every callback a SocketLink makes on its owning shard."""

    def __init__(self):
        self.routed = []
        self.interrupted = []
        self.restored = []
        self.lost = []
        self.undeliverable = []

    def receive_routed(self, src, dst, payload, data):
        self.routed.append((src, dst, payload, data))

    def on_link_interrupted(self, shard):
        self.interrupted.append(shard)

    def on_link_restored(self, shard):
        self.restored.append(shard)

    def on_link_lost(self, shard):
        self.lost.append(shard)

    def note_undeliverable(self, src, dst, data):
        self.undeliverable.append((src, dst, data))


async def _wait_until(predicate, timeout=5.0, what="condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


async def _make_pair(host_a, host_b, config):
    """A handshaken A(accepts, shard 0) <-> B(dials, shard 1) link pair."""
    link_a = SocketLink(host_a, 1, config=config, hello=HELLO_A)
    link_b = SocketLink(host_b, 0, config=config, hello=HELLO_B)

    async def on_conn(reader, writer):
        msg, decoder, extras = await read_handshake(reader, 5.0)
        validate_hello(msg, HELLO_A, expect_shard=1)
        writer.write(wire.encode(HELLO_A))
        await writer.drain()
        link_a.attach(reader, writer, decoder, tuple(extras))

    server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    link_b.dial_address = ("127.0.0.1", port)
    reader, writer, decoder, backlog = await dial_shard(
        ("127.0.0.1", port), HELLO_B, expect_shard=0, timeout=5.0
    )
    link_b.attach(reader, writer, decoder, tuple(backlog))
    await _wait_until(lambda: link_a.is_up and link_b.is_up, what="links up")
    return server, link_a, link_b


class TestSocketLinkTransport:
    def test_frames_cross_in_both_directions_with_lane_flags(self):
        async def scenario():
            host_a, host_b = FakeHost(), FakeHost()
            server, link_a, link_b = await _make_pair(host_a, host_b, LinkConfig())
            link_b.send(10, 20, PING_FRAME, data=False)
            link_b.send(11, 21, DATA_FRAME, data=True)
            link_a.send(30, 40, DATA_FRAME, data=True)
            await _wait_until(lambda: len(host_a.routed) == 2 and len(host_b.routed) == 1)
            assert host_a.routed == [
                (10, 20, PING_FRAME, False),
                (11, 21, DATA_FRAME, True),
            ]
            assert host_b.routed == [(30, 40, DATA_FRAME, True)]
            assert link_b.stats.frames_out == 2
            assert link_a.stats.frames_in == 2
            assert link_a.stats.bytes_in == link_b.stats.bytes_out
            link_a.close()
            link_b.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_full_queue_sheds_data_but_never_credit_frames(self):
        async def scenario():
            host = FakeHost()
            # Unattached link (still connecting): everything queues.
            link = SocketLink(host, 1, config=LinkConfig(queue_limit=2), hello=HELLO_A)
            for _ in range(5):
                link.send(1, 2, DATA_FRAME, data=True)
            assert len(host.undeliverable) == 3  # sheds past the limit
            assert link.stats.sheds == 3
            # One-shot control state always queues, even past the limit.
            link.send(1, 2, CREDIT_FRAME, data=False)
            handover = wire.encode(
                wire.Handover(sender=1, segment_bits=8, segment_ids=(1, 2))
            )
            link.send(1, 2, handover, data=False)
            assert len(host.undeliverable) == 3
            link.close()

        asyncio.run(scenario())

    def test_dead_link_refunds_every_data_frame(self):
        async def scenario():
            host = FakeHost()
            link = SocketLink(host, 1, config=LinkConfig(), hello=HELLO_A)
            link.close()
            link.send(5, 6, DATA_FRAME, data=True)
            link.send(5, 6, PING_FRAME, data=False)
            assert host.undeliverable == [(5, 6, True), (5, 6, False)]

        asyncio.run(scenario())


class TestSocketLinkRecovery:
    def test_disconnect_refunds_then_reconnect_restores(self):
        async def scenario():
            host_a, host_b = FakeHost(), FakeHost()
            config = LinkConfig(reconnect_attempts=5, reconnect_delay_s=0.05,
                                reconnect_grace_s=2.0)
            server, link_a, link_b = await _make_pair(host_a, host_b, config)
            # Tear the TCP stream down abruptly from A's side.
            link_a._writer.transport.abort()
            await _wait_until(
                lambda: host_b.interrupted == [0] and host_a.interrupted == [1],
                what="both sides refunding",
            )
            # B redials (the server is still up) and both sides recover.
            await _wait_until(
                lambda: link_a.is_up and link_b.is_up, what="links restored"
            )
            assert host_b.restored == [0]
            assert host_b.lost == [] and host_a.lost == []
            assert link_b.stats.reconnects == 1
            # The healed stream carries frames again.
            link_b.send(1, 2, PING_FRAME, data=False)
            await _wait_until(lambda: len(host_a.routed) == 1)
            link_a.close()
            link_b.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_down_link_refunds_data_frames_instead_of_queueing_them(self):
        """Credits must come home even for frames sent during a redial.

        A frame queued while the link is down would be discarded by the
        reconnect (its credit leaking from the freshly reset window), so
        the link must refund data frames immediately in that state —
        while still queueing the one-shot control frames it may never
        lose.
        """

        async def scenario():
            host_a, host_b = FakeHost(), FakeHost()
            config = LinkConfig(reconnect_attempts=5, reconnect_delay_s=0.2,
                                reconnect_grace_s=5.0)
            server, link_a, link_b = await _make_pair(host_a, host_b, config)
            link_a._writer.transport.abort()
            await _wait_until(lambda: host_b.interrupted == [0], what="link down")
            # Down, not dead: data refunds now, one-shot control queues.
            link_b.send(1, 2, DATA_FRAME, data=True)
            assert host_b.undeliverable == [(1, 2, True)]
            link_b.send(1, 2, CREDIT_FRAME, data=False)
            assert len(link_b._queue) == 1
            # The queued credit grant survives the reconnect and crosses.
            await _wait_until(lambda: link_b.is_up, what="link restored")
            await _wait_until(
                lambda: link_a.stats.frames_in >= 1, what="queued frame flushed"
            )
            link_a.close()
            link_b.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_exhausted_reconnects_presume_the_shard_lost(self):
        async def scenario():
            host_a, host_b = FakeHost(), FakeHost()
            config = LinkConfig(reconnect_attempts=2, reconnect_delay_s=0.02,
                                reconnect_grace_s=0.1)
            server, link_a, link_b = await _make_pair(host_a, host_b, config)
            # Kill the server first so redials cannot succeed.
            server.close()
            await server.wait_closed()
            link_a._writer.transport.abort()
            await _wait_until(
                lambda: host_b.lost == [0] and host_a.lost == [1],
                what="both sides presuming the shard dead",
            )
            # Late sends are refused with a refund, not queued forever.
            link_b.send(9, 8, DATA_FRAME, data=True)
            assert host_b.undeliverable[-1] == (9, 8, True)
            link_a.close()
            link_b.close()

        asyncio.run(scenario())


class TestShardHandshake:
    def test_validate_hello_accepts_the_matching_peer(self):
        assert validate_hello(HELLO_B, HELLO_A, expect_shard=1) == HELLO_B

    @pytest.mark.parametrize(
        "bad",
        [
            wire.Ping(sender=1, nonce=2),  # not a hello at all
            wire.ShardHello(shard_index=1, num_shards=2, token=43, ring_size=8192),
            wire.ShardHello(shard_index=1, num_shards=3, token=42, ring_size=8192),
            wire.ShardHello(shard_index=1, num_shards=2, token=42, ring_size=4096),
            wire.ShardHello(shard_index=0, num_shards=2, token=42, ring_size=8192),
            wire.ShardHello(shard_index=5, num_shards=2, token=42, ring_size=8192),
        ],
        ids=["wrong-type", "token", "num-shards", "ring-size", "self", "out-of-range"],
    )
    def test_validate_hello_rejects_mismatches(self, bad):
        with pytest.raises(wire.WireError):
            validate_hello(bad, HELLO_A)

    def test_wrong_expected_shard_is_rejected(self):
        with pytest.raises(wire.WireError):
            validate_hello(HELLO_B, HELLO_A, expect_shard=0)

    def test_dialer_rejects_an_acceptor_from_another_run(self):
        async def scenario():
            async def imposter(reader, writer):
                await read_handshake(reader, 5.0)
                writer.write(
                    wire.encode(
                        wire.ShardHello(
                            shard_index=0, num_shards=2, token=999, ring_size=8192
                        )
                    )
                )
                await writer.drain()

            server = await asyncio.start_server(imposter, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            with pytest.raises(wire.WireError):
                await dial_shard(("127.0.0.1", port), HELLO_B, expect_shard=0, timeout=5.0)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())
