"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.dht.ring import IdRing


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def ring() -> IdRing:
    """A small identifier ring shared by DHT tests."""
    return IdRing(1024)


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A very small but complete system configuration (fast to simulate)."""
    return SystemConfig(
        num_nodes=40,
        rounds=12,
        buffer_capacity=200,
        scheduling_window=80,
        playback_lag_segments=40,
        seed=5,
    )


@pytest.fixture
def small_config() -> SystemConfig:
    """A slightly larger configuration for integration tests."""
    return SystemConfig(num_nodes=80, rounds=20, seed=3)
