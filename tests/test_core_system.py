"""Integration-level tests for the StreamingSystem orchestration."""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.baseline import CoolStreamingNode
from repro.core.system import StreamingSystem, run_comparison
from repro.net.message import MessageKind


class TestBuild:
    def test_unknown_system_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            StreamingSystem(tiny_config, system="bittorrent")

    def test_build_creates_all_nodes(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        assert len(system.nodes) == tiny_config.num_nodes
        assert system.source_id in system.nodes
        assert system.nodes[system.source_id].is_source

    def test_build_is_idempotent(self, tiny_config):
        system = StreamingSystem(tiny_config)
        system.build()
        node_ids = set(system.nodes)
        system.build()
        assert set(system.nodes) == node_ids

    def test_node_classes_match_system(self, tiny_config):
        conti = StreamingSystem(tiny_config, system="continustreaming").build()
        cool = StreamingSystem(tiny_config, system="coolstreaming").build()
        assert all(isinstance(n, ContinuStreamingNode) for n in conti.nodes.values())
        assert all(isinstance(n, CoolStreamingNode) for n in cool.nodes.values())

    def test_partnerships_are_symmetric(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        for nid, node in system.nodes.items():
            for neighbor in node.neighbors:
                assert system.nodes[neighbor].peer_table.has_neighbor(nid)

    def test_every_node_has_partners(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        for node in system.nodes.values():
            assert len(node.neighbors) >= 1

    def test_source_has_zero_inbound_and_large_outbound(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        source = system.nodes[system.source_id]
        assert source.inbound_rate == 0.0
        assert source.outbound_rate == tiny_config.source_outbound

    def test_dht_fingers_point_at_level_intervals(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        ring = system.ring
        for node in list(system.nodes.values())[:10]:
            for level, entry in node.peer_table.dht_peers.items():
                start, end = ring.level_interval(node.node_id, level)
                assert ring.in_clockwise_interval(entry.peer_id, start, end)

    def test_seed_pairing_gives_identical_topology(self, tiny_config):
        a = StreamingSystem(tiny_config, system="coolstreaming").build()
        b = StreamingSystem(tiny_config, system="continustreaming").build()
        assert sorted(a.nodes) == sorted(b.nodes)
        assert a.source_id == b.source_id
        for nid in a.nodes:
            assert a.nodes[nid].inbound_rate == pytest.approx(b.nodes[nid].inbound_rate)


class TestRounds:
    def test_step_round_advances_time(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        report = system.step_round()
        assert system.now == pytest.approx(tiny_config.scheduling_period)
        assert report.round_index == 0
        assert report.nodes_total == tiny_config.num_nodes - 1

    def test_run_produces_one_report_per_round(self, tiny_config):
        result = StreamingSystem(tiny_config).run()
        assert len(result.rounds) == tiny_config.rounds
        assert len(result.continuity_series()) == tiny_config.rounds

    def test_data_flows_from_the_source(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        for _ in range(5):
            system.step_round()
        received = sum(
            len(node.buffer)
            for nid, node in system.nodes.items()
            if nid != system.source_id
        )
        assert received > 0

    def test_continuity_improves_over_time(self, small_config):
        result = StreamingSystem(small_config, system="continustreaming").run()
        series = result.continuity_series()
        assert max(series[-5:]) > max(series[:3])

    def test_traffic_is_recorded(self, tiny_config):
        result = StreamingSystem(tiny_config).run()
        totals = result.traffic.cumulative()
        assert totals.bits_of(MessageKind.BUFFER_MAP) > 0
        assert totals.bits_of(MessageKind.DATA_SCHEDULED) > 0

    def test_coolstreaming_never_prefetches(self, tiny_config):
        result = StreamingSystem(tiny_config, system="coolstreaming").run()
        totals = result.traffic.cumulative()
        assert totals.bits_of(MessageKind.DATA_PREFETCH) == 0
        assert totals.bits_of(MessageKind.DHT_ROUTING) == 0
        assert result.prefetch_overhead() == 0.0

    def test_continustreaming_prefetch_traffic_appears(self, small_config):
        result = StreamingSystem(small_config, system="continustreaming").run()
        totals = result.traffic.cumulative()
        assert totals.bits_of(MessageKind.DHT_ROUTING) > 0

    def test_prefetch_limit_zero_disables_prefetch(self, tiny_config):
        config = replace(tiny_config, prefetch_limit=0)
        result = StreamingSystem(config, system="continustreaming").run()
        assert result.traffic.cumulative().bits_of(MessageKind.DATA_PREFETCH) == 0

    def test_run_is_reproducible(self, tiny_config):
        a = StreamingSystem(tiny_config, system="continustreaming").run()
        b = StreamingSystem(tiny_config, system="continustreaming").run()
        assert a.continuity_series() == b.continuity_series()
        assert a.prefetch_overhead() == pytest.approx(b.prefetch_overhead())

    def test_different_seeds_differ(self, tiny_config):
        a = StreamingSystem(tiny_config.with_seed(1)).run()
        b = StreamingSystem(tiny_config.with_seed(2)).run()
        assert a.continuity_series() != b.continuity_series()

    def test_bandwidth_budgets_respected(self, tiny_config):
        """No node may receive more segments per round than its inbound budget."""
        system = StreamingSystem(tiny_config).build()
        before = {
            nid: node.stats.segments_received_scheduled
            + node.stats.segments_received_prefetch
            for nid, node in system.nodes.items()
        }
        system.step_round()
        for nid, node in system.nodes.items():
            received = (
                node.stats.segments_received_scheduled
                + node.stats.segments_received_prefetch
                - before[nid]
            )
            budget = node.inbound_rate * tiny_config.scheduling_period
            assert received <= budget + 1e-9


class TestChurn:
    def test_static_run_keeps_population(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        for _ in range(5):
            system.step_round()
        assert len(system.alive_node_ids()) == tiny_config.num_nodes

    def test_dynamic_run_changes_membership(self, tiny_config):
        config = tiny_config.dynamic_variant(0.1)
        system = StreamingSystem(config).build()
        initial_ids = set(system.alive_node_ids())
        for _ in range(6):
            report = system.step_round()
        assert report.nodes_left > 0 or report.nodes_joined > 0
        final_ids = set(system.alive_node_ids())
        assert final_ids != initial_ids

    def test_source_survives_churn(self, tiny_config):
        config = tiny_config.dynamic_variant(0.2)
        system = StreamingSystem(config).build()
        for _ in range(8):
            system.step_round()
        assert system.nodes[system.source_id].alive

    def test_departed_nodes_are_marked_dead(self, tiny_config):
        config = tiny_config.dynamic_variant(0.1)
        system = StreamingSystem(config).build()
        for _ in range(6):
            system.step_round()
        dead = [nid for nid, node in system.nodes.items() if not node.alive]
        assert dead
        alive = set(system.alive_node_ids())
        assert not (alive & set(dead))

    def test_joined_nodes_get_partners_and_bandwidth(self, tiny_config):
        config = tiny_config.dynamic_variant(0.1)
        system = StreamingSystem(config).build()
        initial = set(system.nodes)
        for _ in range(6):
            system.step_round()
        joiners = [nid for nid in system.alive_node_ids() if nid not in initial]
        assert joiners
        for nid in joiners:
            node = system.nodes[nid]
            assert node.neighbors, "joiner must have connected neighbours"
            assert nid in system.bandwidth

    def test_alive_partner_lists_stay_alive_after_repair(self, tiny_config):
        config = tiny_config.dynamic_variant(0.1)
        system = StreamingSystem(config).build()
        for _ in range(6):
            system.step_round()
        for nid in system.alive_node_ids():
            for neighbor in system.nodes[nid].peer_table.neighbor_ids():
                assert system.nodes[neighbor].alive


class TestDeterminism:
    """Two runs from the same seed must be byte-identical (guards the
    pipeline refactor against ordering regressions)."""

    @pytest.mark.parametrize("system", ["coolstreaming", "continustreaming"])
    def test_same_seed_gives_identical_round_reports(self, tiny_config, system):
        a = StreamingSystem(tiny_config, system=system).run()
        b = StreamingSystem(tiny_config, system=system).run()
        assert repr(a.rounds) == repr(b.rounds)
        assert [asdict(r) for r in a.rounds] == [asdict(r) for r in b.rounds]

    @pytest.mark.parametrize("system", ["coolstreaming", "continustreaming"])
    def test_same_seed_identical_under_churn(self, tiny_config, system):
        config = tiny_config.dynamic_variant(0.1)
        a = StreamingSystem(config, system=system).run()
        b = StreamingSystem(config, system=system).run()
        assert repr(a.rounds) == repr(b.rounds)
        assert a.control_overhead() == pytest.approx(b.control_overhead())
        assert a.prefetch_overhead() == pytest.approx(b.prefetch_overhead())


class TestEventDrivenClock:
    """The discrete-event engine is the single clock source during a run."""

    def test_rounds_are_events_on_the_simulator(self, tiny_config):
        system = StreamingSystem(tiny_config).build()
        assert system.sim.events_processed == 0
        system.step_round()
        # At least the round-begin and round-commit events fired.
        assert system.sim.events_processed >= 2
        assert system.now == system.sim.now

    def test_prefetch_fetches_run_as_intra_round_events(self, small_config):
        system = StreamingSystem(small_config, system="continustreaming").build()
        for _ in range(small_config.rounds):
            system.step_round()
        triggered = sum(r.prefetch_triggers for r in system.reports)
        rounds = len(system.reports)
        assert triggered > 0
        # begin + commit per round, plus one event per triggered node.
        assert system.sim.events_processed == 2 * rounds + triggered

    def test_run_drains_the_event_queue(self, tiny_config):
        system = StreamingSystem(tiny_config)
        system.run()
        assert len(system.sim.queue) == 0
        assert system.now == pytest.approx(tiny_config.duration)


class TestHeadlineComparison:
    def test_continustreaming_beats_coolstreaming_static(self, small_config):
        results = run_comparison(small_config)
        cool = results["coolstreaming"].stable_continuity()
        conti = results["continustreaming"].stable_continuity()
        assert conti > cool

    def test_prefetch_overhead_is_small(self, small_config):
        result = StreamingSystem(small_config, system="continustreaming").run()
        assert 0.0 < result.prefetch_overhead() < 0.15

    def test_control_overhead_is_small(self, small_config):
        for system in ("coolstreaming", "continustreaming"):
            result = StreamingSystem(small_config, system=system).run()
            assert 0.0 < result.control_overhead() < 0.1
