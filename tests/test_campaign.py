"""Tests for the campaign runner and the unified results store."""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner as cli_runner
from repro.scenarios import (
    CampaignRunner,
    CampaignSpec,
    CellResult,
    ResultsStore,
    ScenarioSpec,
    builtin_scenario,
    cell_seed_for,
    run_campaign,
)

TINY_OVERRIDES = dict(
    buffer_capacity=200, scheduling_window=80, playback_lag_segments=40
)


def tiny_scenarios():
    """Two fast scenarios (30 nodes) for grid tests."""
    return tuple(
        ScenarioSpec.from_dict(
            {
                **builtin_scenario(name).scaled(num_nodes=30, rounds=4).to_dict(),
                "config_overrides": TINY_OVERRIDES,
            }
        )
        for name in ("static", "paper-dynamic")
    )


def comparable_records(store: ResultsStore):
    """Record dicts with the wall-clock timing stripped."""
    records = []
    for result in store:
        record = result.to_record()
        record.pop("wall_time_s")
        records.append(record)
    return records


class TestCellSeeding:
    def test_cell_seed_is_deterministic_and_coordinate_dependent(self):
        assert cell_seed_for(0, "static", 30) == cell_seed_for(0, "static", 30)
        seeds = {
            cell_seed_for(0, "static", 30),
            cell_seed_for(1, "static", 30),
            cell_seed_for(0, "flash-crowd", 30),
            cell_seed_for(0, "static", 60),
        }
        assert len(seeds) == 4

    def test_systems_are_paired_on_the_same_cell_seed(self):
        # Cross-system comparisons must run on identical topology/bandwidth
        # (the repo's paired A/B methodology), so the cell seed is
        # independent of the protocol.
        campaign = CampaignSpec(
            scenarios=tiny_scenarios()[:1],
            seeds=(0,),
            systems=("coolstreaming", "continustreaming"),
        )
        payloads = campaign.cell_payloads()
        assert len(payloads) == 2
        assert payloads[0]["cell_seed"] == payloads[1]["cell_seed"]
        assert {p["system"] for p in payloads} == {
            "coolstreaming", "continustreaming"
        }

    def test_grid_order_is_deterministic(self):
        campaign = CampaignSpec(
            scenarios=tiny_scenarios(), seeds=(0, 1), node_counts=(30,)
        )
        payloads = campaign.cell_payloads()
        assert len(payloads) == 4
        coordinates = [
            (p["scenario"]["name"], p["num_nodes"], p["seed"]) for p in payloads
        ]
        assert coordinates == [
            ("static", 30, 0),
            ("static", 30, 1),
            ("paper-dynamic", 30, 0),
            ("paper-dynamic", 30, 1),
        ]
        assert campaign.cell_payloads() == payloads

    def test_campaign_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(scenarios=())
        with pytest.raises(ValueError):
            CampaignSpec(scenarios=tiny_scenarios(), seeds=())
        with pytest.raises(ValueError):
            CampaignRunner(CampaignSpec(scenarios=tiny_scenarios()), workers=0)

    def test_duplicate_scenario_names_rejected(self):
        # Seeds and result groups key on the name; two different workloads
        # sharing one would silently merge.
        static = builtin_scenario("static")
        variant = static.scaled(num_nodes=60)
        with pytest.raises(ValueError, match="duplicate scenario names.*static"):
            CampaignSpec(scenarios=(static, variant))

    def test_results_stream_to_jsonl_as_cells_finish(self, tmp_path):
        # The serial path appends each cell before starting the next, so an
        # interrupted campaign keeps its finished prefix on disk.
        path = tmp_path / "cells.jsonl"
        store = ResultsStore(path=path)
        campaign = CampaignSpec(scenarios=tiny_scenarios()[:1], seeds=(0, 1))
        seen_lines = []
        original_append = ResultsStore.append

        def tracking_append(self, result):
            original_append(self, result)
            seen_lines.append(len(path.read_text().strip().splitlines()))

        ResultsStore.append = tracking_append
        try:
            CampaignRunner(campaign, workers=1).run(store)
        finally:
            ResultsStore.append = original_append
        assert seen_lines == [1, 2]


class TestCampaignDeterminism:
    def test_same_seeds_produce_identical_metrics(self):
        campaign = CampaignSpec(scenarios=tiny_scenarios(), seeds=(0, 1))
        first = CampaignRunner(campaign, workers=1).run()
        second = CampaignRunner(campaign, workers=1).run()
        assert comparable_records(first) == comparable_records(second)
        assert json.dumps(first.summary(), sort_keys=True) == json.dumps(
            second.summary(), sort_keys=True
        )

    def test_parallel_equals_serial(self):
        campaign = CampaignSpec(scenarios=tiny_scenarios(), seeds=(0, 1))
        serial = CampaignRunner(campaign, workers=1).run()
        parallel = CampaignRunner(campaign, workers=2).run()
        assert comparable_records(serial) == comparable_records(parallel)
        assert json.dumps(serial.summary(), sort_keys=True) == json.dumps(
            parallel.summary(), sort_keys=True
        )

    def test_run_campaign_wrapper_with_store(self, tmp_path):
        store = run_campaign(
            ["static"],
            seeds=[0],
            node_counts=[30],
            rounds=3,
            workers=1,
            results_path=tmp_path / "results.jsonl",
        )
        assert len(store) == 1
        reloaded = ResultsStore.load(tmp_path / "results.jsonl")
        assert comparable_records(reloaded) == comparable_records(store)


class TestResultsStore:
    @staticmethod
    def make_result(seed: int, continuity: float) -> CellResult:
        return CellResult(
            scenario="static",
            system="continustreaming",
            num_nodes=30,
            seed=seed,
            cell_seed=seed,
            rounds=4,
            metrics={"stable_continuity": continuity},
            wall_time_s=0.5,
        )

    def test_summary_statistics(self):
        store = ResultsStore()
        store.append(self.make_result(0, 0.8))
        store.append(self.make_result(1, 0.9))
        summary = store.summary()
        stats = summary["static/continustreaming/n30"]["stable_continuity"]
        assert stats["mean"] == pytest.approx(0.85)
        assert stats["count"] == 2
        # ci95 uses the sample std (ddof=1), not the population std.
        sample_std = stats["std"] * (2 / 1) ** 0.5
        assert stats["ci95"] == pytest.approx(1.96 * sample_std / 2**0.5)
        assert store.total_wall_time_s() == pytest.approx(1.0)

    def test_single_seed_has_zero_ci(self):
        store = ResultsStore()
        store.append(self.make_result(0, 0.8))
        stats = store.summary()["static/continustreaming/n30"]["stable_continuity"]
        assert stats["ci95"] == 0.0

    def test_jsonl_streaming_and_summary_file(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        store = ResultsStore(path=path)
        store.append(self.make_result(0, 0.8))
        store.append(self.make_result(1, 0.9))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["seed"] == 0
        summary_path = store.write_summary(tmp_path / "summary.json")
        payload = json.loads(summary_path.read_text())
        assert "static/continustreaming/n30" in payload

    def test_formatting_smoke(self):
        store = ResultsStore()
        store.append(self.make_result(0, 0.8))
        assert "seed=0" in store.format_results()
        assert "static/continustreaming/n30" in store.format_summary()


class TestCampaignCli:
    def test_campaign_command(self, capsys):
        exit_code = cli_runner.main(
            [
                "campaign",
                "--scenario", "static",
                "--seeds", "2",
                "--workers", "2",
                "--nodes", "30",
                "--rounds", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "per-seed results:" in output
        assert "seed=0" in output and "seed=1" in output
        assert "aggregates (mean ± 95% CI over seeds):" in output

    def test_campaign_writes_output_files(self, capsys, tmp_path):
        exit_code = cli_runner.main(
            [
                "campaign",
                "--scenario", "static",
                "--seeds", "1",
                "--nodes", "30",
                "--rounds", "3",
                "--out", str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "campaign_results.jsonl").is_file()
        assert (tmp_path / "campaign_summary.json").is_file()

    def test_seed_flag_offsets_the_sweep(self, capsys):
        exit_code = cli_runner.main(
            [
                "campaign",
                "--scenario", "static",
                "--seed", "7",
                "--seeds", "2",
                "--nodes", "30",
                "--rounds", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "seed=7" in output and "seed=8" in output
        assert "seed=0" not in output

    def test_all_excludes_campaign_and_runtime(self):
        assert "campaign" in cli_runner.COMMANDS
        assert "runtime" in cli_runner.COMMANDS
        assert "campaign" in cli_runner._EXCLUDED_FROM_ALL
        assert "runtime" in cli_runner._EXCLUDED_FROM_ALL


class TestIncompleteCampaigns:
    """Interrupts and worker death flush partial results instead of losing them."""

    def test_keyboard_interrupt_flushes_partial_jsonl(self, tmp_path, monkeypatch):
        from repro.scenarios import campaign as campaign_mod

        campaign = CampaignSpec(scenarios=tiny_scenarios(), seeds=(0, 1))
        assert len(campaign.cell_payloads()) == 4
        original = campaign_mod.run_cell
        calls = {"done": 0}

        def interrupted_run_cell(payload):
            if calls["done"] >= 2:
                raise KeyboardInterrupt
            calls["done"] += 1
            return original(payload)

        monkeypatch.setattr(campaign_mod, "run_cell", interrupted_run_cell)
        path = tmp_path / "results.jsonl"
        store = CampaignRunner(campaign, workers=1).run(ResultsStore(path=path))
        assert len(store) == 2
        assert not store.is_complete
        assert "KeyboardInterrupt" in store.incomplete_reason
        assert len(store.missing_cells) == 2
        for cell in store.missing_cells:
            assert set(cell) == {"scenario", "system", "num_nodes", "seed"}
        # the finished prefix and the marker both survived on disk
        loaded = ResultsStore.load(path)
        assert len(loaded) == 2
        assert not loaded.is_complete
        assert loaded.incomplete_reason == store.incomplete_reason
        assert loaded.missing_cells == store.missing_cells

    def test_worker_failure_marks_incomplete_instead_of_raising(self, tmp_path):
        good = tiny_scenarios()[0].scaled(rounds=2)
        bad = ScenarioSpec.from_dict(
            {
                **good.to_dict(),
                "name": "bad-cell",
                # passes spec validation, explodes inside the worker's
                # SystemConfig construction — a deterministic worker death
                "config_overrides": {"no_such_config_option": 1},
            }
        )
        campaign = CampaignSpec(scenarios=(good, bad), seeds=(0,))
        path = tmp_path / "results.jsonl"
        store = CampaignRunner(campaign, workers=2).run(ResultsStore(path=path))
        assert len(store) == 1
        assert not store.is_complete
        assert store.incomplete_reason.startswith("worker failed")
        assert [cell["scenario"] for cell in store.missing_cells] == ["bad-cell"]

    def test_incomplete_summary_file_is_self_describing(self, tmp_path, monkeypatch):
        from repro.scenarios import campaign as campaign_mod

        campaign = CampaignSpec(scenarios=tiny_scenarios()[:1], seeds=(0, 1))

        def always_interrupt(payload):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign_mod, "run_cell", always_interrupt)
        store = CampaignRunner(campaign, workers=1).run()
        summary_path = tmp_path / "summary.json"
        store.write_summary(summary_path)
        payload = json.loads(summary_path.read_text())
        assert "__incomplete__" in payload
        assert payload["__incomplete__"]["reason"] == store.incomplete_reason
        assert len(payload["__incomplete__"]["missing_cells"]) == 2
        assert "WARNING" in store.format_incomplete()

    def test_complete_campaign_stays_unmarked(self, tmp_path):
        store = run_campaign(
            [tiny_scenarios()[0].scaled(rounds=2)],
            seeds=(0,),
            results_path=tmp_path / "results.jsonl",
        )
        assert store.is_complete
        assert store.format_incomplete() == ""
        summary_path = store.write_summary(tmp_path / "summary.json")
        assert "__incomplete__" not in json.loads(summary_path.read_text())
