"""Flow matrix, overlay topology, and run diffing (the obs plane's
cross-shard introspection layer).

Covers the bounded :class:`FlowMatrix` accounting (compaction must
conserve totals), :func:`merge_topo`'s cross-shard graph union,
:func:`diff_obs` verdict semantics (what is a regression vs a warning
vs noise), the JSONL round-trip of the new record kinds, and the
``obs diff`` CLI end-to-end — including the load-bearing promise that
two same-seed virtual runs diff clean.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main
from repro.obs import (
    FlowMatrix,
    ObsConfig,
    TopologyObserver,
    diff_obs,
    load_obs_jsonl,
    merge_flows,
    merge_topo,
    render_diff,
    write_obs_jsonl,
)
from repro.runtime import LiveSwarm
from repro.scenarios.library import builtin_scenario


@pytest.fixture(scope="module")
def traced_export():
    """One small traced virtual run's merged obs export."""
    spec = builtin_scenario("static").scaled(num_nodes=30, rounds=8, seed=3)
    result = LiveSwarm(spec, clock="virtual", obs=ObsConfig(trace_sample=4)).run()
    assert result.obs is not None
    return result.obs


class TestFlowMatrix:
    def test_record_splits_data_from_control(self):
        fm = FlowMatrix(top_links=8)
        fm.record(1, 2, 100, data=True)
        fm.record(1, 2, 40, data=False)
        fm.record(2, 1, 10, data=False)
        out = fm.to_dict()
        assert out["links"] == [[1, 2, 2, 140, 1, 100], [2, 1, 1, 10, 0, 0]]
        assert out["tail"]["links"] == 0

    def test_compaction_bounds_memory_and_conserves_totals(self):
        fm = FlowMatrix(top_links=2)
        frames = 0
        nbytes = 0
        for src in range(20):
            for _ in range(src + 1):  # heavier links for higher src
                fm.record(src, 99, 10, data=True)
                frames += 1
                nbytes += 10
        assert len(fm.links) <= 4 * fm.top_links
        out = fm.to_dict()
        assert len(out["links"]) <= 2
        # The heaviest talkers survive compaction...
        assert [row[:2] for row in out["links"]] == [[19, 99], [18, 99]]
        # ...and nothing is lost: links + tail add back to the totals.
        total_frames = sum(r[2] for r in out["links"]) + out["tail"]["frames"]
        total_bytes = sum(r[3] for r in out["links"]) + out["tail"]["bytes"]
        assert (total_frames, total_bytes) == (frames, nbytes)
        assert out["tail"]["data_bytes"] + sum(r[5] for r in out["links"]) == nbytes

    def test_to_dict_export_is_nondestructive(self):
        fm = FlowMatrix(top_links=1)
        for src in range(3):
            fm.record(src, 9, 10 * (src + 1), data=False)
        first = fm.to_dict()
        second = fm.to_dict()
        assert first == second
        assert len(fm.links) == 3  # live table untouched by export folding

    def test_pair_delta_is_incremental(self):
        fm = FlowMatrix()
        fm.record_physical(0, 1, 500, frames=3)
        assert fm.pair_delta() == [[0, 1, 3, 500]]
        assert fm.pair_delta() == []  # nothing new since last call
        fm.record_physical(0, 1, 100, frames=1)
        fm.record_physical(1, 0, 50, frames=1)
        assert fm.pair_delta() == [[0, 1, 1, 100], [1, 0, 1, 50]]
        out = fm.to_dict()
        assert out["pairs"] == [[0, 1, 4, 600], [1, 0, 1, 50]]

    def test_empty_and_validation(self):
        assert FlowMatrix().empty
        fm = FlowMatrix()
        fm.record(1, 2, 1, data=False)
        assert not fm.empty
        with pytest.raises(ValueError):
            FlowMatrix(top_links=0)

    def test_merge_flows_sums_links_pairs_and_tails(self):
        a = FlowMatrix(top_links=4)
        a.record(1, 2, 100, data=True)
        a.record_physical(0, 1, 100)
        b = FlowMatrix(top_links=4)
        b.record(1, 2, 50, data=False)
        b.record(3, 4, 10, data=False)
        b.record_physical(0, 1, 50)
        b.record_physical(1, 0, 5)
        merged = merge_flows([a.to_dict(), None, b.to_dict()])
        assert merged["links"][0] == [1, 2, 2, 150, 1, 100]
        assert [3, 4, 1, 10, 0, 0] in merged["links"]
        assert merged["pairs"] == [[0, 1, 2, 150], [1, 0, 1, 5]]
        assert merge_flows([None, None]) is None

    def test_merge_rebounds_to_top_k(self):
        parts = []
        for shard in range(3):
            fm = FlowMatrix(top_links=2)
            fm.record(shard * 10, 99, 100 - shard, data=False)
            fm.record(shard * 10 + 1, 99, 1, data=False)
            parts.append(fm.to_dict())
        merged = merge_flows(parts)
        assert merged["top_links"] == 2
        assert len(merged["links"]) == 2
        kept = sum(r[3] for r in merged["links"])
        assert kept + merged["tail"]["bytes"] == sum(
            sum(r[3] for r in p["links"]) for p in parts
        )


class TestTopology:
    def test_observer_validates_coverage_periods(self):
        with pytest.raises(ValueError):
            TopologyObserver(coverage_periods=0)
        assert TopologyObserver().telemetry() is None

    def test_merge_topo_unions_shards_and_detects_partitions(self):
        part_a = {
            "period": 5, "coverage_periods": 3,
            "adjacency": [[1, [2]], [2, [1]]],
            "partner_pairs": 2, "covered_pairs": 2,
            "finger_alive": 3, "finger_total": 4,
        }
        part_b = {
            "period": 6, "coverage_periods": 3,
            "adjacency": [[7, [8]], [8, [7]]],
            "partner_pairs": 2, "covered_pairs": 1,
            "finger_alive": 1, "finger_total": 4,
        }
        merged = merge_topo([part_a, None, part_b])
        assert merged["shards_merged"] == 2
        assert merged["period"] == 6
        # {1,2} and {7,8} never connect: the union has two components.
        assert merged["components"] == 2
        assert merged["component_nodes"] == 4
        assert merged["coverage"] == pytest.approx(3 / 4)
        assert merged["finger_health"] == pytest.approx(4 / 8)
        assert merged["nodes"] == 4 and merged["edges"] == 4
        assert merge_topo([None]) is None

    def test_merge_topo_bridged_shards_form_one_component(self):
        part_a = {"adjacency": [[1, [2]]], "partner_pairs": 1, "covered_pairs": 1}
        part_b = {"adjacency": [[2, [3]], [3, [1]]],
                  "partner_pairs": 2, "covered_pairs": 2}
        merged = merge_topo([part_a, part_b])
        assert merged["components"] == 1
        assert merged["component_nodes"] == 3

    def test_live_run_exports_consistent_topology(self, traced_export):
        topo = traced_export["topo"]
        degree_sum = sum(len(nbrs) for _, nbrs in topo["adjacency"])
        assert degree_sum == topo["edges"] == topo["partner_pairs"]
        assert topo["nodes"] == len(topo["adjacency"])
        assert sum(n for _, n in topo["out_degree_hist"]) == topo["nodes"]


class TestDiffObs:
    def _export(self, **over):
        base = {
            "metrics": {
                "counters": {"messages_sent": 1000.0, "segments_dropped": 10.0},
                "series": {"continuity": [[0, 0.9], [1, 0.95]]},
            },
            "traces": {
                "sampled": 100, "played": 95,
                "request_to_deliver_s": {"p50": 0.5, "p95": 1.0},
            },
            "postmortems": [],
            "flows": {
                "links": [[1, 2, 10, 1000, 5, 800]],
                "pairs": [[0, 1, 10, 1000]],
            },
        }
        base.update(over)
        return base

    def test_identical_exports_diff_clean(self):
        diff = diff_obs(self._export(), self._export())
        assert diff["ok"]
        assert diff["regressions"] == []
        assert diff["warnings"] == []
        assert diff["changes"] == []
        assert "OK" in render_diff(diff)

    def test_p95_latency_regression_is_flagged(self):
        cand = self._export()
        cand["traces"] = dict(cand["traces"],
                              request_to_deliver_s={"p50": 0.5, "p95": 1.3})
        diff = diff_obs(self._export(), cand)
        assert not diff["ok"]
        assert any(r["kind"] == "trace_p95" for r in diff["regressions"])
        assert "regression: trace_p95" in render_diff(diff)

    def test_sub_millisecond_jitter_never_regresses(self):
        base = self._export()
        base["traces"] = dict(base["traces"],
                              request_to_deliver_s={"p50": 1e-4, "p95": 2e-4})
        cand = self._export()
        cand["traces"] = dict(cand["traces"],
                              request_to_deliver_s={"p50": 5e-4, "p95": 9e-4})
        assert diff_obs(base, cand)["ok"]  # 350% worse but under the abs floor

    def test_played_fraction_drop_and_new_postmortems_regress(self):
        cand = self._export(postmortems=[{"reason": "stall"}])
        cand["traces"] = dict(cand["traces"], played=80)
        diff = diff_obs(self._export(), cand)
        kinds = {r["kind"] for r in diff["regressions"]}
        assert {"trace_played_fraction", "postmortems"} <= kinds

    def test_bad_counter_growth_warns_but_does_not_fail(self):
        cand = self._export()
        cand["metrics"] = {
            "counters": {"messages_sent": 1020.0, "segments_dropped": 30.0},
            "series": cand["metrics"]["series"],
        }
        diff = diff_obs(self._export(), cand)
        assert diff["ok"]
        assert [w["name"] for w in diff["warnings"]] == ["segments_dropped"]
        # messages_sent moved 2% — inside the 5% counter tolerance.
        assert diff["changes"] == []

    def test_flow_churn_and_byte_ratio_are_informational(self):
        cand = self._export()
        cand["flows"] = {
            "links": [[1, 3, 10, 900, 5, 700]],  # different link set
            "pairs": [[0, 1, 12, 1500]],
        }
        diff = diff_obs(self._export(), cand)
        assert diff["ok"]
        assert diff["flows"]["link_churn"] == pytest.approx(1.0)
        assert diff["flows"]["total_bytes"]["ratio"] == pytest.approx(1.5)
        report = render_diff(diff)
        assert "flow link churn" in report
        assert "wire bytes" in report

    def test_series_movers_rank_by_relative_shift(self):
        cand = self._export()
        cand["metrics"] = {
            "counters": dict(cand["metrics"]["counters"]),
            "series": {"continuity": [[0, 0.45], [1, 0.475]]},
        }
        diff = diff_obs(self._export(), cand)
        movers = diff["series_movers"]
        assert movers[0]["name"] == "continuity"
        assert movers[0]["rel_mean_shift"] == pytest.approx(-0.5)


class TestJsonlRoundTrip:
    def test_flows_topo_and_socket_links_survive_the_artifact(
        self, traced_export, tmp_path
    ):
        obs = dict(traced_export)
        obs["socket_links"] = [
            {"src_shard": 0, "dst_shard": 1, "frames_out": 9, "frames_in": 8,
             "bytes_out": 900, "bytes_in": 800, "sheds": 0, "disconnects": 1,
             "reconnects": 1, "lost": 0},
        ]
        path = write_obs_jsonl(tmp_path / "obs.jsonl", obs)
        kinds = {json.loads(line)["type"] for line in path.read_text().splitlines()}
        assert {"flows", "topo", "socket_link"} <= kinds
        loaded = load_obs_jsonl(path)
        normalize = lambda value: json.loads(json.dumps(value))  # noqa: E731
        assert loaded["flows"] == normalize(obs["flows"])
        assert loaded["topo"] == normalize(obs["topo"])
        assert loaded["socket_links"] == normalize(obs["socket_links"])


class TestObsDiffCli:
    def _export_run(self, tmp_path, name):
        spec = builtin_scenario("static").scaled(num_nodes=24, rounds=6, seed=7)
        result = LiveSwarm(spec, clock="virtual", obs=ObsConfig(trace_sample=4)).run()
        return write_obs_jsonl(tmp_path / name, result.obs)

    def test_same_seed_runs_diff_with_zero_regressions(self, tmp_path, capsys):
        baseline = self._export_run(tmp_path, "a.jsonl")
        candidate = self._export_run(tmp_path, "b.jsonl")
        verdict_path = tmp_path / "verdict.json"
        code = main([
            "obs", "diff", "--baseline", str(baseline), "--in", str(candidate),
            "--verdict-out", str(verdict_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "obs diff: OK" in out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["ok"] is True
        assert verdict["regressions"] == []
        assert verdict["warnings"] == []
        assert verdict["baseline"] == str(baseline)
        assert verdict["candidate"] == str(candidate)

    def test_strict_mode_gates_on_regressions(self, tmp_path):
        base = {"traces": {"sampled": 10, "played": 10,
                           "request_to_deliver_s": {"p95": 1.0}}}
        cand = {"traces": {"sampled": 10, "played": 10,
                           "request_to_deliver_s": {"p95": 2.0}}}
        a = write_obs_jsonl(tmp_path / "a.jsonl", base)
        b = write_obs_jsonl(tmp_path / "b.jsonl", cand)
        with pytest.raises(SystemExit, match="REGRESSIONS"):
            main(["obs", "diff", "--baseline", str(a), "--in", str(b), "--strict"])
        # warn-only default: the same diff exits 0
        assert main(["obs", "diff", "--baseline", str(a), "--in", str(b)]) == 0

    def test_cli_guards(self, tmp_path):
        with pytest.raises(SystemExit, match="needs --baseline"):
            main(["obs", "diff", "--in", str(tmp_path / "x.jsonl")])
        with pytest.raises(SystemExit, match="unknown obs mode"):
            main(["obs", "frobnicate", "--in", str(tmp_path / "x.jsonl")])
        with pytest.raises(SystemExit, match="no sub-mode"):
            main(["fig3", "diff"])
