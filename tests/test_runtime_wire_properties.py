"""Hypothesis property tests for the runtime wire codec.

Three properties, each over generated rather than hand-picked inputs:

1. **Round-trip** — every valid frame of every kind decodes back to the
   message that encoded it (``DhtResponse.rate`` is exact because the
   strategy draws float32-representable values, matching the wire width).
2. **Garbage resilience** — feeding arbitrary bytes to a
   :class:`~repro.runtime.wire.FrameDecoder` either yields messages or
   raises :class:`~repro.runtime.wire.WireError` (the documented
   poisoned-stream signal); never any other exception, never an
   unbounded buffer (a hostile length prefix cannot make it allocate
   past one frame).
3. **Truncation at every offset** — a valid frame split at *every* byte
   position decodes once the rest arrives, and arbitrary re-chunkings of
   a frame sequence deliver the same messages in the same order.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.runtime import wire  # noqa: E402
from repro.streaming.buffermap import BufferMap  # noqa: E402

u32 = st.integers(0, 2**32 - 1)
u16 = st.integers(0, 2**16 - 1)
#: 0 (untraced, the wire-identical fast path) or any u64 trace id.
trace_ids = st.one_of(st.just(0), st.integers(0, 2**64 - 1))
flags = st.booleans()
paths = st.lists(u32, max_size=64).map(tuple)
rates = st.floats(
    width=32, min_value=0.0, allow_nan=False, allow_infinity=False
)


@st.composite
def buffer_map_msgs(draw):
    capacity = draw(st.integers(1, 700))
    nbytes = (capacity + 7) // 8
    return wire.BufferMapMsg(
        sender=draw(u32),
        newest_id=draw(st.integers(-1, 2**31 - 1)),
        head_id=draw(u32),
        capacity=capacity,
        bitmap=draw(st.binary(min_size=nbytes, max_size=nbytes)),
        seq=draw(u32),
    )


@st.composite
def buffer_map_deltas(draw):
    capacity = draw(st.integers(1, 700))
    # Ascending, disjoint (offset, length) runs inside the window.
    runs = []
    cursor = 0
    for _ in range(draw(st.integers(0, 8))):
        if cursor >= capacity:
            break
        start = draw(st.integers(cursor, capacity - 1))
        length = draw(st.integers(1, capacity - start))
        runs.append((start, length))
        cursor = start + length
    return wire.BufferMapDelta(
        sender=draw(u32),
        seq=draw(u32),
        newest_id=draw(st.integers(-1, 2**31 - 1)),
        head_id=draw(u32),
        capacity=capacity,
        runs=tuple(runs),
    )


_batchable_messages = st.deferred(
    lambda: st.one_of(
        buffer_map_msgs(),
        buffer_map_deltas(),
        st.builds(
            wire.SegmentRequest, sender=u32, segment_id=u32, prefetch=flags,
            trace_id=trace_ids,
        ),
        st.builds(
            wire.SegmentData, sender=u32, segment_id=u32, size_bits=u32,
            prefetch=flags, trace_id=trace_ids,
        ),
        st.builds(wire.Ping, sender=u32, nonce=u32),
        st.builds(wire.CreditGrant, sender=u32, credits=st.integers(1, 2**16 - 1)),
        st.builds(
            wire.RoutedFrame, src=u32, dst=u32,
            payload=st.binary(max_size=64), data=flags,
        ),
    )
)


@st.composite
def frame_batches(draw):
    inner = draw(st.lists(_batchable_messages, min_size=1, max_size=6))
    return wire.FrameBatch(frames=tuple(wire.encode(m) for m in inner))


wire_messages = st.one_of(
    buffer_map_msgs(),
    st.builds(
        wire.SegmentRequest, sender=u32, segment_id=u32, prefetch=flags,
        trace_id=trace_ids,
    ),
    st.builds(
        wire.SegmentNack, sender=u32, segment_id=u32, prefetch=flags,
        trace_id=trace_ids,
    ),
    st.builds(
        wire.SegmentData, sender=u32, segment_id=u32, size_bits=u32, prefetch=flags,
        trace_id=trace_ids,
    ),
    st.builds(
        wire.DhtLookup, origin=u32, target_key=u32, segment_id=u32, path=paths
    ),
    st.builds(
        wire.DhtResponse,
        responder=u32,
        origin=u32,
        target_key=u32,
        segment_id=u32,
        has_data=flags,
        rate=rates,
        path=paths,
    ),
    st.builds(wire.Ping, sender=u32, nonce=u32),
    st.builds(wire.Pong, sender=u32, nonce=u32),
    st.builds(
        wire.Handover,
        sender=u32,
        segment_bits=u32,
        segment_ids=st.lists(u32, max_size=128).map(tuple),
    ),
    st.builds(wire.CreditGrant, sender=u32, credits=st.integers(1, 2**16 - 1)),
    st.builds(
        wire.ShardHello,
        shard_index=u16,
        num_shards=st.integers(1, 2**16 - 1),
        token=u32,
        ring_size=u32,
    ),
    # The routed envelope's payload is opaque to the codec (the inner
    # frame is validated by the destination peer's decoder), so any byte
    # string must round-trip — including bytes that are not a valid frame.
    st.builds(
        wire.RoutedFrame,
        src=u32,
        dst=u32,
        payload=st.binary(max_size=512),
        data=flags,
    ),
    buffer_map_deltas(),
    frame_batches(),
    # Telemetry payloads are opaque bytes on the wire — arbitrary byte
    # strings (not just valid JSON) must round-trip unchanged.
    st.builds(
        wire.TelemetryFrame,
        shard=u16,
        period=u32,
        payload=st.binary(max_size=256),
    ),
)


class TestRoundTripProperty:
    @given(msg=wire_messages)
    @settings(max_examples=300, deadline=None)
    def test_any_valid_frame_round_trips(self, msg):
        frame = wire.encode(msg)
        decoded, consumed = wire.decode(frame)
        assert consumed == len(frame)
        assert decoded == msg

    @given(msgs=st.lists(wire_messages, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_concatenated_frames_round_trip_in_order(self, msgs):
        stream = b"".join(wire.encode(m) for m in msgs)
        decoded = wire.FrameDecoder().feed(stream)
        assert decoded == msgs


class TestGarbageResilience:
    @given(garbage=st.binary(max_size=4096))
    @settings(max_examples=300, deadline=None)
    def test_decoder_raises_nothing_but_wire_errors(self, garbage):
        decoder = wire.FrameDecoder()
        try:
            messages = decoder.feed(garbage)
        except wire.WireError:
            return  # poisoned stream: the documented failure mode
        for msg in messages:
            assert wire.encode(msg)  # whatever decoded is a valid message
        # partial trailing bytes stay bounded by one frame
        assert decoder.pending_bytes <= wire.MAX_FRAME_PAYLOAD + 4

    @given(garbage=st.binary(max_size=512), msg=wire_messages)
    @settings(max_examples=150, deadline=None)
    def test_frames_fed_before_poisoning_are_unaffected(self, garbage, msg):
        decoder = wire.FrameDecoder()
        messages = decoder.feed(wire.encode(msg))
        assert messages == [msg]
        try:
            later = decoder.feed(garbage)
        except wire.WireError:
            return  # poisoning only affects the stream from here on
        for extra in later:
            assert wire.encode(extra)

    @given(prefix=st.binary(min_size=4, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_hostile_length_prefix_cannot_demand_unbounded_memory(self, prefix):
        decoder = wire.FrameDecoder()
        try:
            decoder.feed(prefix)
        except wire.WireError:
            return
        assert decoder.pending_bytes <= wire.MAX_FRAME_PAYLOAD + 4


class TestTruncationProperty:
    @given(msg=wire_messages)
    @settings(max_examples=150, deadline=None)
    def test_split_at_every_offset_decodes_after_completion(self, msg):
        frame = wire.encode(msg)
        for offset in range(len(frame) + 1):
            decoder = wire.FrameDecoder()
            first = decoder.feed(frame[:offset])
            rest = decoder.feed(frame[offset:])
            assert first + rest == [msg], f"split at {offset} failed"
            assert decoder.pending_bytes == 0

    @given(msg=wire_messages)
    @settings(max_examples=150, deadline=None)
    def test_decode_of_every_truncation_raises_truncated(self, msg):
        frame = wire.encode(msg)
        for offset in range(len(frame)):
            with pytest.raises(wire.TruncatedFrameError):
                wire.decode(frame[:offset])

    @given(
        msgs=st.lists(wire_messages, min_size=1, max_size=5),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_rechunking_preserves_the_message_sequence(self, msgs, data):
        stream = b"".join(wire.encode(m) for m in msgs)
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, len(stream)), max_size=10),
                label="chunk boundaries",
            )
        )
        decoder = wire.FrameDecoder()
        decoded = []
        last = 0
        for cut in cuts + [len(stream)]:
            decoded.extend(decoder.feed(stream[last:cut]))
            last = cut
        assert decoded == msgs
        assert decoder.pending_bytes == 0


@st.composite
def buffer_maps(draw, head_id=None, capacity=None):
    if capacity is None:
        capacity = draw(st.integers(1, 256))
    if head_id is None:
        head_id = draw(st.integers(0, 2**20))
    offsets = draw(
        st.sets(st.integers(0, capacity - 1), max_size=min(capacity, 64))
    )
    return BufferMap(
        head_id=head_id,
        capacity=capacity,
        present=frozenset(head_id + o for o in offsets),
    )


class TestBufferMapDeltaProperty:
    """``BufferMapDelta.from_maps`` → wire → ``apply`` reconstructs the map."""

    @given(data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_delta_applied_to_base_reconstructs_new_map(self, data):
        capacity = data.draw(st.integers(1, 256), label="capacity")
        base_head = data.draw(st.integers(0, 2**20), label="base head")
        # The window may slide forward between snapshots (or stay put).
        slide = data.draw(st.integers(0, capacity + 8), label="window slide")
        base = data.draw(buffer_maps(head_id=base_head, capacity=capacity))
        new = data.draw(buffer_maps(head_id=base_head + slide, capacity=capacity))
        delta = wire.BufferMapDelta.from_maps(
            sender=1, seq=7, newest_id=0, new=new, base=base
        )
        decoded, consumed = wire.decode(wire.encode(delta))
        assert decoded == delta
        rebuilt = decoded.apply(base)
        assert rebuilt.head_id == new.head_id
        assert rebuilt.capacity == new.capacity
        assert rebuilt.present == new.present

    @given(base=buffer_maps(), delta=buffer_map_deltas())
    @settings(max_examples=200, deadline=None)
    def test_apply_tolerates_arbitrary_base_maps(self, base, delta):
        # Applying any well-formed delta to any base map yields a map
        # bounded by the delta's window — desync detection is the *seq*
        # chain's job, apply itself must never corrupt state or raise.
        rebuilt = delta.apply(base)
        assert rebuilt.head_id == delta.head_id
        assert rebuilt.capacity == delta.capacity
        tail = delta.head_id + delta.capacity
        assert all(delta.head_id <= s < tail for s in rebuilt.present)


class TestFrameBatchProperty:
    @given(batch=frame_batches())
    @settings(max_examples=200, deadline=None)
    def test_inner_frames_survive_the_envelope_byte_exactly(self, batch):
        decoded, consumed = wire.decode(wire.encode(batch))
        assert decoded == batch
        # every reconstructed inner frame decodes on its own
        for frame in decoded.frames:
            msg, used = wire.decode(frame)
            assert used == len(frame)

    @given(batch=frame_batches())
    @settings(max_examples=100, deadline=None)
    def test_nested_batches_are_rejected_at_encode(self, batch):
        nested = wire.FrameBatch(frames=(wire.encode(batch),))
        with pytest.raises(wire.WireError):
            wire.encode(nested)

    @given(inner=st.lists(_batchable_messages, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_nested_batches_are_rejected_at_decode(self, inner):
        # Hand-craft a batch whose entry is itself a batch, bypassing the
        # encoder's guard, and check the decoder refuses it.
        legit = wire.encode(
            wire.FrameBatch(frames=tuple(wire.encode(m) for m in inner))
        )
        entry = legit[4:]  # kind + body of the inner batch
        body = (1).to_bytes(2, "big") + len(entry).to_bytes(2, "big") + entry
        frame = (1 + len(body)).to_bytes(4, "big") + bytes([wire.WireKind.BATCH]) + body
        with pytest.raises(wire.WireError):
            wire.decode(frame)

    @given(msgs=st.lists(_batchable_messages, min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_encode_batch_preserves_order_and_content(self, msgs):
        frames = [wire.encode(m) for m in msgs]
        packed = wire.encode_batch(frames)
        assert sum(wire.frame_count(f) for f in packed) == len(frames)
        unpacked = []
        for f in packed:
            msg, _ = wire.decode(f)
            if isinstance(msg, wire.FrameBatch):
                unpacked.extend(msg.frames)
            else:
                unpacked.append(f)
        assert unpacked == frames
