"""Hybrid-fidelity runtime: slim statistical tier around a live core.

Pins the tentpole contracts from ``docs/runtime.md`` → *Hybrid
fidelity*:

* the :class:`SlimTier` is deterministic — same seed ⇒ bit-identical
  per-period samples — and costs ~5 bytes of state per slim peer;
* a virtual-clock :class:`HybridSwarm` run is bit-identical across
  repeats, and its telemetry frames count core + slim as one population
  (so the health engine and cockpit see a single swarm);
* parity: at overlapping sizes the hybrid swarm's stable continuity
  tracks the full runtime within ``PARITY_DELTA`` on both a static and a
  churning scenario (slow-marked — two full n=200 runs);
* ``--fidelity full`` (i.e. plain :class:`LiveSwarm`) is untouched: the
  hybrid classes are opt-in composition, not a rewrite.
"""

import pytest

from repro.runtime import HybridShardSwarm, HybridSwarm, LiveSwarm, SlimTier
from repro.runtime.slim import DEFAULT_CORE_PEERS, default_core_peers
from repro.scenarios import CampaignSpec
from repro.scenarios.library import builtin_scenario
from repro.sim.rng import derive_seed

#: The tentpole's parity contract: |Δ stable continuity| between a hybrid
#: run and the full runtime at the same total size.
PARITY_DELTA = 0.03


def spec_for(name="static", num_nodes=300, rounds=10, seed=0):
    return builtin_scenario(name).scaled(
        num_nodes=num_nodes, rounds=rounds, seed=seed
    )


def run_hybrid(spec, core_peers=20, **kwargs):
    return HybridSwarm(spec, core_peers=core_peers, clock="virtual", **kwargs).run()


class TestSlimTier:
    def make_tier(self, count=1000, spec=None, seed=7):
        spec = spec or spec_for("flash-crowd")
        return SlimTier(
            count=count,
            config=spec.to_config(),
            churn=spec.churn,
            loss_rate=spec.loss_rate,
            seed=seed,
        )

    def test_same_seed_is_bit_identical(self):
        histories = []
        for _ in range(2):
            tier = self.make_tier()
            for r in range(12):
                tier.step(r, core_playing=19, core_total=20)
            histories.append(list(tier.history))
        assert histories[0] == histories[1]

    def test_different_seeds_diverge(self):
        samples = []
        for seed in (1, 2):
            tier = self.make_tier(seed=seed)
            for r in range(12):
                tier.step(r, core_playing=19, core_total=20)
            samples.append(list(tier.history))
        assert samples[0] != samples[1]

    def test_memory_is_about_five_bytes_per_peer(self):
        tier = self.make_tier(count=100_000, spec=spec_for("static"))
        assert tier.memory_bytes == 100_000 * 5
        assert tier.memory_bytes / tier.count == pytest.approx(5.0)

    def test_joiners_buffer_before_counting_as_started(self):
        # No churn schedule: drive joins by hand via a flash-crowd tier.
        spec = spec_for("flash-crowd", rounds=12)
        tier = self.make_tier(count=500, spec=spec)
        for r in range(12):
            tier.step(r, core_playing=20, core_total=20)
        assert tier.joined > 0, "flash-crowd must add slim joiners"
        assert tier.count == 500 + tier.joined
        # Every period's sample stays within its population.
        for playing, total in tier.history:
            assert 0 <= playing <= total

    def test_history_is_indexed_by_tick(self):
        tier = self.make_tier(count=50, spec=spec_for("static"))
        tier.step(0, core_playing=10, core_total=10)
        assert tier.sample_for(0) == tier.history[0]
        assert tier.sample_for(99) == (0, 0)


class TestCoreSizing:
    def test_default_core_is_capped_by_the_swarm(self):
        assert default_core_peers(100_000) == DEFAULT_CORE_PEERS
        assert default_core_peers(10) == 10
        assert default_core_peers(1) == 2

    def test_core_below_minimum_rejected(self):
        with pytest.raises(ValueError, match="core_peers"):
            HybridSwarm(spec_for(num_nodes=100), core_peers=1)

    def test_core_exceeding_swarm_rejected(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            HybridSwarm(spec_for(num_nodes=100), core_peers=101)


class TestHybridSwarm:
    def test_same_seed_runs_are_bit_identical(self):
        spec = spec_for("flash-crowd", num_nodes=300, rounds=10, seed=5)
        swarms = [
            HybridSwarm(spec, core_peers=20, clock="virtual") for _ in range(2)
        ]
        first, second = (swarm.run() for swarm in swarms)
        assert first.continuity_series() == second.continuity_series()
        assert swarms[0].playback_samples() == swarms[1].playback_samples()
        assert first.messages_sent == second.messages_sent
        assert first.fidelity == second.fidelity

    def test_fidelity_export_accounts_for_the_whole_population(self):
        spec = spec_for("static", num_nodes=300, rounds=8)
        result = run_hybrid(spec, core_peers=20)
        fid = result.fidelity
        assert fid["mode"] == "hybrid"
        assert fid["core_peers"] == 20
        assert fid["slim_peers"] == 280
        assert fid["total_peers"] == 300
        assert fid["slim_memory_bytes"] == 280 * 5
        assert result.peers_joined == 0 and result.peers_left == 0

    def test_full_fidelity_results_carry_no_export(self):
        result = LiveSwarm(spec_for(num_nodes=20, rounds=4), clock="virtual").run()
        assert result.fidelity is None

    def test_telemetry_frames_cover_core_plus_slim(self):
        from repro.obs import ObsConfig

        spec = spec_for("static", num_nodes=300, rounds=8)
        swarm = HybridSwarm(
            spec, core_peers=20, clock="virtual", obs=ObsConfig(trace_sample=8)
        )
        frames = []
        swarm.telemetry_sink = frames.append
        swarm.run()
        assert [f["period"] for f in frames] == list(range(8))
        body = frames[-1]
        assert body["shard"] == 0
        assert body["peers_live"] == 300, "core + slim report as one swarm"
        assert body["total"] > 250, "the sample spans the slim tier too"
        assert 0.0 <= body["continuity"] <= 1.0

    def test_slim_churn_follows_the_schedule(self):
        spec = spec_for("flash-crowd", num_nodes=300, rounds=10)
        result = run_hybrid(spec)
        fid = result.fidelity
        assert fid["slim_joined"] > 0
        assert fid["slim_peers"] == 280 + fid["slim_joined"]
        assert fid["slim_alive"] == fid["slim_peers"] - fid["slim_left"]

    def test_shard_slices_partition_the_slim_tier(self):
        spec = spec_for("static", num_nodes=1003, rounds=4)
        shards = [
            HybridShardSwarm(spec, shard_index=i, num_shards=3, core_peers=9)
            for i in range(3)
        ]
        sizes = [s.slim.count for s in shards]
        assert sum(sizes) == 1003 - 9
        assert max(sizes) - min(sizes) <= 1
        seeds = {derive_seed(spec.seed, f"slim-tier/{i}") for i in range(3)}
        assert len(seeds) == 3, "each shard draws from its own stream"


class TestCampaignValidation:
    def scenarios(self):
        return (spec_for(num_nodes=30, rounds=4),)

    def test_hybrid_rejected_on_the_sim_backend(self):
        with pytest.raises(ValueError, match="sim backend"):
            CampaignSpec(
                scenarios=self.scenarios(), backend="sim", fidelity="hybrid"
            )

    def test_core_peers_requires_hybrid(self):
        with pytest.raises(ValueError, match="core_peers"):
            CampaignSpec(
                scenarios=self.scenarios(), backend="runtime", core_peers=10
            )

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            CampaignSpec(
                scenarios=self.scenarios(), backend="runtime", fidelity="cubist"
            )

    def test_payloads_carry_the_fidelity_coordinates(self):
        spec = CampaignSpec(
            scenarios=self.scenarios(),
            backend="runtime",
            fidelity="hybrid",
            core_peers=10,
        )
        for payload in spec.cell_payloads():
            assert payload["fidelity"] == "hybrid"
            assert payload["core_peers"] == 10


@pytest.mark.slow
class TestHybridParity:
    """The tentpole acceptance: hybrid tracks the full runtime.

    Both runs are virtual-clock deterministic, so the asserted deltas are
    exact repeatable numbers, not statistical flake surface: at n=200 /
    rounds=30 / seed=0 the measured gaps are 0.026 (static) and 0.007
    (flash-crowd) against the 0.03 contract.
    """

    NODES, ROUNDS, SEED, CORE = 200, 30, 0, 50

    @pytest.mark.parametrize("scenario", ["static", "flash-crowd"])
    def test_stable_continuity_within_delta_of_full_runtime(self, scenario):
        spec = spec_for(scenario, num_nodes=self.NODES, rounds=self.ROUNDS,
                        seed=self.SEED)
        full = LiveSwarm(spec, clock="virtual").run()
        hybrid = run_hybrid(spec, core_peers=self.CORE)
        delta = abs(hybrid.stable_continuity() - full.stable_continuity())
        assert delta <= PARITY_DELTA, (
            f"{scenario}: hybrid {hybrid.stable_continuity():.4f} vs "
            f"full {full.stable_continuity():.4f} (Δ={delta:.4f})"
        )
