"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Event, EventQueue, SimulationClock, SimulationError, Simulator


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(5.5).now == 5.5

    def test_advances_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulationClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_refuses_to_go_backwards(self):
        clock = SimulationClock(4.0)
        with pytest.raises(SimulationError):
            clock.advance_to(3.0)


class TestEventQueue:
    def test_len_counts_live_events(self):
        queue = EventQueue()
        assert len(queue) == 0
        queue.push(1.0, lambda s, p: None)
        queue.push(2.0, lambda s, p: None)
        assert len(queue) == 2

    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        queue.push(2.0, lambda s, p: None, "late")
        queue.push(1.0, lambda s, p: None, "early")
        assert queue.pop().payload == "early"
        assert queue.pop().payload == "late"

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, lambda s, p: None, "first")
        queue.push(1.0, lambda s, p: None, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s, p: None, "cancelled")
        queue.push(2.0, lambda s, p: None, "kept")
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.pop().payload == "kept"

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s, p: None)
        queue.push(5.0, lambda s, p: None)
        queue.cancel(event)
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_clear_empties_the_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda s, p: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda s, p: None)
        assert queue

    def test_iteration_yields_sorted_live_events(self):
        queue = EventQueue()
        queue.push(3.0, lambda s, p: None, "c")
        queue.push(1.0, lambda s, p: None, "a")
        cancelled = queue.push(2.0, lambda s, p: None, "b")
        queue.cancel(cancelled)
        assert [event.payload for event in queue] == ["a", "c"]


class TestEventQueueCompaction:
    def test_cancelled_count_tracks_lazy_deletions(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda s, p: None) for i in range(4)]
        assert queue.cancelled_count == 0
        queue.cancel(events[0])
        queue.cancel(events[1])
        assert queue.cancelled_count == 2
        assert len(queue) == 2

    def test_pop_and_peek_reclaim_cancelled_slots(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda s, p: None)
        queue.push(2.0, lambda s, p: None, "kept")
        queue.cancel(first)
        assert queue.pop().payload == "kept"
        assert queue.cancelled_count == 0

    def test_heavy_cancellation_compacts_the_heap(self):
        """Regression: lazy deletion must not hold dead entries forever."""
        queue = EventQueue()
        events = [queue.push(float(i), lambda s, p: None, i) for i in range(100)]
        # Cancel far-future events only, so nothing is reclaimed by pop/peek.
        for event in events[40:]:
            queue.cancel(event)
            # Invariant: cancelled entries never outnumber half the heap.
            assert queue.cancelled_count * 2 <= len(queue._heap)
        # Compaction fired at least once, shedding dead entries early.
        assert len(queue._heap) < 100
        assert len(queue) == 40
        assert [queue.pop().payload for _ in range(40)] == list(range(40))
        assert queue.pop() is None

    def test_compaction_preserves_tie_break_order(self):
        queue = EventQueue()
        keep = [queue.push(1.0, lambda s, p: None, f"k{i}") for i in range(3)]
        doomed = [queue.push(0.5, lambda s, p: None) for _ in range(10)]
        for event in doomed:
            queue.cancel(event)
        assert len(queue._heap) < 13  # compacted at least once
        assert [queue.pop().payload for _ in range(3)] == ["k0", "k1", "k2"]
        assert keep[0].seq < keep[1].seq < keep[2].seq

    def test_small_heaps_are_left_alone(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda s, p: None) for i in range(4)]
        for event in events[1:]:
            queue.cancel(event)
        # Below COMPACTION_MIN_SIZE: lazy entries stay until popped past.
        assert queue.cancelled_count == 3
        assert len(queue._heap) == 4

    def test_explicit_compact_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s, p: None)
        queue.push(2.0, lambda s, p: None)
        queue.cancel(event)
        queue.compact()
        queue.compact()
        assert queue.cancelled_count == 0
        assert len(queue) == 1

    def test_clear_resets_cancelled_count(self):
        queue = EventQueue()
        queue.cancel(queue.push(1.0, lambda s, p: None))
        queue.clear()
        assert queue.cancelled_count == 0

    def test_direct_event_cancel_updates_queue_bookkeeping(self):
        """Event.cancel() and EventQueue.cancel() must be equivalent."""
        queue = EventQueue()
        events = [queue.push(float(i), lambda s, p: None) for i in range(20)]
        for event in events[5:]:
            event.cancel()  # handle-level cancel, not queue.cancel
        assert len(queue) == 5
        assert queue.cancelled_count * 2 <= len(queue._heap)
        assert len(queue._heap) < 20  # compaction still fires

    def test_detached_event_cancel_still_marks_it(self):
        event = Event(time=1.0, seq=0, callback=lambda s, p: None)
        event.cancel()
        assert event.cancelled

    def test_cancel_after_clear_is_a_no_op(self):
        """Stale handles from before clear() must not corrupt the counters."""
        queue = EventQueue()
        stale = queue.push(1.0, lambda s, p: None)
        queue.clear()
        queue.push(1.0, lambda s, p: None, "a")
        queue.push(2.0, lambda s, p: None, "b")
        queue.cancel(stale)
        assert len(queue) == 2
        assert queue.cancelled_count == 0
        drained = []
        while queue:
            drained.append(queue.pop().payload)
        assert drained == ["a", "b"]

    def test_cancel_after_pop_is_a_no_op(self):
        """Cancelling an already-executed event must not corrupt the counters."""
        queue = EventQueue()
        done = queue.push(1.0, lambda s, p: None)
        queue.push(2.0, lambda s, p: None, "pending")
        assert queue.pop() is done
        queue.cancel(done)  # stale handle: the event already ran
        assert len(queue) == 1
        assert queue.cancelled_count == 0
        assert queue.pop().payload == "pending"


class TestSimulator:
    def test_runs_single_event(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(1.5, lambda s, p: hits.append((s.now, p)), "x")
        sim.run()
        assert hits == [(1.5, "x")]

    def test_schedule_in_is_relative(self):
        sim = Simulator(start_time=10.0)
        times = []
        sim.schedule_in(2.5, lambda s, p: times.append(s.now))
        sim.run()
        assert times == [12.5]

    def test_schedule_in_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda s, p: None)

    def test_schedule_at_past_time_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda s, p: None)

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda s, p: order.append("late"))
        sim.schedule_at(1.0, lambda s, p: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(1.0, lambda s, p: hits.append(1))
        sim.schedule_at(10.0, lambda s, p: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0
        assert len(sim.queue) == 1

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_max_events_limits_processing(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda s, p: hits.append(s.now))
        processed = sim.run(max_events=2)
        assert processed == 2
        assert hits == [1.0, 2.0]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def chain(s: Simulator, payload: int) -> None:
            hits.append(payload)
            if payload < 3:
                s.schedule_in(1.0, chain, payload + 1)

        sim.schedule_at(0.0, chain, 1)
        sim.run()
        assert hits == [1, 2, 3]
        assert sim.now == 2.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        event = sim.schedule_at(1.0, lambda s, p: hits.append("should not run"))
        sim.cancel(event)
        sim.run()
        assert hits == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda s, p: None)
        sim.run()
        assert sim.events_processed == 2

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_event_ordering_dataclass(self):
        early = Event(time=1.0, seq=0, callback=lambda s, p: None)
        late = Event(time=2.0, seq=1, callback=lambda s, p: None)
        assert early < late
