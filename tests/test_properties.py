"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    playback_continuity_new,
    playback_continuity_old,
    poisson_cdf,
)
from repro.core.scheduler import (
    SegmentCandidate,
    SupplierOffer,
    bucket_priority,
    compute_priority,
    compute_rarity,
    compute_urgency,
    schedule_requests,
)
from repro.dht.hashing import backup_keys, segment_hash
from repro.dht.ring import IdRing
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMap


# --------------------------------------------------------------------------- #
# Ring arithmetic
# --------------------------------------------------------------------------- #
ring_sizes = st.integers(min_value=2, max_value=1 << 16)
identifiers = st.integers(min_value=-(1 << 20), max_value=1 << 20)


@given(size=ring_sizes, a=identifiers, b=identifiers)
def test_ring_distances_are_complementary(size, a, b):
    ring = IdRing(size)
    cw = ring.clockwise_distance(a, b)
    ccw = ring.counter_clockwise_distance(a, b)
    assert 0 <= cw < size and 0 <= ccw < size
    if ring.normalize(a) == ring.normalize(b):
        assert cw == 0 and ccw == 0
    else:
        assert cw + ccw == size


@given(size=ring_sizes, a=identifiers, b=identifiers, c=identifiers)
def test_ring_triangle_inequality_modulo(size, a, b, c):
    """Going a->b->c clockwise is never shorter than a->c (mod wrap count)."""
    ring = IdRing(size)
    direct = ring.clockwise_distance(a, c)
    via = ring.clockwise_distance(a, b) + ring.clockwise_distance(b, c)
    assert via % size == direct or via == direct + size


@given(size=st.integers(min_value=4, max_value=4096), node=identifiers)
def test_level_intervals_partition_the_ring(size, node):
    """Every non-owner id belongs to exactly one finger level."""
    ring = IdRing(size)
    node = ring.normalize(node)
    covered = set()
    for level in range(1, ring.bits + 1):
        start, end = ring.level_interval(node, level)
        probe = start
        while probe != end:
            assert probe not in covered
            covered.add(probe)
            probe = ring.normalize(probe + 1)
    expected = {ring.normalize(node + d) for d in range(1, size)}
    assert covered == expected


@given(
    value=st.integers(min_value=0, max_value=1 << 40),
    space=st.integers(min_value=2, max_value=1 << 20),
)
def test_segment_hash_stays_in_space(value, space):
    assert 0 <= segment_hash(value, space) < space


@given(
    segment_id=st.integers(min_value=0, max_value=1 << 30),
    replicas=st.integers(min_value=1, max_value=16),
    space=st.integers(min_value=2, max_value=1 << 16),
)
def test_backup_keys_deterministic_and_bounded(segment_id, replicas, space):
    keys = backup_keys(segment_id, replicas, space)
    assert keys == backup_keys(segment_id, replicas, space)
    assert len(keys) == replicas
    assert all(0 <= key < space for key in keys)


# --------------------------------------------------------------------------- #
# FIFO buffer
# --------------------------------------------------------------------------- #
@given(
    capacity=st.integers(min_value=1, max_value=64),
    segment_ids=st.lists(st.integers(min_value=0, max_value=500), max_size=200),
)
def test_buffer_window_invariants(capacity, segment_ids):
    buffer = SegmentBuffer(capacity=capacity)
    for segment_id in segment_ids:
        buffer.add(segment_id)
        held = buffer.ids()
        # Never more than capacity entries, all inside the window, sorted.
        assert len(held) <= capacity
        assert all(buffer.head_id <= sid < buffer.tail_id for sid in held)
        assert held == sorted(held)
        assert buffer.tail_id - buffer.head_id == capacity


@given(
    capacity=st.integers(min_value=1, max_value=64),
    segment_ids=st.sets(st.integers(min_value=0, max_value=200), max_size=64),
)
def test_buffer_map_round_trip_preserves_window_content(capacity, segment_ids):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.update_from(segment_ids)
    snapshot = BufferMap.from_buffer(buffer)
    rebuilt = BufferMap.from_bitmap(snapshot.head_id, snapshot.to_bitmap())
    assert rebuilt.present == snapshot.present


# --------------------------------------------------------------------------- #
# Scheduling priorities and Algorithm 1
# --------------------------------------------------------------------------- #
@given(
    segment_id=st.integers(min_value=0, max_value=10_000),
    play_id=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=0.01, max_value=100.0),
)
def test_urgency_positive(segment_id, play_id, rate):
    assert compute_urgency(segment_id, play_id, 10.0, rate) > 0


@given(
    positions=st.lists(st.integers(min_value=0, max_value=600), max_size=8),
)
def test_rarity_is_a_probability(positions):
    rarity = compute_rarity(positions, 600)
    assert 0.0 <= rarity <= 1.0


@given(urgency=st.floats(min_value=0, max_value=1e6),
       rarity=st.floats(min_value=0, max_value=1.0))
def test_priority_upper_envelope(urgency, rarity):
    priority = compute_priority(urgency, rarity)
    assert priority >= urgency and priority >= rarity
    assert priority in (urgency, rarity)


@given(priority=st.floats(min_value=1e-9, max_value=1e6))
def test_bucket_priority_is_monotone_lower_bound(priority):
    bucket = bucket_priority(priority)
    assert bucket <= priority
    assert priority < bucket * 8.0  # within one band


@st.composite
def candidate_sets(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    candidates = []
    for index in range(count):
        supplier_count = draw(st.integers(min_value=1, max_value=4))
        offers = tuple(
            SupplierOffer(
                supplier_id=draw(st.integers(min_value=0, max_value=9)),
                position_from_tail=draw(st.integers(min_value=0, max_value=600)),
                rate=draw(st.floats(min_value=0.5, max_value=30.0)),
            )
            for _ in range(supplier_count)
        )
        candidates.append(SegmentCandidate(segment_id=index, offers=offers))
    return candidates


@given(candidates=candidate_sets(), inbound=st.floats(min_value=0, max_value=40))
@settings(max_examples=60)
def test_algorithm1_respects_budgets_and_uniqueness(candidates, inbound):
    priorities = {c.segment_id: 1.0 / (c.segment_id + 1) for c in candidates}
    requests = schedule_requests(candidates, priorities, inbound, period=1.0)
    # Never more requests than the inbound budget or the candidate count.
    assert len(requests) <= min(len(candidates), int(inbound * 1.0))
    # A segment is requested at most once and only from one of its suppliers.
    seen = set()
    by_id = {c.segment_id: c for c in candidates}
    for request in requests:
        assert request.segment_id not in seen
        seen.add(request.segment_id)
        assert request.supplier_id in by_id[request.segment_id].supplier_ids()
        assert 0 < request.expected_time < 1.0


@given(candidates=candidate_sets())
@settings(max_examples=60)
def test_algorithm1_per_supplier_load_fits_in_period(candidates):
    priorities = {c.segment_id: 1.0 for c in candidates}
    requests = schedule_requests(candidates, priorities, inbound_rate=100, period=1.0)
    # The completion time of the last transfer assigned to a supplier is that
    # supplier's total queue, which Algorithm 1 keeps strictly below tau.
    last_completion = {}
    for request in requests:
        last_completion[request.supplier_id] = max(
            last_completion.get(request.supplier_id, 0.0), request.expected_time
        )
    assert all(value < 1.0 for value in last_completion.values())


# --------------------------------------------------------------------------- #
# Poisson continuity model
# --------------------------------------------------------------------------- #
@given(
    arrival_rate=st.floats(min_value=0.1, max_value=60.0),
    replicas=st.integers(min_value=1, max_value=10),
)
def test_continuity_model_bounds(arrival_rate, replicas):
    old = playback_continuity_old(arrival_rate, 10.0, 1.0)
    new = playback_continuity_new(arrival_rate, 10.0, 1.0, replicas)
    assert 0.0 <= old <= 1.0
    assert 0.0 <= new <= 1.0
    assert new >= old


@given(n=st.integers(min_value=0, max_value=60), mean=st.floats(min_value=0, max_value=60))
def test_poisson_cdf_bounds(n, mean):
    value = poisson_cdf(n, mean)
    assert 0.0 <= value <= 1.0
    assert poisson_cdf(n + 1, mean) >= value - 1e-12
