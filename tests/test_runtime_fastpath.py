"""The wire fast path, end to end: batching, delta gossip, byte counters.

The codec-level facts (FrameBatch framing, delta/apply equivalence) live
in ``test_runtime_wire*``; this file pins the *transport* behaviour the
fast path must preserve and the savings it must deliver:

* steady-state delta gossip ships at most half the full-map bytes
  (the tier-1 guard for the PR's headline byte saving);
* the ``--no-batch`` / ``--no-delta`` escape hatches change physical
  bytes only — continuity is unaffected within parity tolerance;
* a shed data *batch* refunds every inner frame's credit, and a shed
  control batch still applies the one-shot frames inside it.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import wire
from repro.runtime.swarm import LiveSwarm
from repro.runtime.transport import TransportConfig
from repro.scenarios import builtin_scenario


def _run(batching: bool = True, delta_maps: bool = True, **spec_kw):
    spec = builtin_scenario("static").scaled(
        num_nodes=spec_kw.pop("num_nodes", 20),
        rounds=spec_kw.pop("rounds", 12),
    )
    return LiveSwarm(
        spec,
        clock="virtual",
        batching=batching,
        delta_maps=delta_maps,
        **spec_kw,
    ).run()


class TestDeltaGossip:
    def test_steady_state_delta_bytes_at_most_half_of_full(self):
        """The headline saving: once partners sync, gossip ships deltas
        and the physical gossip bytes drop under half the full-map cost
        on a static (no churn, no loss) steady state."""
        result = _run()
        t = result.transport
        assert t.map_deltas_sent > t.map_fulls_sent
        assert t.gossip_bytes_full > 0
        assert t.gossip_bytes <= 0.5 * t.gossip_bytes_full

    def test_no_delta_ships_full_maps_only(self):
        result = _run(delta_maps=False)
        t = result.transport
        assert t.map_deltas_sent == 0
        assert t.map_fulls_sent > 0
        assert t.gossip_bytes == t.gossip_bytes_full

    def test_delta_toggle_preserves_continuity(self):
        """Delta encoding is a wire-size optimisation: every peer must
        see the same neighbour maps, so continuity cannot move."""
        on = _run(delta_maps=True)
        off = _run(delta_maps=False)
        assert on.stable_continuity() == pytest.approx(
            off.stable_continuity(), abs=0.005
        )
        assert on.segments_delivered() > 0

    def test_desync_heals_through_ping_resync(self):
        """Losing delta chain state mid-run (peer churn resets partner
        links) must resync via PING → full map, not wedge gossip."""
        spec = builtin_scenario("flash-crowd").scaled(num_nodes=24, rounds=12)
        result = LiveSwarm(spec, clock="virtual").run()
        t = result.transport
        # churn forces refills: full maps keep flowing alongside deltas
        assert t.map_fulls_sent > 0
        assert t.map_deltas_sent > 0
        assert result.stable_continuity() > 0.5


class TestBatching:
    def test_batching_toggle_preserves_continuity(self):
        # Batched delivery hands the reader whole bursts, so the exact
        # interleaving (and with it the odd request) shifts slightly —
        # the stream itself must not move beyond parity tolerance.
        on = _run(batching=True)
        off = _run(batching=False)
        assert on.stable_continuity() == pytest.approx(
            off.stable_continuity(), abs=0.005
        )
        assert on.segments_delivered() == pytest.approx(
            off.segments_delivered(), rel=0.02
        )

    def test_fast_path_reduces_bytes_on_wire(self):
        """Batching + delta gossip together must shrink physical bytes
        meaningfully below the loose-frame, full-map baseline."""
        fast = _run(batching=True, delta_maps=True)
        plain = _run(batching=False, delta_maps=False)
        assert fast.bytes_on_wire > 0
        assert plain.bytes_on_wire > 0
        assert fast.bytes_on_wire <= 0.85 * plain.bytes_on_wire

    def test_messages_sent_counts_logical_frames(self):
        """Batching is invisible to the paper-facing message count: the
        same logical traffic flows (within the interleaving wiggle), yet
        the physical bytes drop — the envelope itself is never counted."""
        on = _run(batching=True)
        off = _run(batching=False)
        assert on.messages_sent == pytest.approx(off.messages_sent, rel=0.02)
        assert on.bytes_on_wire < off.bytes_on_wire


class TestBatchShedding:
    def _swarm_and_peers(self, **transport_kw):
        swarm = LiveSwarm(
            builtin_scenario("static").scaled(num_nodes=10, rounds=2),
            transport=TransportConfig(**transport_kw),
            clock="virtual",
        ).build()
        peers = [p for p in swarm.peers.values() if not p.is_source]
        return swarm, peers[0], peers[1]

    def test_shed_data_batch_refunds_every_inner_credit(self):
        """A data batch of k frames shed at a full lane refunds k
        credits — the weighted-inbox analogue of PR 4's refund rule."""
        swarm, receiver, sender = self._swarm_and_peers(inbox_watermark=1)
        frame = wire.encode(
            wire.SegmentData(sender=sender.peer_id, segment_id=1, size_bits=8)
        )
        batch = wire.encode(wire.FrameBatch(frames=(frame, frame, frame)))

        async def deliver():
            # fill the data lane, then land a 3-frame batch on it
            assert receiver.inbox.put(sender.peer_id, frame, control=False)
            swarm.loopback._deliver_now(
                sender.peer_id, receiver.peer_id, batch, data=True
            )

        asyncio.run(deliver())
        stats = receiver.transport_stats
        assert stats.inbox_dropped_data == 3
        assert receiver._credit_ledger.owed.get(sender.peer_id, 0) == 3

    def test_shed_control_batch_applies_one_shot_frames(self):
        """A credit grant inside a shed control batch must still reach
        the window, exactly as it would travelling loose."""
        swarm, receiver, other = self._swarm_and_peers(data_window=1)
        assert receiver.send_windows.acquire(other.peer_id, (b"f1", None))
        assert not receiver.send_windows.acquire(other.peer_id, (b"f2", None))
        assert receiver.send_windows.pending_count() == 1
        grant = wire.encode(wire.CreditGrant(sender=other.peer_id, credits=1))
        ping = wire.encode(wire.Ping(sender=other.peer_id, nonce=9))
        batch = wire.encode(wire.FrameBatch(frames=(ping, grant)))

        async def shed():
            receiver.absorb_shed_control(batch)

        asyncio.run(shed())
        assert receiver.send_windows.pending_count() == 0

    def test_weighted_inbox_admits_then_bounds(self):
        """Check-then-admit: a batch is admitted while the lane is under
        the watermark (bounded overshoot by one batch), and blocks the
        lane for followers until drained."""
        swarm, receiver, sender = self._swarm_and_peers(inbox_watermark=2)
        frame = wire.encode(
            wire.SegmentData(sender=sender.peer_id, segment_id=1, size_bits=8)
        )
        batch = wire.encode(wire.FrameBatch(frames=(frame, frame, frame)))
        inbox = receiver.inbox
        assert inbox.put(sender.peer_id, batch, control=False, weight=3)
        assert len(inbox) == 3
        # the lane is now over its watermark: loose followers shed
        assert not inbox.put(sender.peer_id, frame, control=False)
        assert receiver.transport_stats.inbox_dropped_data == 1
