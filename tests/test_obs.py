"""The observability plane: metrics, traces, flight recorder, exports.

The load-bearing acceptance here is the *zero-overhead* claim: a
virtual-clock run with the obs plane enabled must be bit-identical to
the same run with it disabled on every protocol-facing output —
continuity series, message counts, ledger totals, transport stats.
Only ``bytes_on_wire`` may grow (traced segment frames carry a physical
8-byte tail the ledger never charges).  The rest covers the metric
registry, trace attribution, the JSONL artifact round-trip and the
report renderer (see docs/observability.md).
"""

import dataclasses
import json

import pytest

from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    NullObs,
    ObsConfig,
    ObsRecorder,
    format_postmortems,
    load_obs_jsonl,
    merge_metrics,
    merge_obs,
    render_report,
    summarize_traces,
    write_obs_jsonl,
)
from repro.runtime import LiveSwarm
from repro.scenarios.library import builtin_scenario


class TestMetricsRegistry:
    def test_counters_gauges_and_series(self):
        reg = MetricsRegistry()
        reg.inc("requests")
        reg.inc("requests", 2)
        reg.set_gauge("depth", 7)
        reg.snapshot(0)
        reg.set_gauge("depth", 3)
        reg.snapshot(1)
        data = reg.to_dict()
        assert data["counters"]["requests"] == 3
        assert data["gauges"]["depth"] == 3
        assert data["series"]["requests"] == [[0, 3.0], [1, 3.0]]
        assert data["series"]["depth"] == [[0, 7.0], [1, 3.0]]

    def test_histogram_windows_reset_per_snapshot(self):
        reg = MetricsRegistry()
        reg.observe("lag", 0.1)
        reg.observe("lag", 0.3)
        reg.snapshot(0)
        reg.observe("lag", 0.5)
        reg.snapshot(1)
        series = reg.to_dict()["series"]
        assert series["lag_mean"] == [[0, pytest.approx(0.2)], [1, pytest.approx(0.5)]]
        assert series["lag_max"] == [[0, pytest.approx(0.3)], [1, pytest.approx(0.5)]]
        hist = reg.to_dict()["histograms"]["lag"]
        assert hist["count"] == 3
        assert hist["max"] == pytest.approx(0.5)

    def test_series_window_is_bounded(self):
        reg = MetricsRegistry(window=4)
        for period in range(10):
            reg.inc("ticks")
            reg.snapshot(period)
        series = reg.to_dict()["series"]["ticks"]
        assert len(series) == 4
        assert series[0][0] == 6

    def test_histogram_envelope_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lag", 1.0)
        a.observe("lag", 3.0)
        b.observe("lag", 2.0)
        merged = merge_metrics([a.to_dict(), b.to_dict()])["histograms"]["lag"]
        assert merged["count"] == 3
        assert merged["min"] == 1.0
        assert merged["max"] == 3.0
        assert merged["sum"] == pytest.approx(6.0)

    def test_merge_metrics_sums_counters_and_series(self):
        parts = []
        for _ in range(2):
            reg = MetricsRegistry()
            reg.inc("sent", 5)
            reg.set_gauge("depth", 2)
            reg.snapshot(0)
            parts.append(reg.to_dict())
        merged = merge_metrics(parts)
        assert merged["counters"]["sent"] == 10
        assert merged["gauges"]["depth"] == 4
        assert merged["series"]["sent"] == [[0, 10.0]]


class TestRecorder:
    def test_null_obs_is_inert_and_exports_nothing(self):
        assert isinstance(NULL_OBS, NullObs)
        assert not NULL_OBS.enabled
        assert not NULL_OBS.tracing
        assert NULL_OBS.sample_trace(7) == 0
        NULL_OBS.span("request", 1, 2, 3)
        NULL_OBS.inc("x")
        NULL_OBS.flight("y")
        NULL_OBS.postmortem("z")
        NULL_OBS.snapshot(0)
        assert NULL_OBS.export() is None

    def test_config_validates_sampling(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample=0)

    def test_deterministic_counter_sampling(self):
        rec = ObsRecorder(ObsConfig(trace_sample=3))
        ids = [rec.sample_trace(peer_id=5) for _ in range(9)]
        sampled = [tid for tid in ids if tid]
        assert len(sampled) == 3
        assert len(set(sampled)) == 3  # distinct trace ids
        assert all(tid >> 24 == 5 for tid in sampled)  # peer id embedded

    def test_flight_ring_is_bounded_and_postmortem_snapshots_it(self):
        rec = ObsRecorder(ObsConfig(flight_window=4))
        for i in range(10):
            rec.flight("tick", i=i)
        rec.postmortem("boom")
        (dump,) = rec.export()["postmortems"]
        assert dump["reason"] == "boom"
        assert [e["i"] for e in dump["events"]] == [6, 7, 8, 9]

    def test_span_cap_counts_drops(self):
        rec = ObsRecorder(dataclasses.replace(ObsConfig(), span_limit=2))
        for i in range(5):
            rec.span("request", trace=i + 1, peer=0, segment=i)
        out = rec.export()
        assert len(out["spans"]) == 2
        assert out["spans_dropped"] == 3


class TestTraceSummary:
    def _spans(self):
        return [
            {"event": "request", "trace": 1, "peer": 1, "segment": 9, "t": 0.0},
            {"event": "deliver", "trace": 1, "peer": 1, "segment": 9, "t": 0.4},
            {"event": "play", "trace": 1, "peer": 1, "segment": 9, "t": 1.0},
            {"event": "request", "trace": 2, "peer": 2, "segment": 10, "t": 0.0},
            {
                "event": "miss", "trace": 2, "peer": 2, "segment": 10, "t": 2.0,
                "cause": "credit_starvation",
            },
            {"event": "request", "trace": 3, "peer": 3, "segment": 11, "t": 0.5},
        ]

    def test_summarize_traces_attributes_misses(self):
        summary = summarize_traces(self._spans())
        assert summary["sampled"] == 3
        assert summary["played"] == 1
        assert summary["missed"] == 1
        assert summary["open"] == 1
        assert summary["miss_causes"] == {"credit_starvation": 1}
        assert summary["request_to_deliver_s"]["mean"] == pytest.approx(0.4)

    def test_merge_obs_merges_shards_and_recomputes_traces(self):
        parts = []
        for shard in range(2):
            rec = ObsRecorder(ObsConfig(), shard=shard)
            rec.inc("sent", 10)
            rec.snapshot(0)
            rec.span("request", trace=shard + 1, peer=shard, segment=1)
            parts.append(rec.export())
        merged = merge_obs(parts)
        assert merged["shards"] == [0, 1]
        assert merged["metrics"]["counters"]["sent"] == 20
        assert len(merged["spans"]) == 2
        assert merged["traces"]["sampled"] == 2
        assert merge_obs([None, None]) is None
        # a disabled shard alongside an enabled one merges fine
        assert merge_obs([None, parts[0]])["shards"] == [0]


class TestJsonlArtifact:
    def test_round_trip_and_report(self, tmp_path):
        rec = ObsRecorder(ObsConfig())
        rec.inc("sent", 3)
        rec.observe("lag", 0.01)
        rec.snapshot(0)
        rec.span("request", trace=1, peer=4, segment=2, dst=9, cause="schedule")
        rec.span("deliver", trace=1, peer=4, segment=2, supplier=9)
        rec.span("play", trace=1, peer=4, segment=2)
        rec.flight("dilate", stretch=1.5)
        rec.postmortem("stall")
        obs = merge_obs([rec.export()])
        path = tmp_path / "obs.jsonl"
        write_obs_jsonl(path, obs)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["type"] for line in lines} >= {
            "meta", "metric", "span", "flight", "postmortem", "summary"
        }
        loaded = load_obs_jsonl(path)
        assert loaded["traces"]["sampled"] == 1
        assert loaded["traces"]["played"] == 1
        report = render_report(loaded)
        assert "sent" in report
        assert "1 sampled journeys" in report
        assert "stall" in report
        postmortems = format_postmortems(loaded)
        assert "stall" in postmortems
        assert "dilate" in postmortems


class TestZeroOverheadIdentity:
    """Obs enabled vs disabled: bit-identical virtual-clock runs."""

    SPEC = ("static", 30, 8)

    def _run(self, obs):
        name, nodes, rounds = self.SPEC
        spec = builtin_scenario(name).scaled(num_nodes=nodes, rounds=rounds, seed=3)
        return LiveSwarm(spec, clock="virtual", obs=obs).run()

    def test_enabled_run_is_bit_identical_on_protocol_outputs(self):
        base = self._run(None)
        traced = self._run(ObsConfig(trace_sample=4))
        assert base.obs is None
        assert traced.obs is not None
        assert traced.continuity_series() == base.continuity_series()
        assert traced.messages_sent == base.messages_sent
        assert traced.messages_dropped == base.messages_dropped
        assert traced.transport == base.transport
        for kind in base.ledger.bits:
            assert traced.ledger.bits_of(kind) == base.ledger.bits_of(kind)
            assert traced.ledger.count_of(kind) == base.ledger.count_of(kind)
        # The one legitimate physical difference: traced segment frames
        # carry the 8-byte tail, so the wire byte count may only grow.
        assert traced.bytes_on_wire >= base.bytes_on_wire

    def test_metrics_only_run_has_identical_wire_bytes_too(self):
        base = self._run(None)
        metered = self._run(ObsConfig(tracing=False))
        assert metered.bytes_on_wire == base.bytes_on_wire
        assert metered.continuity_series() == base.continuity_series()
        assert metered.obs is not None

    def test_flows_and_topo_ride_along_without_protocol_impact(self):
        """Flow/topo observation (on by default) never perturbs the run."""
        base = self._run(None)
        full = self._run(ObsConfig(tracing=False))  # flows+topo default on
        lean = self._run(ObsConfig(tracing=False, flows=False, topo=False))
        assert "flows" in full.obs and "topo" in full.obs
        assert "flows" not in lean.obs and "topo" not in lean.obs
        for run in (full, lean):
            assert run.continuity_series() == base.continuity_series()
            assert run.messages_sent == base.messages_sent
            assert run.bytes_on_wire == base.bytes_on_wire
            assert run.transport == base.transport

    def test_flow_pairs_reconcile_with_bytes_on_wire(self):
        run = self._run(ObsConfig(trace_sample=4))
        pairs = run.obs["flows"]["pairs"]
        assert pairs == [[0, 0, pairs[0][2], run.bytes_on_wire]]

    def test_topo_snapshot_reports_coverage_and_components(self):
        run = self._run(ObsConfig(tracing=False))
        topo = run.obs["topo"]
        assert topo["components"] == 1
        assert 0.0 < topo["coverage"] <= 1.0
        assert topo["partner_pairs"] > 0
        assert topo["nodes"] == topo["component_nodes"]
        assert topo["finger_total"] > 0


class TestSparkline:
    """Flat/degenerate series must render without a div-by-zero."""

    def test_empty_series_renders_empty(self):
        from repro.obs.report import _sparkline

        assert _sparkline([]) == ""

    def test_single_value_renders_one_low_block(self):
        from repro.obs.report import _sparkline, _SPARK

        assert _sparkline([3.7]) == _SPARK[0]

    def test_all_equal_values_render_flat(self):
        from repro.obs.report import _sparkline, _SPARK

        for value in (0.0, -2.5, 1e9):
            out = _sparkline([value] * 7)
            assert out == _SPARK[0] * 7

    def test_flat_series_longer_than_width_downsamples_flat(self):
        from repro.obs.report import _sparkline, _SPARK

        out = _sparkline([1.0] * 100, width=32)
        assert out == _SPARK[0] * 32

    def test_varying_series_spans_the_ramp(self):
        from repro.obs.report import _sparkline, _SPARK

        out = _sparkline([0.0, 1.0])
        assert out == _SPARK[0] + _SPARK[-1]


class TestHistogramPercentiles:
    def test_small_sample_percentiles_are_exact(self):
        from repro.obs import Histogram

        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        d = h.to_dict()
        assert d["p50"] == 51.0
        assert d["p95"] == 96.0

    def test_empty_histogram_has_no_percentiles(self):
        from repro.obs import Histogram

        assert "p50" not in Histogram().to_dict()

    def test_reservoir_stays_bounded_and_deterministic(self):
        from repro.obs import Histogram

        a, b = Histogram(), Histogram()
        for v in range(20_000):
            a.observe(float(v))
            b.observe(float(v))
        assert len(a._samples) < Histogram.RESERVOIR
        assert a._samples == b._samples  # no RNG anywhere
        # The decimated reservoir still tracks the distribution.
        assert a.to_dict()["p50"] == pytest.approx(10_000, rel=0.15)
        assert a.to_dict()["p95"] == pytest.approx(19_000, rel=0.15)

    def test_merge_weights_percentiles_by_count(self):
        from repro.obs import merge_metrics

        a = {"histograms": {"lag": {"count": 3, "sum": 3.0, "min": 1.0, "max": 1.0, "p50": 1.0, "p95": 1.0}}}
        b = {"histograms": {"lag": {"count": 1, "sum": 5.0, "min": 5.0, "max": 5.0, "p50": 5.0, "p95": 5.0}}}
        merged = merge_metrics([a, b])["histograms"]["lag"]
        assert merged["p50"] == pytest.approx(2.0)
        assert merged["count"] == 4
        assert "_p50_weighted" not in merged

    def test_report_renders_percentiles(self):
        from repro.obs import Histogram
        from repro.obs.report import render_report

        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        report = render_report({"metrics": {"histograms": {"phase_gossip_s": h.to_dict()}}})
        assert "p50=" in report and "p95=" in report


class TestJourneyAttribution:
    """A lossy virtual run yields complete journeys with miss causes."""

    @pytest.fixture(scope="class")
    def lossy_obs(self):
        spec = builtin_scenario("static").scaled(num_nodes=30, rounds=10, seed=1)
        spec = dataclasses.replace(spec, loss_rate=0.3)
        result = LiveSwarm(
            spec, clock="virtual", obs=ObsConfig(trace_sample=1)
        ).run()
        assert result.obs is not None
        return result.obs

    def test_traces_cover_the_full_journey(self, lossy_obs):
        traces = lossy_obs["traces"]
        assert traces["sampled"] > 100
        assert traces["played"] > 0
        events = {span["event"] for span in lossy_obs["spans"]}
        assert {"request", "recv_request", "ship", "deliver", "play"} <= events

    def test_misses_are_attributed_to_causes(self, lossy_obs):
        causes = lossy_obs["traces"]["miss_causes"]
        assert causes, "a 30%-loss run must miss some deadlines"
        assert set(causes) <= {
            "delivered_late", "credit_starvation", "lost_or_queued"
        }
        # 30% frame loss must surface loss-attributed misses specifically
        assert causes.get("lost_or_queued", 0) > 0

    def test_every_miss_span_names_its_cause(self, lossy_obs):
        misses = [s for s in lossy_obs["spans"] if s["event"] == "miss"]
        assert misses
        assert all(s.get("cause") for s in misses)


class TestMergeObsOrdering:
    """Merged multi-shard span streams must be deterministically ordered."""

    def _shard_export(self, shard, spans):
        return {
            "shard": shard,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}, "series": {}},
            "spans": spans,
            "flight": [],
            "postmortems": [],
            "spans_dropped": 0,
        }

    def test_equal_timestamps_tie_break_on_trace_then_seq(self):
        # Virtual-clock shards stamp whole batches at the same sim
        # instant; the merged order must not depend on shard arrival.
        span = lambda trace, seq, shard: {
            "trace": trace, "event": "ship", "peer": 1, "segment": 2,
            "t": 4.0, "seq": seq, "shard": shard,
        }
        a = self._shard_export(0, [span(9, 1, 0), span(2, 2, 0)])
        b = self._shard_export(1, [span(2, 1, 1), span(9, 2, 1)])
        merged_ab = merge_obs([a, b])
        merged_ba = merge_obs([b, a])
        key = lambda s: (s["trace"], s["seq"], s["shard"])
        assert [key(s) for s in merged_ab["spans"]] == [
            (2, 1, 1), (2, 2, 0), (9, 1, 0), (9, 2, 1),
        ]
        assert merged_ab["spans"] == merged_ba["spans"]

    def test_distinct_timestamps_still_sort_on_time_first(self):
        early = {"trace": 9, "event": "request", "peer": 1, "segment": 2,
                 "t": 1.0, "seq": 5, "shard": 1}
        late = {"trace": 1, "event": "play", "peer": 1, "segment": 2,
                "t": 2.0, "seq": 1, "shard": 0}
        merged = merge_obs([
            self._shard_export(0, [late]), self._shard_export(1, [early]),
        ])
        assert [s["t"] for s in merged["spans"]] == [1.0, 2.0]


class TestReportRobustness:
    """Partial exports from dead runs must render, not raise."""

    def test_empty_file_renders_a_no_series_note(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text("")
        loaded = load_obs_jsonl(path)
        report = render_report(loaded)
        assert "(no metric series in this export)" in report

    def test_truncated_trailing_line_is_skipped_and_counted(self, tmp_path):
        rec = ObsRecorder(ObsConfig())
        rec.inc("sent", 3)
        rec.snapshot(0)
        path = write_obs_jsonl(tmp_path / "obs.jsonl", rec.export())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "metric", "name": "sent", "per')  # torn mid-append
        loaded = load_obs_jsonl(path)
        assert loaded["skipped_lines"] == 1
        report = render_report(loaded)
        assert "sent" in report
        assert "1 malformed/unknown JSONL lines skipped" in report

    def test_postmortems_only_file_renders(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        records = [
            {"type": "postmortem", "reason": "stall", "t": 3.0,
             "events": [{"event": "dilate", "t": 2.5}]},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        loaded = load_obs_jsonl(path)
        report = render_report(loaded)
        assert "(no metric series in this export)" in report
        assert "stall" in report
        assert "dilate" in report

    def test_unknown_record_types_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text('{"type": "wat"}\n[1, 2, 3]\nnot json at all\n')
        loaded = load_obs_jsonl(path)
        assert loaded["skipped_lines"] == 3
        assert "malformed/unknown" in render_report(loaded)
