"""Tests for the deterministic RNG streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngStreams, spawn_generator


class TestSpawnGenerator:
    def test_same_seed_and_name_reproduce(self):
        a = spawn_generator(7, "topology").random(5)
        b = spawn_generator(7, "topology").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        a = spawn_generator(7, "topology").random(5)
        b = spawn_generator(7, "bandwidth").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = spawn_generator(7, "topology").random(5)
        b = spawn_generator(8, "topology").random(5)
        assert not np.allclose(a, b)


class TestRngStreams:
    def test_get_returns_same_stream_object(self):
        streams = RngStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_distinct_names_get_distinct_streams(self):
        streams = RngStreams(seed=1)
        assert streams.get("x") is not streams.get("y")

    def test_stream_independence(self):
        """Drawing from one stream must not change another stream's output."""
        streams_a = RngStreams(seed=3)
        streams_b = RngStreams(seed=3)
        # Perturb one registry by drawing from an unrelated stream first.
        streams_a.get("noise").random(100)
        a = streams_a.get("topology").random(10)
        b = streams_b.get("topology").random(10)
        assert np.allclose(a, b)

    def test_fork_is_not_registered(self):
        streams = RngStreams(seed=2)
        fork = streams.fork("node", 5)
        assert "node[5]" not in streams.names()
        assert isinstance(fork, np.random.Generator)

    def test_fork_reproducible(self):
        a = RngStreams(seed=2).fork("node", 5).random(4)
        b = RngStreams(seed=2).fork("node", 5).random(4)
        assert np.allclose(a, b)

    def test_fork_indices_differ(self):
        streams = RngStreams(seed=2)
        a = streams.fork("node", 1).random(4)
        b = streams.fork("node", 2).random(4)
        assert not np.allclose(a, b)

    def test_reset_recreates_streams(self):
        streams = RngStreams(seed=9)
        first = streams.get("x").random(3)
        streams.reset()
        second = streams.get("x").random(3)
        assert np.allclose(first, second)

    def test_names_sorted(self):
        streams = RngStreams(seed=0)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]
