"""Live-swarm integration tests and the sim-vs-runtime parity acceptance.

The runtime is real concurrency: results carry wall-clock noise, so these
tests assert generous envelopes (and the parity test compares stable-phase
*means*, the metric the harness documents).  ``CONTINU_RUNTIME_TIME_SCALE``
slows the swarm clock down on busy machines.
"""

import os

import pytest

from repro.net.message import MessageKind, MessageLedger
from repro.runtime import LiveSwarm, run_parity, run_swarm
from repro.scenarios.library import builtin_scenario

#: Wall seconds per simulated second for the tests in this module; CI can
#: raise it if the runners are too slow to keep a swarm's periods on time.
TIME_SCALE = float(os.environ.get("CONTINU_RUNTIME_TIME_SCALE", "0.5"))

#: Smaller swarms need far less wall time per period than the 200-node
#: parity swarm; scale down proportionally but keep a floor.
SMALL_SCALE = max(0.1, TIME_SCALE / 4)


class TestLiveSwarmStatic:
    @pytest.fixture(scope="class")
    def static_result(self):
        spec = builtin_scenario("static").scaled(num_nodes=40, rounds=15)
        return run_swarm(spec, time_scale=SMALL_SCALE)

    def test_continuity_climbs_to_stable_playback(self, static_result):
        series = static_result.continuity_series()
        assert len(series) == 15
        assert static_result.stable_continuity() > 0.6
        # the ramp: late rounds beat early rounds decisively
        assert sum(series[-5:]) > sum(series[:5])

    def test_all_traffic_planes_flowed(self, static_result):
        ledger = static_result.ledger
        assert ledger.count_of(MessageKind.BUFFER_MAP) > 0
        assert ledger.count_of(MessageKind.DATA_SCHEDULED) > 0
        assert ledger.bits_of(MessageKind.BUFFER_MAP) > 0
        # overheads are well-defined and in a sane band
        assert 0.0 < static_result.control_overhead() < 1.0
        assert 0.0 <= static_result.prefetch_overhead() < 1.0

    def test_throughput_metrics_are_positive(self, static_result):
        assert static_result.messages_sent > 0
        assert static_result.wall_time_s > 0
        assert static_result.messages_per_wall_second() > 0
        assert static_result.segments_delivered() > 0
        assert static_result.segments_per_wall_second() > 0

    def test_per_peer_ledgers_merge_to_the_swarm_ledger(self, static_result):
        merged = MessageLedger.merged(list(static_result.per_peer_ledgers.values()))
        for kind in MessageKind:
            assert merged.bits_of(kind) == static_result.ledger.bits_of(kind)
            assert merged.count_of(kind) == static_result.ledger.count_of(kind)

    def test_static_swarm_has_no_churn(self, static_result):
        assert static_result.peers_joined == 0
        assert static_result.peers_left == 0


class TestLiveSwarmDynamic:
    def test_live_churn_kills_and_admits_peers(self):
        spec = builtin_scenario("paper-dynamic").scaled(num_nodes=30, rounds=10)
        result = run_swarm(spec, time_scale=SMALL_SCALE)
        assert result.peers_left > 0
        assert result.peers_joined > 0
        # joiners announce themselves over the wire: PING/PONG traffic
        assert result.ledger.count_of(MessageKind.MEMBERSHIP) > 0
        assert len(result.continuity_series()) == 10

    def test_coolstreaming_swarm_runs_without_dht_traffic(self):
        spec = builtin_scenario("static").scaled(
            num_nodes=25, rounds=8, system="coolstreaming"
        )
        result = run_swarm(spec, time_scale=SMALL_SCALE)
        assert result.ledger.count_of(MessageKind.DHT_ROUTING) == 0
        assert result.ledger.count_of(MessageKind.DATA_PREFETCH) == 0
        assert result.ledger.count_of(MessageKind.DATA_SCHEDULED) > 0

    def test_lossy_scenario_drops_frames(self):
        spec = builtin_scenario("hetero-swarm").scaled(num_nodes=25, rounds=8)
        result = run_swarm(spec, time_scale=SMALL_SCALE)
        assert result.messages_dropped > 0


class TestLiveSwarmLifecycle:
    def test_invalid_parameters_are_rejected(self):
        spec = builtin_scenario("static")
        with pytest.raises(ValueError):
            LiveSwarm(spec, time_scale=0.0)
        with pytest.raises(ValueError):
            LiveSwarm(spec, rounds=0)

    def test_graceful_shutdown_leaves_no_running_tasks(self):
        spec = builtin_scenario("static").scaled(num_nodes=10, rounds=3)
        swarm = LiveSwarm(spec, time_scale=SMALL_SCALE)
        swarm.run()
        for peer in swarm.peers.values():
            assert peer.stopped
            assert peer._tasks == []

    def test_build_is_idempotent_and_reuses_sim_construction(self):
        spec = builtin_scenario("static").scaled(num_nodes=12, rounds=2)
        swarm = LiveSwarm(spec, time_scale=SMALL_SCALE)
        swarm.build()
        peers_before = dict(swarm.peers)
        swarm.build()
        assert swarm.peers == peers_before
        # identical overlay construction to the simulator's
        assert set(swarm.peers) == set(swarm.manager.nodes)
        assert swarm.manager.source_id in swarm.peers


@pytest.mark.slow
class TestSimRuntimeParity:
    """The PR's acceptance bar, documented in docs/runtime.md."""

    def test_static_200_node_parity_within_two_points(self):
        report = run_parity(
            "static", num_nodes=200, rounds=60, seed=0, time_scale=TIME_SCALE
        )
        assert report.sim_stable_continuity > 0.95
        assert report.runtime_stable_continuity > 0.95
        assert report.continuity_delta <= 0.02, report.formatted()
