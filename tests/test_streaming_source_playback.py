"""Tests for the media source and playback accounting."""

from __future__ import annotations

import pytest

from repro.streaming.buffer import SegmentBuffer
from repro.streaming.playback import ContinuityTracker, PlaybackState
from repro.streaming.source import MediaSource


class TestMediaSource:
    def test_requires_positive_rate(self):
        with pytest.raises(ValueError):
            MediaSource(playback_rate=0)

    def test_nothing_before_start(self):
        source = MediaSource(playback_rate=10, start_time=5.0)
        assert source.segments_available_at(4.0) == 0
        assert source.generate_until(4.0) == []
        assert source.newest_segment_id == -1

    def test_generation_rate(self):
        source = MediaSource(playback_rate=10)
        generated = source.generate_until(1.0)
        # Segments 0..10 exist at t=1.0 (id i is generated at i/10).
        assert [s.segment_id for s in generated] == list(range(11))
        assert source.newest_segment_id == 10

    def test_generation_is_idempotent(self):
        source = MediaSource(playback_rate=10)
        source.generate_until(1.0)
        assert source.generate_until(1.0) == []

    def test_incremental_generation(self):
        source = MediaSource(playback_rate=10)
        source.generate_until(1.0)
        more = source.generate_until(2.0)
        assert [s.segment_id for s in more] == list(range(11, 21))

    def test_origin_times(self):
        source = MediaSource(playback_rate=10)
        segments = source.generate_until(0.5)
        assert segments[0].origin_time == pytest.approx(0.0)
        assert segments[5].origin_time == pytest.approx(0.5)

    def test_has_segment(self):
        source = MediaSource(playback_rate=10)
        source.generate_until(1.0)
        assert source.has_segment(10)
        assert not source.has_segment(11)
        assert not source.has_segment(-1)


class TestPlaybackState:
    def _buffer_with(self, ids, capacity=100):
        buffer = SegmentBuffer(capacity=capacity)
        buffer.update_from(ids)
        return buffer

    def test_not_started_cannot_play(self):
        playback = PlaybackState(playback_rate=10)
        buffer = self._buffer_with(range(20))
        assert not playback.can_play_round(buffer, 1.0)
        assert not playback.advance_round(buffer, 1.0)

    def test_start_clamps_to_zero(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(-5)
        assert playback.started and playback.play_id == 0

    def test_can_play_requires_full_round(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(0)
        assert playback.can_play_round(self._buffer_with(range(10)), 1.0)
        assert not playback.can_play_round(self._buffer_with(range(9)), 1.0)

    def test_continuous_round_advances(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(0)
        assert playback.advance_round(self._buffer_with(range(10)), 1.0)
        assert playback.play_id == 10
        assert playback.segments_played == 10
        assert playback.stall_rounds == 0

    def test_stall_on_miss_keeps_pointer(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(0)
        buffer = self._buffer_with([0, 1, 2])  # missing 3..9
        assert not playback.advance_round(buffer, 1.0)
        assert playback.play_id == 0
        assert playback.stall_rounds == 1

    def test_hard_deadline_mode_skips(self):
        playback = PlaybackState(playback_rate=10, stall_on_miss=False)
        playback.start(0)
        buffer = self._buffer_with([0, 1, 2])
        assert not playback.advance_round(buffer, 1.0)
        assert playback.play_id == 10
        assert playback.segments_missed == 7
        assert playback.segments_played == 3

    def test_pointer_clamped_at_live_edge(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(0)
        buffer = self._buffer_with(range(5))
        # Only 5 segments exist; playing them all is continuous.
        assert playback.advance_round(buffer, 1.0, newest_available_id=4)
        assert playback.play_id == 5

    def test_caught_up_with_live_edge_counts_continuous(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(10)
        buffer = self._buffer_with([])
        assert playback.advance_round(buffer, 1.0, newest_available_id=9)
        assert playback.play_id == 10

    def test_skip_forward(self):
        playback = PlaybackState(playback_rate=10)
        playback.start(0)
        playback.skip_forward_to(50)
        assert playback.play_id == 50
        assert playback.catchup_skips == 1
        playback.skip_forward_to(30)  # backwards: ignored
        assert playback.play_id == 50

    def test_continuity_index(self):
        playback = PlaybackState(playback_rate=10, stall_on_miss=False)
        playback.start(0)
        playback.advance_round(self._buffer_with(range(5)), 1.0)
        assert playback.continuity_index() == pytest.approx(0.5)

    def test_continuity_index_empty_is_one(self):
        assert PlaybackState(playback_rate=10).continuity_index() == 1.0

    def test_segments_per_round(self):
        playback = PlaybackState(playback_rate=10)
        assert playback.segments_per_round(1.0) == 10
        assert playback.segments_per_round(0.5) == 5
        assert playback.segments_per_round(0.01) == 1


class TestContinuityTracker:
    def test_record_round_ratio(self):
        tracker = ContinuityTracker()
        value = tracker.record_round(1.0, playing=3, total=4)
        assert value == pytest.approx(0.75)
        assert tracker.continuity == [0.75]
        assert tracker.times == [1.0]

    def test_record_round_empty_population(self):
        tracker = ContinuityTracker()
        assert tracker.record_round(1.0, playing=0, total=0) == 1.0

    def test_stable_phase_uses_tail(self):
        tracker = ContinuityTracker()
        for index, value in enumerate([0.1, 0.2, 0.3, 0.9, 0.9, 0.9]):
            tracker.record_round(float(index), int(value * 10), 10)
        assert tracker.stable_phase_continuity() == pytest.approx(0.9)

    def test_stable_phase_empty_is_zero(self):
        assert ContinuityTracker().stable_phase_continuity() == 0.0

    def test_stable_phase_with_explicit_skip(self):
        tracker = ContinuityTracker()
        for index, value in enumerate([0.0, 1.0]):
            tracker.record_round(float(index), int(value * 10), 10)
        assert tracker.stable_phase_continuity(skip_rounds=1) == pytest.approx(1.0)

    def test_time_to_reach(self):
        tracker = ContinuityTracker()
        for index, value in enumerate([0.2, 0.5, 0.8]):
            tracker.record_round(float(index + 1), int(value * 10), 10)
        assert tracker.time_to_reach(0.5) == 2.0
        assert tracker.time_to_reach(0.99) is None

    def test_as_series(self):
        tracker = ContinuityTracker()
        tracker.record_round(1.0, 5, 10)
        series = tracker.as_series()
        assert series == {"time": [1.0], "continuity": [0.5]}
