"""Tests for ring arithmetic and the backup-key placement."""

from __future__ import annotations

import pytest

from repro.dht.hashing import backup_keys, is_backup_responsible, segment_hash
from repro.dht.ring import IdRing


class TestIdRing:
    def test_requires_at_least_two_ids(self):
        with pytest.raises(ValueError):
            IdRing(1)

    def test_bits(self):
        assert IdRing(1024).bits == 10
        assert IdRing(1000).bits == 10
        assert IdRing(2).bits == 1

    def test_normalize(self):
        ring = IdRing(100)
        assert ring.normalize(105) == 5
        assert ring.normalize(-1) == 99

    def test_clockwise_distance(self):
        ring = IdRing(100)
        assert ring.clockwise_distance(10, 30) == 20
        assert ring.clockwise_distance(30, 10) == 80
        assert ring.clockwise_distance(5, 5) == 0

    def test_counter_clockwise_distance(self):
        ring = IdRing(100)
        assert ring.counter_clockwise_distance(30, 10) == 20
        assert ring.counter_clockwise_distance(10, 30) == 80

    def test_distances_sum_to_ring_size(self):
        ring = IdRing(128)
        for a, b in [(0, 5), (100, 3), (64, 63)]:
            if a != b:
                total = ring.clockwise_distance(a, b) + ring.counter_clockwise_distance(a, b)
                assert total == 128

    def test_in_clockwise_interval(self):
        ring = IdRing(100)
        assert ring.in_clockwise_interval(15, 10, 20)
        assert ring.in_clockwise_interval(10, 10, 20)
        assert not ring.in_clockwise_interval(20, 10, 20)
        # Wrapping interval [90, 10)
        assert ring.in_clockwise_interval(95, 90, 10)
        assert ring.in_clockwise_interval(5, 90, 10)
        assert not ring.in_clockwise_interval(50, 90, 10)

    def test_empty_interval_contains_nothing(self):
        ring = IdRing(100)
        assert not ring.in_clockwise_interval(5, 5, 5)

    def test_clockwise_closest(self):
        ring = IdRing(100)
        # Candidate with smallest clockwise distance from itself to the target.
        assert ring.clockwise_closest(50, [10, 45, 60]) == 45
        assert ring.clockwise_closest(50, []) is None

    def test_responsible_node_wraps(self):
        ring = IdRing(100)
        nodes = [10, 40, 80]
        assert ring.responsible_node(45, nodes) == 40
        assert ring.responsible_node(5, nodes) == 80  # wraps counter-clockwise
        assert ring.responsible_node(10, nodes) == 10
        assert ring.responsible_node(5, []) is None

    def test_level_of(self):
        ring = IdRing(1024)
        assert ring.level_of(0, 0) == 0
        assert ring.level_of(0, 1) == 1
        assert ring.level_of(0, 2) == 2
        assert ring.level_of(0, 3) == 2
        assert ring.level_of(0, 4) == 3
        assert ring.level_of(0, 1023) == 10

    def test_level_interval(self):
        ring = IdRing(1024)
        assert ring.level_interval(5, 1) == (6, 7)
        assert ring.level_interval(5, 3) == (9, 13)
        with pytest.raises(ValueError):
            ring.level_interval(5, 0)

    def test_level_interval_matches_level_of(self):
        ring = IdRing(256)
        node = 17
        for level in range(1, ring.bits + 1):
            start, end = ring.level_interval(node, level)
            # Every id in [start, end) must be classified back to this level.
            probe = start
            while probe != end:
                assert ring.level_of(node, probe) == level
                probe = ring.normalize(probe + 1)

    def test_spread_ids(self):
        ring = IdRing(100)
        ids = ring.spread_ids(4)
        assert ids == [0, 25, 50, 75]
        assert ring.spread_ids(0) == []


class TestSegmentHash:
    def test_deterministic(self):
        assert segment_hash(42, 8192) == segment_hash(42, 8192)

    def test_within_id_space(self):
        for value in range(0, 5000, 37):
            assert 0 <= segment_hash(value, 8192) < 8192

    def test_rejects_tiny_id_space(self):
        with pytest.raises(ValueError):
            segment_hash(1, 1)

    def test_spreads_consecutive_ids(self):
        """Consecutive segment ids must not map to adjacent ring positions."""
        keys = [segment_hash(i, 8192) for i in range(100)]
        gaps = [abs(keys[i + 1] - keys[i]) for i in range(99)]
        assert sum(1 for gap in gaps if gap < 10) < 5


class TestBackupKeys:
    def test_count_matches_replicas(self):
        assert len(backup_keys(7, 4, 8192)) == 4

    def test_first_key_is_hash_of_id(self):
        assert backup_keys(7, 4, 8192)[0] == segment_hash(7, 8192)

    def test_uses_multiplication_not_addition(self):
        """Equation (5) hashes id*i so replicas land on dispersed positions."""
        keys = backup_keys(100, 4, 8192)
        assert keys[1] == segment_hash(200, 8192)
        assert keys[2] == segment_hash(300, 8192)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            backup_keys(-1, 4, 8192)
        with pytest.raises(ValueError):
            backup_keys(1, 0, 8192)

    def test_responsibility_interval(self):
        segment_id, replicas, space = 12, 4, 8192
        keys = backup_keys(segment_id, replicas, space)
        key = keys[0]
        # A node owning an interval containing the key is responsible.
        assert is_backup_responsible(segment_id, replicas, space, key, key + 1)
        # A node owning an interval just past the key is not (unless another
        # key falls inside, so pick a tiny interval away from all keys).
        for probe in range(space):
            if all((probe <= k or k < probe) and not (probe <= k < probe + 1) for k in keys):
                assert not is_backup_responsible(
                    segment_id, replicas, space, probe, probe + 1
                )
                break

    def test_sole_node_owns_everything(self):
        assert is_backup_responsible(5, 4, 8192, 17, 17)

    def test_exactly_k_single_slot_owners(self):
        """With single-id intervals, exactly the k key owners are responsible
        (modulo key collisions)."""
        segment_id, replicas, space = 9, 4, 4096
        keys = set(backup_keys(segment_id, replicas, space))
        owners = [
            node
            for node in range(space)
            if is_backup_responsible(segment_id, replicas, space, node, (node + 1) % space)
        ]
        assert set(owners) == keys
