"""Tests for the experiment harness (at small scales)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.experiments.ablations import (
    format_ablation,
    run_phase_ablation,
    run_prefetch_limit_ablation,
    run_priority_ablation,
    run_replica_ablation,
)
from repro.experiments.fig3_dht import format_fig3, run_fig3_dht
from repro.experiments.fig5_6_track import format_track, run_continuity_track
from repro.experiments.fig7_8_scale import format_scale_sweep, run_scale_sweep
from repro.experiments.fig9_control import format_control_overhead, run_control_overhead
from repro.experiments.fig10_11_prefetch import (
    format_prefetch_scale,
    run_prefetch_overhead_scale,
    run_prefetch_overhead_track,
)
from repro.experiments.runner import build_parser, main
from repro.experiments.table_theory import (
    format_theory_table,
    paper_reference_rows,
    run_theory_table,
    theoretical_rows,
)


SMALL = SystemConfig(
    num_nodes=40, rounds=10, buffer_capacity=200, scheduling_window=80,
    playback_lag_segments=40, seed=2,
)


class TestFig3:
    def test_points_and_shape(self):
        points = run_fig3_dht(node_counts=[100, 400], lookups_per_size=200, seed=1)
        assert [p.num_nodes for p in points] == [100, 400]
        for point in points:
            assert point.success_rate > 0.85
            assert 0 < point.average_hops < 15
        # Hops grow with the population, matching the log2(n)/2 trend.
        assert points[1].average_hops > points[0].average_hops

    def test_formatting(self):
        points = run_fig3_dht(node_counts=[50], lookups_per_size=50, seed=1)
        text = format_fig3(points)
        assert "avg hops" in text and "50" in text

    def test_as_row(self):
        point = run_fig3_dht(node_counts=[50], lookups_per_size=20, seed=1)[0]
        row = point.as_row()
        assert row["n"] == 50 and "success_rate" in row


class TestTheoryTable:
    def test_theoretical_rows_match_paper(self):
        rows = theoretical_rows()
        by_env = {row.environment: row for row in rows}
        assert by_env["theory λ=15"].pc_old == pytest.approx(0.8815, abs=2e-3)
        assert by_env["theory λ=14"].pc_new == pytest.approx(0.9975, abs=2e-3)

    def test_simulated_rows_present(self):
        rows = run_theory_table(SMALL, include_theory=False)
        assert [row.environment for row in rows] == [
            "homogeneous static",
            "homogeneous dynamic",
            "heterogeneous static",
            "heterogeneous dynamic",
        ]
        for row in rows:
            assert 0.0 <= row.pc_old <= 1.0
            assert 0.0 <= row.pc_new <= 1.0

    def test_formatting_and_reference(self):
        text = format_theory_table(paper_reference_rows())
        assert "heterogeneous dynamic" in text
        assert "0.9537" in text


class TestTracks:
    def test_static_track(self):
        results = run_continuity_track(num_nodes=40, rounds=10, seed=2,
                                       base_config=SMALL)
        assert set(results) == {"coolstreaming", "continustreaming"}
        for result in results.values():
            assert len(result.continuity) == 10
            assert not result.dynamic

    def test_dynamic_track_flag(self):
        results = run_continuity_track(num_nodes=40, rounds=8, dynamic=True,
                                       base_config=SMALL)
        assert all(result.dynamic for result in results.values())

    def test_formatting(self):
        results = run_continuity_track(num_nodes=40, rounds=6, base_config=SMALL)
        text = format_track(results)
        assert "coolstreaming" in text and "track" in text


class TestScaleSweeps:
    def test_scale_sweep_points(self):
        points = run_scale_sweep(sizes=[40, 60], rounds=10, base_config=SMALL)
        assert [point.num_nodes for point in points] == [40, 60]
        for point in points:
            assert 0.0 <= point.coolstreaming <= 1.0
            assert 0.0 <= point.continustreaming <= 1.0
            assert point.delta == pytest.approx(
                point.continustreaming - point.coolstreaming
            )

    def test_formatting(self):
        points = run_scale_sweep(sizes=[40], rounds=8, base_config=SMALL)
        assert "ContinuStreaming" in format_scale_sweep(points)


class TestOverheadExperiments:
    def test_control_overhead_points(self):
        points = run_control_overhead(
            sizes=[40], neighbor_counts=[4, 5], rounds=8, base_config=SMALL
        )
        assert len(points) == 2
        for point in points:
            assert point.control_overhead > 0
            # The analytic estimate uses the configured buffer size: with the
            # test config's 200-slot buffer a map costs 220 bits per neighbour.
            expected = 220 * point.connected_neighbors / (30 * 1024 * 10)
            assert point.analytic_estimate == pytest.approx(expected, rel=0.01)
            # Measured overhead is the same order of magnitude as the estimate
            # (it exceeds it when continuity is below 1.0, as the paper notes).
            assert point.control_overhead < 20 * point.analytic_estimate
        # More neighbours cost more control traffic.
        assert points[1].control_overhead > points[0].control_overhead

    def test_control_overhead_formatting(self):
        points = run_control_overhead(sizes=[40], neighbor_counts=[5], rounds=6,
                                      base_config=SMALL)
        assert "control overhead" in format_control_overhead(points)

    def test_prefetch_track(self):
        tracks = run_prefetch_overhead_track(num_nodes=40, rounds=10, base_config=SMALL)
        assert set(tracks) == {"static", "dynamic"}
        for track in tracks.values():
            assert len(track.overhead) == 10
            assert track.stable_overhead >= 0.0

    def test_prefetch_scale(self):
        points = run_prefetch_overhead_scale(sizes=[40], rounds=8, base_config=SMALL)
        assert len(points) == 2  # static + dynamic
        assert {point.dynamic for point in points} == {False, True}
        assert "pre-fetch overhead" in format_prefetch_scale(points)


class TestAblations:
    def test_priority_ablation_rows(self):
        points = run_priority_ablation(SMALL)
        assert len(points) == 3
        assert points[0].name.startswith("coolstreaming")
        assert all(0.0 <= p.stable_continuity <= 1.0 for p in points)

    def test_replica_ablation(self):
        points = run_replica_ablation(replica_counts=(1, 4), base_config=SMALL)
        assert [point.name for point in points] == ["k=1", "k=4"]

    def test_prefetch_limit_ablation(self):
        points = run_prefetch_limit_ablation(limits=(0, 5), base_config=SMALL)
        assert points[0].prefetch_overhead == 0.0

    def test_phase_ablation_switches_off_prefetch_traffic(self):
        points = run_phase_ablation(SMALL)
        assert [point.name for point in points] == [
            "full pipeline",
            "no on-demand retrieval phase",
            "no prediction, no retrieval",
        ]
        assert points[0].prefetch_overhead > 0.0
        assert points[1].prefetch_overhead == 0.0
        assert points[2].prefetch_overhead == 0.0

    def test_phase_ablation_rejects_unknown_phase_names(self):
        from repro.experiments.ablations import _pipeline_without

        with pytest.raises(ValueError, match="cannot ablate"):
            _pipeline_without("continustreaming", "ondemand-retrieval")  # typo

    def test_formatting(self):
        text = format_ablation(run_replica_ablation(replica_counts=(1,), base_config=SMALL))
        assert "k=1" in text


class TestRunnerCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--sizes", "50", "--lookups", "100"])
        assert args.experiment == "fig3"
        assert args.sizes == [50]

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figX"])

    def test_main_runs_fig3(self, capsys):
        exit_code = main(["fig3", "--sizes", "60", "--lookups", "100"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "fig3" in captured and "avg hops" in captured
