"""Tests for the analytic models (Section 5.1) and metric helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    ExperimentRecord,
    moving_average,
    render_table,
    stable_phase_mean,
    summarize_runs,
    time_to_threshold,
)
from repro.analysis.theory import (
    coverage_ratio_at_distance,
    dht_hop_upper_bound,
    expected_control_overhead,
    expected_dht_lookup_hops,
    expected_fetch_time,
    expected_missed_segments,
    expected_prefetch_cost_bits,
    gossip_coverage_probability,
    playback_continuity_delta,
    playback_continuity_new,
    playback_continuity_old,
    poisson_cdf,
    poisson_pmf,
    prefetch_failure_probability,
    prefetch_success_probability,
    trigger_probability,
)


class TestPoisson:
    def test_pmf_sums_to_one(self):
        total = sum(poisson_pmf(n, 6.0) for n in range(100))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_pmf_zero_mean(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(3, 0.0) == 0.0

    def test_pmf_negative_n(self):
        assert poisson_pmf(-1, 2.0) == 0.0

    def test_pmf_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            poisson_pmf(1, -1.0)

    def test_cdf_monotone(self):
        values = [poisson_cdf(n, 10.0) for n in range(30)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] <= 1.0

    def test_cdf_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for mean in (5.0, 10.0, 15.0):
            for n in (0, 5, 10, 20):
                assert poisson_cdf(n, mean) == pytest.approx(
                    float(scipy_stats.poisson.cdf(n, mean)), abs=1e-9
                )


class TestPlaybackContinuityModel:
    def test_paper_values_lambda_15(self):
        """The paper's table: λ=15 gives PC_old 0.8815 and PC_new 0.9989."""
        assert playback_continuity_old(15.0, 10.0, 1.0) == pytest.approx(0.8815, abs=2e-3)
        assert playback_continuity_new(15.0, 10.0, 1.0, 4) == pytest.approx(0.9989, abs=2e-3)

    def test_paper_values_lambda_14(self):
        assert playback_continuity_old(14.0, 10.0, 1.0) == pytest.approx(0.8243, abs=2e-3)
        assert playback_continuity_new(14.0, 10.0, 1.0, 4) == pytest.approx(0.9975, abs=2e-3)

    def test_delta_is_consistent(self):
        delta = playback_continuity_delta(15.0, 10.0, 1.0, 4)
        assert delta == pytest.approx(
            playback_continuity_new(15.0, 10.0, 1.0, 4)
            - playback_continuity_old(15.0, 10.0, 1.0)
        )

    def test_new_is_never_below_old(self):
        for arrival_rate in (8.0, 10.0, 12.0, 15.0, 20.0):
            old = playback_continuity_old(arrival_rate, 10.0, 1.0)
            new = playback_continuity_new(arrival_rate, 10.0, 1.0, 4)
            assert new >= old

    def test_higher_arrival_rate_helps(self):
        assert playback_continuity_old(18.0, 10.0, 1.0) > playback_continuity_old(
            12.0, 10.0, 1.0
        )

    def test_more_replicas_help(self):
        low = playback_continuity_new(12.0, 10.0, 1.0, 1)
        high = playback_continuity_new(12.0, 10.0, 1.0, 8)
        assert high >= low

    def test_trigger_probability_complement(self):
        assert trigger_probability(15.0, 10.0, 1.0) == pytest.approx(
            1.0 - playback_continuity_old(15.0, 10.0, 1.0)
        )

    def test_expected_missed_segments_bounds(self):
        missed = expected_missed_segments(15.0, 10.0, 1.0)
        assert 0.0 < missed < 10.0
        # With a huge arrival rate, essentially nothing is missed.
        assert expected_missed_segments(100.0, 10.0, 1.0) == pytest.approx(0.0, abs=1e-6)

    def test_prefetch_probabilities(self):
        assert prefetch_failure_probability(4) == pytest.approx(1 / 16)
        assert prefetch_success_probability(4, 0.0) == 1.0
        assert prefetch_success_probability(4, 2.0) == pytest.approx((15 / 16) ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            playback_continuity_old(-1.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            playback_continuity_old(10.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            prefetch_success_probability(4, -1.0)


class TestCoverageAndDhtFormulas:
    def test_kermarrec_coverage(self):
        assert gossip_coverage_probability(0.0) == pytest.approx(math.exp(-1.0))
        assert gossip_coverage_probability(5.0) > 0.99

    def test_coolstreaming_coverage_increases_with_distance(self):
        near = coverage_ratio_at_distance(5, 1000, 2)
        far = coverage_ratio_at_distance(5, 1000, 6)
        assert far > near
        assert 0.0 < near < far <= 1.0

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            coverage_ratio_at_distance(2, 1000, 3)
        with pytest.raises(ValueError):
            coverage_ratio_at_distance(5, 1000, 1)

    def test_dht_hop_bound_value(self):
        """The appendix: log N / log(4/3) ≈ 2.41 log2 N."""
        assert dht_hop_upper_bound(8192) == pytest.approx(2.41 * 13, rel=0.01)
        assert dht_hop_upper_bound(1) == 0.0

    def test_expected_lookup_hops(self):
        assert expected_dht_lookup_hops(1024) == pytest.approx(5.0)
        assert expected_dht_lookup_hops(1) == 0.0

    def test_expected_fetch_time_paper_example(self):
        """Section 5.2: n=1000, t_hop=50 ms gives t_fetch ≈ 0.4 s."""
        assert expected_fetch_time(1000, 0.05) == pytest.approx(0.4, abs=0.05)
        with pytest.raises(ValueError):
            expected_fetch_time(1000, -0.1)

    def test_expected_control_overhead_paper_example(self):
        """Section 5.4.2: roughly M/495 for the default parameters."""
        assert expected_control_overhead(5) == pytest.approx(5 / 495, rel=0.02)
        with pytest.raises(ValueError):
            expected_control_overhead(0)

    def test_expected_prefetch_cost_paper_example(self):
        """Section 5.4.3: about 33000 bits per pre-fetched segment at n≤8000."""
        assert expected_prefetch_cost_bits(4, 8000) == pytest.approx(33000, rel=0.05)
        with pytest.raises(ValueError):
            expected_prefetch_cost_bits(0, 8000)


class TestMetricsHelpers:
    def test_summarize_runs(self):
        summary = summarize_runs([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["count"] == 3

    def test_summarize_empty(self):
        assert summarize_runs([])["count"] == 0

    def test_moving_average(self):
        assert moving_average([1, 2, 3, 4], window=2) == [1.0, 1.5, 2.5, 3.5]
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_stable_phase_mean(self):
        series = [0.0] * 10 + [1.0] * 5
        assert stable_phase_mean(series) == pytest.approx(1.0)
        assert stable_phase_mean([]) == 0.0
        with pytest.raises(ValueError):
            stable_phase_mean([1.0], skip_fraction=1.0)

    def test_time_to_threshold(self):
        times = [1.0, 2.0, 3.0]
        series = [0.1, 0.5, 0.9]
        assert time_to_threshold(times, series, 0.5) == 2.0
        assert time_to_threshold(times, series, 0.95) is None

    def test_experiment_record(self):
        record = ExperimentRecord(
            experiment="fig7", label="n=100", values={"continuity": 0.9}
        )
        assert record.value("continuity") == pytest.approx(0.9)
        assert "fig7" in record.formatted()

    def test_render_table(self):
        records = [
            ExperimentRecord("fig7", "n=100", {"a": 1.0, "b": 2.0}),
            ExperimentRecord("fig7", "n=200", {"a": 3.0, "b": 4.0}),
        ]
        table = render_table(records, columns=["a", "b"])
        assert "n=100" in table and "n=200" in table
        assert "3.0000" in table
