"""Tests for the latency, bandwidth, message-ledger and churn models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.bandwidth import BandwidthModel, NodeBandwidth
from repro.net.churn import ChurnEvent, ChurnProcess
from repro.net.latency import LatencyModel
from repro.net.message import (
    MessageKind,
    MessageLedger,
    ROUTING_MESSAGE_BITS,
    RoundTrafficLog,
)


class TestLatencyModel:
    def test_one_way_is_half_ping_difference(self):
        model = LatencyModel({1: 100.0, 2: 40.0}, floor_ms=5.0)
        assert model.one_way_ms(1, 2) == pytest.approx(30.0)
        assert model.rtt_ms(1, 2) == pytest.approx(60.0)

    def test_floor_applies_to_similar_pings(self):
        model = LatencyModel({1: 100.0, 2: 101.0}, floor_ms=5.0)
        assert model.one_way_ms(1, 2) == 5.0

    def test_same_node_zero(self):
        model = LatencyModel({1: 100.0})
        assert model.one_way_ms(1, 1) == 0.0

    def test_seconds_conversion(self):
        model = LatencyModel({1: 100.0, 2: 0.0}, floor_ms=0.0)
        assert model.one_way_s(1, 2) == pytest.approx(0.05)

    def test_add_remove_node(self):
        model = LatencyModel({1: 50.0})
        model.add_node(2, 70.0)
        assert 2 in model
        assert model.ping_of(2) == 70.0
        model.remove_node(2)
        assert 2 not in model
        model.remove_node(2)  # no error

    def test_unknown_node_raises(self):
        model = LatencyModel({1: 50.0})
        with pytest.raises(KeyError):
            model.one_way_ms(1, 99)

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel({}, floor_ms=-1.0)

    def test_mean_hop_latency(self, rng):
        pings = {i: float(p) for i, p in enumerate(rng.lognormal(np.log(100), 0.6, 200))}
        model = LatencyModel(pings)
        mean = model.mean_hop_latency_ms(rng=rng)
        assert 10.0 <= mean <= 200.0

    def test_mean_hop_latency_single_node(self):
        model = LatencyModel({1: 50.0}, floor_ms=5.0)
        assert model.mean_hop_latency_ms() == 5.0


class TestBandwidthModel:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BandwidthModel(mean_rate=5, min_rate=10, max_rate=33)

    def test_homogeneous_assignment(self, rng):
        model = BandwidthModel(mean_rate=15, heterogeneous=False)
        model.assign(range(10), rng)
        assert all(model.inbound(i) == 15 for i in range(10))
        assert all(model.outbound(i) == 15 for i in range(10))

    def test_heterogeneous_assignment_bounds_and_mean(self, rng):
        model = BandwidthModel(mean_rate=15, min_rate=10, max_rate=33)
        model.assign(range(500), rng)
        rates = [model.inbound(i) for i in range(500)]
        assert all(10 <= r <= 33 for r in rates)
        assert np.mean(rates) == pytest.approx(15, abs=1.0)

    def test_source_overrides(self, rng):
        model = BandwidthModel(source_outbound=100)
        model.assign(range(5), rng, source_id=3)
        assert model.inbound(3) == 0.0
        assert model.outbound(3) == 100.0

    def test_assign_one_and_remove(self, rng):
        model = BandwidthModel()
        capacity = model.assign_one(7, rng)
        assert isinstance(capacity, NodeBandwidth)
        assert 7 in model
        model.remove(7)
        assert 7 not in model
        with pytest.raises(KeyError):
            model.of(7)

    def test_mean_inbound(self, rng):
        model = BandwidthModel(heterogeneous=False, mean_rate=12)
        model.assign(range(4), rng)
        assert model.mean_inbound() == pytest.approx(12)
        assert BandwidthModel().mean_inbound() == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodeBandwidth(inbound=-1, outbound=5)

    def test_rate_conversions_round_trip(self):
        kbps = 300.0
        segments = BandwidthModel.kbps_to_segments_per_s(kbps)
        assert BandwidthModel.segments_per_s_to_kbps(segments) == pytest.approx(kbps)
        # 300 Kbps at 30 Kbit segments is very close to 10 segments/s.
        assert segments == pytest.approx(300 * 1000 / (30 * 1024))


class TestMessageLedger:
    def test_record_and_totals(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.BUFFER_MAP, 620, count=1)
        ledger.record(MessageKind.DATA_SCHEDULED, 30 * 1024, count=1)
        assert ledger.bits_of(MessageKind.BUFFER_MAP) == 620
        assert ledger.count_of(MessageKind.DATA_SCHEDULED) == 1
        assert ledger.data_bits() == 30 * 1024

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            MessageLedger().record(MessageKind.BUFFER_MAP, -1)

    def test_control_overhead_definition(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.DATA_SCHEDULED, 30 * 1024 * 10)
        ledger.record(MessageKind.BUFFER_MAP, 620 * 5)
        expected = (620 * 5) / (30 * 1024 * 10)
        assert ledger.control_overhead() == pytest.approx(expected)

    def test_prefetch_overhead_definition(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.DATA_SCHEDULED, 100_000)
        ledger.record(MessageKind.DHT_ROUTING, ROUTING_MESSAGE_BITS * 10)
        ledger.record(MessageKind.DATA_PREFETCH, 30 * 1024)
        expected = (ROUTING_MESSAGE_BITS * 10 + 30 * 1024) / 100_000
        assert ledger.prefetch_overhead() == pytest.approx(expected)

    def test_overheads_zero_without_data(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.BUFFER_MAP, 620)
        assert ledger.control_overhead() == 0.0
        assert ledger.prefetch_overhead() == 0.0

    def test_merge_and_snapshot_and_delta(self):
        a = MessageLedger()
        a.record(MessageKind.DATA_SCHEDULED, 100)
        snapshot = a.snapshot()
        a.record(MessageKind.DATA_SCHEDULED, 50)
        delta = a.delta_since(snapshot)
        assert delta.bits_of(MessageKind.DATA_SCHEDULED) == 50
        b = MessageLedger()
        b.merge(a)
        assert b.bits_of(MessageKind.DATA_SCHEDULED) == 150

    def test_totals_sum_every_kind(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.BUFFER_MAP, 620, count=2)
        ledger.record(MessageKind.DHT_ROUTING, 160, count=2)
        ledger.record(MessageKind.MEMBERSHIP, 80)
        assert ledger.total_bits() == 620 + 160 + 80
        assert ledger.total_count() == 5
        assert MessageLedger().total_bits() == 0.0
        assert MessageLedger().total_count() == 0

    def test_merged_per_peer_ledgers_equal_one_global_ledger(self):
        # The live runtime's accumulation model: every peer records into
        # its own ledger (no shared mutable state), and the swarm reduces
        # them with merge afterwards — totals must match a single global
        # ledger that saw the same traffic, in any reduction order.
        traffic = [
            (MessageKind.BUFFER_MAP, 620.0, 3),
            (MessageKind.DATA_SCHEDULED, 30 * 1024.0, 2),
            (MessageKind.DHT_ROUTING, 80.0, 7),
            (MessageKind.MEMBERSHIP, 80.0, 1),
            (MessageKind.DATA_PREFETCH, 30 * 1024.0, 1),
        ]
        per_peer = []
        global_ledger = MessageLedger()
        for i, (kind, bits, count) in enumerate(traffic * 3):
            peer = MessageLedger()
            peer.record(kind, bits * (i + 1), count=count)
            global_ledger.record(kind, bits * (i + 1), count=count)
            per_peer.append(peer)
        forward = MessageLedger.merged(per_peer)
        backward = MessageLedger.merged(list(reversed(per_peer)))
        for kind in MessageKind:
            assert forward.bits_of(kind) == pytest.approx(global_ledger.bits_of(kind))
            assert backward.bits_of(kind) == pytest.approx(global_ledger.bits_of(kind))
            assert forward.count_of(kind) == global_ledger.count_of(kind)
        # the inputs are untouched by the reduction
        assert per_peer[0].total_count() == traffic[0][2]

    def test_snapshot_is_detached_in_both_directions(self):
        live = MessageLedger()
        live.record(MessageKind.BUFFER_MAP, 620)
        frozen = live.snapshot()
        live.record(MessageKind.BUFFER_MAP, 620)
        frozen.record(MessageKind.MEMBERSHIP, 80)
        assert frozen.bits_of(MessageKind.BUFFER_MAP) == 620
        assert live.bits_of(MessageKind.BUFFER_MAP) == 1240
        assert live.bits_of(MessageKind.MEMBERSHIP) == 0.0

    def test_reset(self):
        ledger = MessageLedger()
        ledger.record(MessageKind.MEMBERSHIP, 80)
        ledger.reset()
        assert ledger.bits_of(MessageKind.MEMBERSHIP) == 0.0
        assert ledger.count_of(MessageKind.MEMBERSHIP) == 0

    def test_round_traffic_log(self):
        log = RoundTrafficLog()
        for round_index in range(3):
            ledger = MessageLedger()
            ledger.record(MessageKind.DATA_SCHEDULED, 1000)
            ledger.record(MessageKind.BUFFER_MAP, 10 * (round_index + 1))
            log.append(float(round_index), ledger)
        series = log.control_overhead_series()
        assert len(series) == 3
        assert series[0] < series[2]
        cumulative = log.cumulative()
        assert cumulative.bits_of(MessageKind.DATA_SCHEDULED) == 3000


class TestChurnProcess:
    def test_static_process(self, rng):
        churn = ChurnProcess()
        assert churn.is_static
        event = churn.step(0, [1, 2, 3], rng)
        assert event.is_empty

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            ChurnProcess(leave_fraction=1.0)
        with pytest.raises(ValueError):
            ChurnProcess(join_fraction=-0.1)

    def test_join_fraction_upper_bound(self):
        with pytest.raises(ValueError, match="join_fraction"):
            ChurnProcess(join_fraction=1.5)
        # Exactly a population doubling per round is the permitted maximum.
        assert ChurnProcess(join_fraction=1.0).join_fraction == 1.0

    def test_protected_population_mismatch_rejected(self, rng):
        churn = ChurnProcess(leave_fraction=0.1, protected={99})
        with pytest.raises(ValueError, match="protected node ids \\[99\\]"):
            churn.step(0, [0, 1, 2, 3], rng)

    def test_static_process_skips_protected_check(self, rng):
        # A static process never mutates membership, so a stale protected
        # set is harmless and must not raise.
        churn = ChurnProcess(protected={99})
        assert churn.step(0, [0, 1, 2], rng).is_empty

    def test_leave_and_join_counts(self, rng):
        churn = ChurnProcess(leave_fraction=0.1, join_fraction=0.1, next_node_id=1000)
        event = churn.step(0, list(range(100)), rng)
        assert len(event.leaving) == 10
        assert len(event.joining) == 10
        assert all(node >= 1000 for node in event.joining)

    def test_protected_nodes_never_leave(self, rng):
        churn = ChurnProcess(leave_fraction=0.5, protected={0})
        for _ in range(20):
            event = churn.step(0, [0, 1, 2, 3], rng)
            assert 0 not in event.leaving

    def test_join_ids_are_unique_across_rounds(self, rng):
        churn = ChurnProcess(leave_fraction=0.05, join_fraction=0.05, next_node_id=50)
        seen = set()
        for round_index in range(10):
            event = churn.step(round_index, list(range(40)), rng)
            for node in event.joining:
                assert node not in seen
                seen.add(node)

    def test_reserve_ids(self, rng):
        churn = ChurnProcess(join_fraction=0.5)
        churn.reserve_ids([5, 90, 12])
        event = churn.step(0, list(range(10)), rng)
        assert all(node >= 91 for node in event.joining)

    def test_event_is_empty_property(self):
        assert ChurnEvent(0, (), ()).is_empty
        assert not ChurnEvent(0, (1,), ()).is_empty
