"""Tests for the FIFO sliding-window segment buffer."""

from __future__ import annotations

import pytest

from repro.streaming.buffer import SegmentBuffer


class TestConstruction:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            SegmentBuffer(capacity=0)

    def test_requires_non_negative_head(self):
        with pytest.raises(ValueError):
            SegmentBuffer(capacity=10, head_id=-1)

    def test_window_bounds(self):
        buffer = SegmentBuffer(capacity=10, head_id=5)
        assert buffer.head_id == 5
        assert buffer.tail_id == 15
        assert buffer.in_window(5)
        assert buffer.in_window(14)
        assert not buffer.in_window(15)
        assert not buffer.in_window(4)


class TestAddAndEvict:
    def test_add_inside_window(self):
        buffer = SegmentBuffer(capacity=10)
        assert buffer.add(3)
        assert 3 in buffer
        assert len(buffer) == 1

    def test_add_expired_rejected(self):
        buffer = SegmentBuffer(capacity=10, head_id=20)
        assert not buffer.add(19)
        assert len(buffer) == 0

    def test_add_beyond_tail_slides_window(self):
        buffer = SegmentBuffer(capacity=5)
        for sid in range(5):
            buffer.add(sid)
        assert buffer.add(7)  # window becomes [3, 8)
        assert buffer.head_id == 3
        assert 0 not in buffer and 1 not in buffer and 2 not in buffer
        assert 3 in buffer and 4 in buffer and 7 in buffer

    def test_advance_head_evicts_fifo(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.update_from(range(6))
        evicted = buffer.advance_head(3)
        assert evicted == [0, 1, 2]
        assert buffer.ids() == [3, 4, 5]

    def test_advance_head_backwards_is_noop(self):
        buffer = SegmentBuffer(capacity=10, head_id=5)
        assert buffer.advance_head(3) == []
        assert buffer.head_id == 5

    def test_discard(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.add(2)
        buffer.discard(2)
        buffer.discard(99)  # no error
        assert 2 not in buffer

    def test_update_from_counts_accepted(self):
        buffer = SegmentBuffer(capacity=10, head_id=5)
        accepted = buffer.update_from([1, 5, 6, 7])  # 1 is expired
        assert accepted == 3
        assert buffer.ids() == [5, 6, 7]


class TestQueries:
    def test_ids_sorted(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.update_from([4, 1, 3])
        assert buffer.ids() == [1, 3, 4]

    def test_id_set_is_a_copy(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.add(1)
        copy = buffer.id_set()
        copy.add(99)
        assert 99 not in buffer

    def test_missing_in_range(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.update_from([0, 2, 4])
        assert buffer.missing_in_range(0, 5) == [1, 3]

    def test_missing_in_range_clamps_negative_start(self):
        buffer = SegmentBuffer(capacity=10)
        assert buffer.missing_in_range(-5, 2) == [0, 1]

    def test_has_range(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.update_from([3, 4, 5])
        assert buffer.has_range(3, 3)
        assert not buffer.has_range(3, 4)

    def test_count_in_range(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.update_from([0, 1, 5])
        assert buffer.count_in_range(0, 6) == 3
        assert buffer.count_in_range(2, 5) == 0

    def test_oldest_and_newest(self):
        buffer = SegmentBuffer(capacity=10)
        assert buffer.oldest_id() is None
        assert buffer.newest_id() is None
        buffer.update_from([2, 7])
        assert buffer.oldest_id() == 2
        assert buffer.newest_id() == 7

    def test_position_from_tail(self):
        buffer = SegmentBuffer(capacity=10)
        buffer.add(0)
        # window is [0, 10): tail slot is 9, so segment 0 is 9 slots away.
        assert buffer.position_from_tail(0) == 9
        assert buffer.position_from_tail(5) is None
