"""Tests for the scenario engine: schedules, specs, built-ins, phases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases.base import RoundContext
from repro.net.bandwidth import BandwidthClass, ClassMixBandwidthModel
from repro.net.churn import (
    BlackoutChurn,
    ChurnProcess,
    ConstantChurn,
    DiurnalChurn,
    FlashCrowdChurn,
    PiecewiseChurn,
    schedule_from_dict,
)
from repro.net.message import MessageLedger
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    LossyNetworkPhase,
    ScenarioSpec,
    builtin_names,
    builtin_scenario,
    load_scenarios,
)
from repro.streaming.source import MediaSource

TINY = dict(num_nodes=30, rounds=5)
TINY_OVERRIDES = dict(
    buffer_capacity=200, scheduling_window=80, playback_lag_segments=40
)


# =========================================================================
# Churn schedules
# =========================================================================
class TestChurnSchedules:
    def test_constant_matches_flat_fractions(self):
        schedule = ConstantChurn(leave_fraction=0.05, join_fraction=0.07)
        for round_index in (0, 3, 100):
            assert schedule.fractions(round_index) == (0.05, 0.07)
        assert not schedule.is_static
        assert ConstantChurn().is_static

    def test_diurnal_oscillates_around_base(self):
        schedule = DiurnalChurn(
            base_leave_fraction=0.04,
            base_join_fraction=0.04,
            amplitude=0.75,
            period_rounds=20,
        )
        joins = [schedule.fractions(r)[1] for r in range(20)]
        leaves = [schedule.fractions(r)[0] for r in range(20)]
        assert max(joins) > 0.04 > min(joins)
        # Joins peak on the rising half-cycle where leaves trough.
        assert joins.index(max(joins)) == leaves.index(min(leaves))
        assert abs(float(np.mean(joins)) - 0.04) < 1e-9

    def test_flash_crowd_windows(self):
        schedule = FlashCrowdChurn(
            base_leave_fraction=0.01,
            base_join_fraction=0.01,
            spike_round=5,
            spike_duration=3,
            spike_join_fraction=0.25,
            drain_duration=2,
            drain_leave_fraction=0.08,
        )
        assert schedule.fractions(4) == (0.01, 0.01)
        assert schedule.fractions(5) == (0.01, 0.25)
        assert schedule.fractions(7) == (0.01, 0.25)
        assert schedule.fractions(8) == (0.08, 0.01)
        assert schedule.fractions(9) == (0.08, 0.01)
        assert schedule.fractions(10) == (0.01, 0.01)

    def test_blackout_and_recovery(self):
        schedule = BlackoutChurn(
            blackout_round=4,
            failure_fraction=0.3,
            recovery_duration=2,
            recovery_join_fraction=0.1,
        )
        assert schedule.fractions(3) == (0.0, 0.0)
        assert schedule.fractions(4) == (0.3, 0.0)
        assert schedule.fractions(5) == (0.0, 0.1)
        assert schedule.fractions(6) == (0.0, 0.1)
        assert schedule.fractions(7) == (0.0, 0.0)

    def test_piecewise_steps(self):
        schedule = PiecewiseChurn(steps=((2, 0.1, 0.0), (5, 0.0, 0.2)))
        assert schedule.fractions(0) == (0.0, 0.0)
        assert schedule.fractions(2) == (0.1, 0.0)
        assert schedule.fractions(4) == (0.1, 0.0)
        assert schedule.fractions(9) == (0.0, 0.2)
        with pytest.raises(ValueError):
            PiecewiseChurn(steps=((5, 0.1, 0.0), (2, 0.0, 0.2)))

    def test_schedule_dict_round_trip(self):
        schedules = [
            ConstantChurn(leave_fraction=0.05, join_fraction=0.05),
            DiurnalChurn(base_leave_fraction=0.03, base_join_fraction=0.02),
            FlashCrowdChurn(spike_round=7),
            BlackoutChurn(failure_fraction=0.4),
            PiecewiseChurn(steps=((0, 0.01, 0.01), (10, 0.2, 0.0))),
        ]
        for schedule in schedules:
            payload = schedule.to_dict()
            assert payload["kind"] == schedule.kind
            rebuilt = schedule_from_dict(payload)
            assert rebuilt == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown churn schedule kind"):
            schedule_from_dict({"kind": "martian"})
        with pytest.raises(ValueError, match="'kind'"):
            schedule_from_dict({"leave_fraction": 0.1})

    def test_misspelled_schedule_field_raises_value_error(self):
        # A typo in a YAML spec must surface as the CLI-friendly ValueError,
        # not a raw TypeError from the dataclass constructor.
        with pytest.raises(ValueError, match="invalid parameters.*constant"):
            schedule_from_dict({"kind": "constant", "leave_fractoin": 0.05})

    def test_piecewise_accepts_json_lists(self):
        # JSON/YAML loads produce lists; the schedule must coerce and stay
        # equal to (and as hashable as) its tuple-built twin.
        from_lists = schedule_from_dict(
            {"kind": "piecewise", "steps": [[2, 0.1, 0.0], [5, 0.0, 0.2]]}
        )
        from_tuples = PiecewiseChurn(steps=((2, 0.1, 0.0), (5, 0.0, 0.2)))
        assert from_lists == from_tuples
        assert hash(from_lists) == hash(from_tuples)

    def test_invalid_schedule_parameters(self):
        with pytest.raises(ValueError):
            ConstantChurn(leave_fraction=1.0)
        with pytest.raises(ValueError):
            DiurnalChurn(amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowdChurn(spike_join_fraction=1.5)
        with pytest.raises(ValueError):
            BlackoutChurn(failure_fraction=1.0)

    def test_churn_process_uses_schedule(self, rng):
        process = ChurnProcess(
            schedule=BlackoutChurn(blackout_round=2, failure_fraction=0.5)
        )
        assert not process.is_static
        quiet = process.step(0, list(range(20)), rng)
        assert quiet.is_empty
        blackout = process.step(2, list(range(20)), rng)
        assert len(blackout.leaving) == 10

    def test_static_schedule_keeps_process_static(self, rng):
        process = ChurnProcess(schedule=ConstantChurn())
        assert process.is_static
        assert process.step(0, [1, 2, 3], rng).is_empty


# =========================================================================
# Bandwidth class mixes
# =========================================================================
class TestClassMixBandwidthModel:
    CLASSES = (
        BandwidthClass(name="ethernet", fraction=0.2, min_inbound=25.0, max_inbound=33.0),
        BandwidthClass(
            name="dsl", fraction=0.8, min_inbound=10.0, max_inbound=14.0,
            min_outbound=8.0, max_outbound=12.0,
        ),
    )

    def test_rates_within_class_ranges(self, rng):
        model = ClassMixBandwidthModel(self.CLASSES)
        model.assign(range(200), rng, source_id=0)
        for node in range(1, 200):
            name = model.class_name_of(node)
            capacity = model.of(node)
            if name == "ethernet":
                assert 25.0 <= capacity.inbound <= 33.0
                assert 25.0 <= capacity.outbound <= 33.0
            else:
                assert 10.0 <= capacity.inbound <= 14.0
                assert 8.0 <= capacity.outbound <= 12.0
        assert model.of(0).inbound == 0.0
        assert model.class_name_of(0) == "source"

    def test_census_tracks_fractions(self, rng):
        model = ClassMixBandwidthModel(self.CLASSES)
        model.assign(range(500), rng)
        census = model.class_census()
        assert census["ethernet"] + census["dsl"] == 500
        assert 0.1 < census["ethernet"] / 500 < 0.3

    def test_remove_forgets_class(self, rng):
        model = ClassMixBandwidthModel(self.CLASSES)
        model.assign([1, 2], rng)
        model.remove(1)
        with pytest.raises(KeyError):
            model.class_name_of(1)

    def test_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ClassMixBandwidthModel(
                (BandwidthClass(name="a", fraction=0.5, min_inbound=1, max_inbound=2),)
            )
        with pytest.raises(ValueError, match="at least one"):
            ClassMixBandwidthModel(())
        with pytest.raises(ValueError):
            BandwidthClass(name="bad", fraction=0.5, min_inbound=5.0, max_inbound=2.0)


# =========================================================================
# The lossy-network phase
# =========================================================================
class TestLossyNetworkPhase:
    def test_scales_budgets(self, tiny_config, rng):
        phase = LossyNetworkPhase(0.25)
        ctx = RoundContext(
            config=tiny_config,
            protocol="continustreaming",
            round_index=0,
            round_start=0.0,
            period=1.0,
            rng=rng,
            ledger=MessageLedger(),
            nodes={},
            source=MediaSource(),
            source_id=0,
        )
        ctx.inbound_budget = {1: 16.0, 2: 8.0}
        ctx.outbound_budget = {1: 4.0}
        report = phase.execute(ctx)
        assert ctx.inbound_budget == {1: 12.0, 2: 6.0}
        assert ctx.outbound_budget == {1: 3.0}
        assert report.details["loss_rate"] == 0.25

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LossyNetworkPhase(1.0)
        with pytest.raises(ValueError):
            LossyNetworkPhase(-0.1)


# =========================================================================
# ScenarioSpec
# =========================================================================
class TestScenarioSpec:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_builtin_dict_round_trip(self, name):
        spec = builtin_scenario(name)
        payload = spec.to_dict()
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.to_dict() == payload

    def test_file_round_trip_json(self, tmp_path):
        spec = builtin_scenario("flash-crowd")
        path = spec.to_file(tmp_path / "spec.json")
        assert ScenarioSpec.from_file(path) == spec

    def test_file_round_trip_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        assert yaml is not None
        spec = builtin_scenario("hetero-swarm")
        path = spec.to_file(tmp_path / "spec.yaml")
        assert ScenarioSpec.from_file(path) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "nodes": 10})

    def test_missing_name_raises_value_error(self):
        with pytest.raises(ValueError, match="invalid scenario spec"):
            ScenarioSpec.from_dict({"rounds": 5})

    def test_unknown_config_override_key_raises_value_error(self):
        spec = ScenarioSpec(name="x", config_overrides={"bogus_key": 1})
        with pytest.raises(ValueError, match="invalid config_overrides"):
            spec.to_config()

    def test_empty_bandwidth_classes_rejected(self):
        with pytest.raises(ValueError, match="at least one class"):
            ScenarioSpec(name="x", bandwidth_classes=())

    def test_static_schedule_with_flat_fractions_reports_static(self):
        from repro.core.config import SystemConfig

        config = SystemConfig(
            num_nodes=10, leave_fraction=0.05, churn_schedule=ConstantChurn()
        )
        # The schedule drives churn and overrides the flat fractions, so it
        # alone decides the environment label.
        assert not config.is_dynamic

    def test_misspelled_bandwidth_class_field_raises_value_error(self):
        with pytest.raises(ValueError, match="invalid bandwidth class"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "bandwidth_classes": [
                        {"name": "dsl", "fraction": 1.0, "min_inbound": 10,
                         "max_inbond": 14}
                    ],
                }
            )

    def test_unknown_builtin_rejected(self):
        with pytest.raises(ValueError, match="built-in scenarios"):
            builtin_scenario("nope")

    def test_load_scenarios_mixes_names_files_and_specs(self, tmp_path):
        path = builtin_scenario("static").to_file(tmp_path / "s.json")
        specs = load_scenarios(["diurnal", path, builtin_scenario("blackout")])
        assert [spec.name for spec in specs] == ["diurnal", "static", "blackout"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", num_nodes=1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", loss_rate=1.0)

    def test_reserved_config_overrides_rejected(self):
        # The spec's own fields own these keys; shadowing them in
        # config_overrides would be silently overwritten by to_config.
        with pytest.raises(ValueError, match="num_nodes"):
            ScenarioSpec(name="x", config_overrides={"num_nodes": 500})
        with pytest.raises(ValueError, match="leave_fraction"):
            ScenarioSpec(name="x", config_overrides={"leave_fraction": 0.05})

    def test_bandwidth_overrides_rejected_with_class_mix(self):
        # A class mix replaces the uniform draw, so uniform-bandwidth
        # overrides would be silently ignored — reject them instead.
        from repro.scenarios.library import HETERO_SWARM_CLASSES

        with pytest.raises(ValueError, match="mean_inbound"):
            ScenarioSpec(
                name="x",
                bandwidth_classes=HETERO_SWARM_CLASSES,
                config_overrides={"mean_inbound": 30.0},
            )
        # Without a class mix the same override is legitimate.
        spec = ScenarioSpec(name="x", config_overrides={"mean_inbound": 20.0,
                                                        "max_inbound": 40.0})
        assert spec.to_config().mean_inbound == 20.0

    def test_blackout_fires_when_rounds_cover_it(self):
        result = builtin_scenario("blackout").scaled(num_nodes=30, rounds=12).run()
        by_round = {rep.round_index: rep for rep in result.rounds}
        assert by_round[10].nodes_left >= 9  # 30% of 30

    def test_constant_churn_maps_to_config_fractions(self):
        spec = builtin_scenario("paper-dynamic")
        config = spec.to_config()
        assert config.leave_fraction == 0.05
        assert config.join_fraction == 0.05

    def test_scheduled_churn_attached_to_process(self):
        spec = builtin_scenario("blackout").scaled(**TINY)
        system = spec.build_system()
        assert system.manager.churn.schedule is not None
        assert not system.manager.churn.is_static
        # A schedule-driven run must report as dynamic even though the flat
        # config fractions stay zero.
        assert system.config.is_dynamic
        assert spec.scaled(system="coolstreaming").to_config().is_dynamic
        assert not builtin_scenario("static").to_config().is_dynamic

    def test_loss_phase_inserted_before_scheduler(self):
        spec = builtin_scenario("hetero-swarm")
        names = [phase.name for phase in spec.build_pipeline()]
        assert "lossy-network" in names
        assert names.index("lossy-network") < names.index("data-scheduling")
        assert "lossy-network" not in [
            phase.name for phase in builtin_scenario("static").build_pipeline()
        ]

    def test_bandwidth_classes_swap_the_model(self):
        spec = builtin_scenario("hetero-swarm").scaled(**TINY)
        system = spec.build_system()
        assert isinstance(system.manager.bandwidth, ClassMixBandwidthModel)

    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_builtin_runs_five_rounds(self, name):
        spec = builtin_scenario(name).scaled(**TINY)
        spec = ScenarioSpec.from_dict({**spec.to_dict(), "config_overrides": TINY_OVERRIDES})
        result = spec.run()
        assert len(result.rounds) == 5
        assert all(0.0 <= report.continuity <= 1.0 for report in result.rounds)

    def test_schedule_driven_churn_fires_in_simulation(self):
        spec = ScenarioSpec(
            name="early-blackout",
            num_nodes=30,
            rounds=5,
            seed=3,
            churn=BlackoutChurn(
                blackout_round=2,
                failure_fraction=0.3,
                recovery_duration=1,
                recovery_join_fraction=0.2,
            ),
            config_overrides=TINY_OVERRIDES,
        )
        result = spec.run()
        by_round = {report.round_index: report for report in result.rounds}
        assert by_round[2].nodes_left == 9  # 30% of 30
        assert by_round[3].nodes_joined > 0
        assert by_round[1].nodes_left == 0

    def test_builtins_cover_names(self):
        assert builtin_names() == (
            "static", "paper-dynamic", "flash-crowd", "diurnal", "blackout",
            "hetero-swarm",
        )
