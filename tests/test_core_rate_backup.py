"""Tests for the rate controller and the VoD backup store."""

from __future__ import annotations

import pytest

from repro.core.backup import VodBackupStore
from repro.core.rate_controller import RateController
from repro.dht.hashing import backup_keys
from repro.dht.ring import IdRing
from repro.streaming.segment import Segment


class TestRateController:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(local_inbound=-1)
        with pytest.raises(ValueError):
            RateController(local_inbound=10, smoothing=0.0)
        with pytest.raises(ValueError):
            RateController(local_inbound=10, period=0.0)

    def test_prior_capped_by_local_inbound(self):
        controller = RateController(local_inbound=10)
        rate = controller.register_neighbor(1, neighbor_outbound=100, fan_out=1)
        assert rate == 10

    def test_prior_divides_by_fan_out(self):
        controller = RateController(local_inbound=100)
        rate = controller.register_neighbor(1, neighbor_outbound=20, fan_out=4)
        assert rate == 5

    def test_register_is_idempotent_for_estimates(self):
        controller = RateController(local_inbound=10)
        controller.register_neighbor(1, 20, 1)
        controller.observe_round({1: 2})
        before = controller.rate_of(1)
        controller.register_neighbor(1, 20, 1)
        assert controller.rate_of(1) == before

    def test_observation_moves_estimate_but_not_below_prior(self):
        controller = RateController(local_inbound=10, smoothing=0.5)
        controller.register_neighbor(1, neighbor_outbound=8, fan_out=1)
        controller.observe_round({1: 0})
        # The estimate never drops below the capacity prior.
        assert controller.rate_of(1) == pytest.approx(8.0)

    def test_observation_can_exceed_prior(self):
        controller = RateController(local_inbound=10, smoothing=0.5)
        controller.register_neighbor(1, neighbor_outbound=4, fan_out=1)
        controller.observe_round({1: 12})
        assert controller.rate_of(1) > 4.0

    def test_unrequested_neighbors_keep_estimates(self):
        controller = RateController(local_inbound=10)
        controller.register_neighbor(1, 8, 1)
        controller.register_neighbor(2, 8, 1)
        controller.observe_round({1: 3})
        assert controller.rate_of(2) == pytest.approx(8.0)

    def test_observe_unknown_neighbor_ignored(self):
        controller = RateController(local_inbound=10)
        controller.observe_round({42: 5})
        assert controller.rate_of(42) == controller.min_rate

    def test_forget_neighbor(self):
        controller = RateController(local_inbound=10)
        controller.register_neighbor(1, 8, 1)
        controller.forget_neighbor(1)
        assert controller.known_neighbors() == []
        assert controller.rate_of(1) == controller.min_rate

    def test_best_rate_and_total(self):
        controller = RateController(local_inbound=12)
        controller.register_neighbor(1, 4, 1)
        controller.register_neighbor(2, 9, 1)
        assert controller.best_rate() == pytest.approx(9)
        assert controller.best_rate([1]) == pytest.approx(4)
        assert controller.total_estimated_inbound() == pytest.approx(12)  # capped

    def test_best_rate_empty(self):
        controller = RateController(local_inbound=12)
        assert controller.best_rate() == controller.min_rate


class TestVodBackupStore:
    @pytest.fixture
    def store(self) -> VodBackupStore:
        return VodBackupStore(node_id=100, ring=IdRing(8192), replicas=4)

    def test_responsible_matches_equation_5(self, store):
        # Build a successor such that the first backup key of segment 7 falls
        # inside [node, successor).
        key = backup_keys(7, 4, 8192)[0]
        store_at_key = VodBackupStore(node_id=key, ring=IdRing(8192), replicas=4)
        assert store_at_key.is_responsible(7, successor_id=(key + 1) % 8192)

    def test_not_responsible_for_far_keys(self, store):
        keys = set(backup_keys(7, 4, 8192))
        # Choose a successor immediately after the node so the owned interval
        # is a single id that is not one of the keys.
        if 100 not in keys:
            assert not store.is_responsible(7, successor_id=101)

    def test_no_successor_means_responsible(self, store):
        assert store.is_responsible(7, successor_id=None)
        assert store.is_responsible(7, successor_id=100)

    def test_maybe_store_only_when_responsible(self, store):
        segment = Segment(segment_id=7)
        keys = set(backup_keys(7, 4, 8192))
        if 100 not in keys:
            assert not store.maybe_store(segment, successor_id=101)
            assert len(store) == 0
        assert store.maybe_store(segment, successor_id=None)
        assert 7 in store

    def test_maybe_store_idempotent(self, store):
        segment = Segment(segment_id=3)
        store.force_store(segment)
        assert store.maybe_store(segment, successor_id=101)
        assert len(store) == 1

    def test_handover_and_absorb(self, store):
        for sid in (1, 2, 3):
            store.force_store(Segment(segment_id=sid))
        other = VodBackupStore(node_id=50, ring=IdRing(8192), replicas=4)
        absorbed = other.absorb_handover(store.handover_contents())
        assert absorbed == 3
        assert other.ids() == [1, 2, 3]

    def test_prune_expired(self, store):
        for sid in range(10):
            store.force_store(Segment(segment_id=sid))
        assert store.prune_expired(5) == 5
        assert store.ids() == [5, 6, 7, 8, 9]

    def test_get_and_total_bits(self, store):
        store.force_store(Segment(segment_id=4, size_bits=100))
        assert store.get(4).size_bits == 100
        assert store.get(5) is None
        assert store.total_bits() == 100
