"""Tests for the priority computations (equations (1)-(3)) and Algorithm 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import (
    DataScheduler,
    MAX_URGENCY,
    SegmentCandidate,
    SupplierOffer,
    bucket_priority,
    compute_priority,
    compute_rarity,
    compute_urgency,
    prioritize_candidates,
    rarest_first_priority,
    schedule_requests,
)


def _candidate(segment_id, offers):
    return SegmentCandidate(
        segment_id=segment_id,
        offers=tuple(
            SupplierOffer(supplier_id=s, position_from_tail=p, rate=r)
            for s, p, r in offers
        ),
    )


class TestUrgency:
    def test_matches_equation_1(self):
        # t = (id - id_play)/p - 1/R = (20-0)/10 - 1/5 = 1.8 -> urgency = 1/1.8
        assert compute_urgency(20, 0, 10.0, 5.0) == pytest.approx(1 / 1.8)

    def test_no_slack_gives_max_urgency(self):
        # Segment due right now: slack <= 0.
        assert compute_urgency(0, 0, 10.0, 5.0) == MAX_URGENCY
        assert compute_urgency(1, 0, 10.0, 2.0) == MAX_URGENCY

    def test_zero_rate_gives_max_urgency(self):
        assert compute_urgency(50, 0, 10.0, 0.0) == MAX_URGENCY

    def test_closer_deadline_is_more_urgent(self):
        near = compute_urgency(20, 0, 10.0, 5.0)
        far = compute_urgency(100, 0, 10.0, 5.0)
        assert near > far

    def test_requires_positive_playback_rate(self):
        with pytest.raises(ValueError):
            compute_urgency(10, 0, 0.0, 5.0)


class TestRarity:
    def test_matches_equation_2(self):
        # rarity = (300/600) * (150/600) = 0.125
        assert compute_rarity([300, 150], 600) == pytest.approx(0.125)

    def test_no_suppliers_is_maximally_rare(self):
        assert compute_rarity([], 600) == 1.0

    def test_positions_clamped_to_buffer(self):
        assert compute_rarity([900], 600) == 1.0
        assert compute_rarity([-5], 600) == 0.0

    def test_more_suppliers_reduce_rarity(self):
        assert compute_rarity([300, 300], 600) < compute_rarity([300], 600)

    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            compute_rarity([1], 0)


class TestPriority:
    def test_priority_is_max_of_urgency_and_rarity(self):
        assert compute_priority(0.2, 0.7) == 0.7
        assert compute_priority(0.9, 0.1) == 0.9

    def test_rarest_first(self):
        assert rarest_first_priority(1) == 1.0
        assert rarest_first_priority(4) == 0.25
        assert rarest_first_priority(0) == MAX_URGENCY

    def test_prioritize_candidates_breakdown(self):
        candidates = [
            _candidate(5, [(1, 500, 5.0)]),       # close to play point, rare
            _candidate(120, [(1, 10, 5.0), (2, 20, 5.0)]),  # far, common
        ]
        breakdown = prioritize_candidates(candidates, play_id=0, playback_rate=10.0,
                                          buffer_capacity=600)
        by_id = {b.segment_id: b for b in breakdown}
        assert by_id[5].priority > by_id[120].priority
        assert by_id[5].urgency >= by_id[5].rarity

    def test_bucket_priority_bands(self):
        assert bucket_priority(MAX_URGENCY) == MAX_URGENCY
        assert bucket_priority(0.0) == 0.0
        assert bucket_priority(1.0, base=8) == 1.0
        assert bucket_priority(0.9, base=8) == pytest.approx(1 / 8)
        assert bucket_priority(0.13, base=8) == pytest.approx(1 / 8)
        assert bucket_priority(0.12, base=8) == pytest.approx(1 / 64)
        with pytest.raises(ValueError):
            bucket_priority(0.5, base=1.0)


class TestAlgorithm1:
    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_requests([], {}, inbound_rate=10, period=0)
        with pytest.raises(ValueError):
            schedule_requests([], {}, inbound_rate=-1, period=1)

    def test_schedules_in_priority_order(self):
        candidates = [
            _candidate(1, [(10, 100, 5.0)]),
            _candidate(2, [(10, 100, 5.0)]),
        ]
        priorities = {1: 0.1, 2: 0.9}
        requests = schedule_requests(candidates, priorities, inbound_rate=10, period=1.0)
        assert [r.segment_id for r in requests] == [2, 1]

    def test_inbound_cap_limits_request_count(self):
        candidates = [_candidate(i, [(10, 100, 10.0)]) for i in range(20)]
        priorities = {i: 1.0 for i in range(20)}
        requests = schedule_requests(candidates, priorities, inbound_rate=5, period=1.0)
        assert len(requests) == 5

    def test_zero_inbound_schedules_nothing(self):
        candidates = [_candidate(1, [(10, 100, 10.0)])]
        assert schedule_requests(candidates, {1: 1.0}, inbound_rate=0, period=1.0) == []

    def test_queueing_spreads_load_across_suppliers(self):
        """With two equally fast suppliers, consecutive segments alternate."""
        offers = [(1, 100, 2.0), (2, 100, 2.0)]
        candidates = [_candidate(i, offers) for i in range(4)]
        priorities = {i: 1.0 - i * 0.01 for i in range(4)}
        requests = schedule_requests(candidates, priorities, inbound_rate=10, period=2.0)
        suppliers = [r.supplier_id for r in requests]
        assert suppliers.count(1) == 2
        assert suppliers.count(2) == 2

    def test_period_constraint_limits_per_supplier(self):
        """A single supplier only gets as many transfers as fit in the period
        under Algorithm 1's strict ``t_trans + tau(j) < tau`` condition."""
        candidates = [_candidate(i, [(1, 100, 2.0)]) for i in range(10)]
        priorities = {i: 1.0 for i in range(10)}
        # Transfers take 0.5 s each: the first completes at 0.5 (< 1.0), the
        # second would complete exactly at 1.0, which the strict inequality
        # rejects, so only one fits in a 1-second period...
        requests = schedule_requests(candidates, priorities, inbound_rate=20, period=1.0)
        assert len(requests) == 1
        # ...while a slightly longer period admits the second transfer.
        requests = schedule_requests(candidates, priorities, inbound_rate=20, period=1.1)
        assert len(requests) == 2

    def test_unschedulable_candidate_skipped(self):
        candidates = [
            _candidate(1, [(1, 100, 0.5)]),  # transfer takes 2 s > period
            _candidate(2, [(2, 100, 5.0)]),
        ]
        priorities = {1: 0.9, 2: 0.5}
        requests = schedule_requests(candidates, priorities, inbound_rate=10, period=1.0)
        assert [r.segment_id for r in requests] == [2]

    def test_zero_rate_offers_ignored(self):
        candidates = [_candidate(1, [(1, 100, 0.0)])]
        assert schedule_requests(candidates, {1: 1.0}, inbound_rate=10, period=1.0) == []

    def test_picks_fastest_supplier(self):
        candidates = [_candidate(1, [(1, 100, 1.5), (2, 100, 8.0)])]
        requests = schedule_requests(candidates, {1: 1.0}, inbound_rate=10, period=1.0)
        assert requests[0].supplier_id == 2
        assert requests[0].expected_time == pytest.approx(1 / 8.0)

    def test_deterministic_tiebreak_by_segment_id(self):
        candidates = [_candidate(i, [(1, 100, 10.0)]) for i in (5, 3, 4)]
        priorities = {3: 1.0, 4: 1.0, 5: 1.0}
        requests = schedule_requests(candidates, priorities, inbound_rate=3, period=1.0)
        assert [r.segment_id for r in requests] == [3, 4, 5]

    def test_random_tiebreak_changes_order_but_not_set(self):
        candidates = [_candidate(i, [(1, 100, 20.0)]) for i in range(10)]
        priorities = {i: 1.0 for i in range(10)}
        orders = set()
        for seed in range(5):
            requests = schedule_requests(
                candidates, priorities, inbound_rate=10, period=1.0,
                tiebreak_rng=np.random.default_rng(seed),
            )
            assert {r.segment_id for r in requests} == set(range(10))
            orders.add(tuple(r.segment_id for r in requests))
        assert len(orders) > 1


class TestDataScheduler:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DataScheduler(playback_rate=10, buffer_capacity=600, period=1.0,
                          policy="bogus")

    def test_rarest_first_policy_uses_supplier_count(self):
        scheduler = DataScheduler(playback_rate=10, buffer_capacity=600, period=1.0,
                                  policy="rarest_first")
        candidates = [
            _candidate(1, [(1, 100, 5.0)]),
            _candidate(2, [(1, 100, 5.0), (2, 100, 5.0)]),
        ]
        priorities = scheduler.priorities_for(candidates, play_id=0)
        assert priorities[1] > priorities[2]
        assert scheduler.last_breakdown == []

    def test_continustreaming_policy_records_breakdown(self):
        scheduler = DataScheduler(playback_rate=10, buffer_capacity=600, period=1.0)
        candidates = [_candidate(50, [(1, 100, 5.0)])]
        scheduler.priorities_for(candidates, play_id=0)
        assert len(scheduler.last_breakdown) == 1

    def test_quantization_can_be_disabled(self):
        exact = DataScheduler(playback_rate=10, buffer_capacity=600, period=1.0,
                              quantize_priorities=False)
        candidates = [_candidate(37, [(1, 100, 5.0)])]
        priorities = exact.priorities_for(candidates, play_id=0)
        breakdown = exact.last_breakdown[0]
        assert priorities[37] == pytest.approx(breakdown.priority)

    def test_schedule_end_to_end(self):
        scheduler = DataScheduler(playback_rate=10, buffer_capacity=600, period=1.0)
        candidates = [
            _candidate(5, [(1, 500, 5.0)]),
            _candidate(60, [(1, 400, 5.0), (2, 300, 5.0)]),
        ]
        requests = scheduler.schedule(candidates, play_id=0, inbound_rate=10)
        assert {r.segment_id for r in requests} <= {5, 60}
        assert requests[0].segment_id == 5  # imminent segment first
