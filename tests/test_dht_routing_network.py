"""Tests for greedy routing and the standalone DHT network (Figure 3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.theory import dht_hop_upper_bound
from repro.dht.network import DhtNetwork
from repro.dht.peer_table import PeerTable
from repro.dht.ring import IdRing
from repro.dht.routing import GreedyRouter


class TestGreedyRouterOnFullRing:
    """With a complete finger table per node, routing must behave like Chord."""

    def _full_network(self, size: int) -> DhtNetwork:
        network = DhtNetwork(id_space=size, rng=np.random.default_rng(0))
        for node_id in range(size):
            network.add_node(node_id)
        network.rebuild_fingers()
        return network

    def test_route_to_self_is_zero_hops(self):
        network = self._full_network(64)
        outcome = network.lookup(5, 5)
        assert outcome.hops == 0
        assert outcome.success
        assert outcome.final_node == 5

    def test_route_reaches_responsible_node(self):
        network = self._full_network(64)
        for origin, key in [(0, 33), (10, 9), (63, 0)]:
            outcome = network.lookup(origin, key)
            assert outcome.success
            assert outcome.final_node == network.responsible_node(key)

    def test_hops_respect_appendix_bound(self):
        network = self._full_network(128)
        bound = dht_hop_upper_bound(128)
        rng = np.random.default_rng(1)
        for _ in range(200):
            origin = int(rng.integers(128))
            key = int(rng.integers(128))
            outcome = network.lookup(origin, key)
            assert outcome.success
            assert outcome.hops <= bound

    def test_distance_strictly_decreases_along_path(self):
        network = self._full_network(128)
        ring = network.ring
        outcome = network.lookup(3, 97)
        distances = [ring.clockwise_distance(hop, 97) for hop in outcome.path]
        assert all(b < a for a, b in zip(distances, distances[1:]))


class TestGreedyRouterEdgeCases:
    def test_dead_end_reports_failure_against_oracle(self, ring):
        # A node with no peers cannot make progress.
        tables = {5: PeerTable(owner_id=5, ring=ring)}
        router = GreedyRouter(ring, lambda nid: tables[nid].routing_candidates())
        outcome = router.route(5, 400, responsible=77)
        assert not outcome.success
        assert outcome.final_node == 5

    def test_dead_end_without_oracle_counts_as_termination(self, ring):
        tables = {5: PeerTable(owner_id=5, ring=ring)}
        router = GreedyRouter(ring, lambda nid: tables[nid].routing_candidates())
        assert router.route(5, 400).success

    def test_hop_budget_exhaustion_fails(self):
        ring = IdRing(64)
        # Peers only ever advance by one, so a faraway key needs many hops.
        router = GreedyRouter(
            ring, lambda nid: [ring.normalize(nid + 1)], max_hops=3
        )
        outcome = router.route(0, 40, responsible=40)
        assert not outcome.success
        assert outcome.hops <= 3

    def test_hop_upper_bound_helper(self):
        assert GreedyRouter.hop_upper_bound(8192) == pytest.approx(
            dht_hop_upper_bound(8192)
        )
        assert GreedyRouter.hop_upper_bound(1) == 0.0


class TestDhtNetwork:
    def test_populate_assigns_distinct_ids(self):
        network = DhtNetwork(id_space=2048, rng=np.random.default_rng(3))
        ids = network.populate(300)
        assert len(ids) == 300
        assert len(set(ids)) == 300
        assert len(network) == 300

    def test_populate_rejects_bad_sizes(self):
        network = DhtNetwork(id_space=16)
        with pytest.raises(ValueError):
            network.populate(0)
        with pytest.raises(ValueError):
            network.populate(17)

    def test_add_duplicate_node_rejected(self):
        network = DhtNetwork(id_space=64)
        network.add_node(5)
        with pytest.raises(ValueError):
            network.add_node(5)

    def test_remove_node(self):
        network = DhtNetwork(id_space=64)
        network.add_node(5)
        network.remove_node(5)
        assert 5 not in network
        network.remove_node(5)  # idempotent

    def test_fingers_lie_in_level_intervals(self):
        network = DhtNetwork(id_space=1024, rng=np.random.default_rng(4))
        network.populate(200)
        ring = network.ring
        for node_id in network.node_ids()[:50]:
            table = network.table_of(node_id)
            for level, entry in table.dht_peers.items():
                start, end = ring.level_interval(node_id, level)
                assert ring.in_clockwise_interval(entry.peer_id, start, end)

    def test_responsible_node_is_counter_clockwise_closest(self):
        network = DhtNetwork(id_space=256, rng=np.random.default_rng(5))
        network.populate(20)
        ids = network.node_ids()
        for key in range(0, 256, 17):
            owner = network.responsible_node(key)
            # No other node may sit strictly between the owner and the key.
            owner_dist = network.ring.clockwise_distance(owner, key)
            for other in ids:
                assert network.ring.clockwise_distance(other, key) >= owner_dist

    def test_lookup_requires_population(self):
        network = DhtNetwork(id_space=64)
        with pytest.raises(RuntimeError):
            network.run_random_lookups(5)

    def test_random_lookups_statistics(self):
        network = DhtNetwork(id_space=8192, rng=np.random.default_rng(6))
        network.populate(500)
        result = network.run_random_lookups(400)
        assert result.lookups == 400
        assert result.success_rate > 0.9
        assert 1.0 <= result.average_hops <= dht_hop_upper_bound(8192)
        assert result.max_hops >= result.average_hops

    def test_sparser_ring_uses_fewer_hops_than_denser(self):
        rng = np.random.default_rng(7)
        small = DhtNetwork(id_space=8192, rng=rng)
        small.populate(100)
        large = DhtNetwork(id_space=8192, rng=rng)
        large.populate(2000)
        hops_small = small.run_random_lookups(300, rng=rng).average_hops
        hops_large = large.run_random_lookups(300, rng=rng).average_hops
        assert hops_small < hops_large
