"""Tests for the Rendezvous Point and the overhearing maintenance service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.peer_table import NeighborEntry, OverheardEntry, PeerTable
from repro.dht.ring import IdRing
from repro.membership.overhearing import OverhearingService
from repro.membership.rendezvous import RendezvousPoint


class TestRendezvousPoint:
    def test_admit_assigns_unique_ids(self, ring):
        rp = RendezvousPoint(ring=ring)
        ids = {rp.admit().node_id for _ in range(200)}
        assert len(ids) == 200
        assert all(0 <= node_id < ring.size for node_id in ids)

    def test_requested_id_honoured_when_free(self, ring):
        rp = RendezvousPoint(ring=ring)
        assert rp.admit(requested_id=42).node_id == 42
        # A second request for the same id gets a different one.
        assert rp.admit(requested_id=42).node_id != 42

    def test_contacts_are_close_existing_nodes(self, ring):
        rp = RendezvousPoint(ring=ring, contact_list_size=3)
        for node_id in (10, 20, 30, 500, 900):
            rp.register_existing(node_id)
        ticket = rp.admit(requested_id=25)
        assert len(ticket.contacts) == 3
        assert set(ticket.contacts) == {10, 20, 30}

    def test_first_node_gets_no_contacts(self, ring):
        rp = RendezvousPoint(ring=ring)
        assert rp.admit().contacts == ()

    def test_failure_reports_remove_nodes(self, ring):
        rp = RendezvousPoint(ring=ring)
        rp.register_existing(7)
        rp.report_failure(7)
        assert 7 not in rp.known_nodes
        rp.report_failure(7)  # idempotent

    def test_departure(self, ring):
        rp = RendezvousPoint(ring=ring)
        ticket = rp.admit()
        rp.handle_departure(ticket.node_id)
        assert ticket.node_id not in rp.known_nodes

    def test_id_space_exhaustion(self):
        rp = RendezvousPoint(ring=IdRing(4))
        for _ in range(4):
            rp.admit()
        with pytest.raises(RuntimeError):
            rp.admit()

    def test_seeded_rng_reproducible(self, ring):
        a = RendezvousPoint(ring=ring)
        a.seed_rng(np.random.default_rng(5))
        b = RendezvousPoint(ring=ring)
        b.seed_rng(np.random.default_rng(5))
        assert [a.admit().node_id for _ in range(10)] == [
            b.admit().node_id for _ in range(10)
        ]


class TestOverhearingService:
    @pytest.fixture
    def service(self):
        alive = {1, 2, 3, 4, 5, 10, 20, 30}
        return (
            OverhearingService(
                latency_of=lambda a, b: float(abs(a - b)),
                is_alive=lambda nid: nid in alive,
            ),
            alive,
        )

    def test_overhear_path_records_alive_nodes(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring)
        recorded = svc.overhear_path(table, [1, 2, 99, 3], now=5.0)
        # Owner (1) and dead node (99) are skipped.
        assert recorded == 2
        assert set(table.overheard_ids()) == {2, 3}

    def test_refresh_purges_dead_entries(self, service, ring):
        svc, alive = service
        table = PeerTable(owner_id=1, ring=ring)
        table.add_neighbor(NeighborEntry(peer_id=99, latency_ms=1))
        table.add_neighbor(NeighborEntry(peer_id=2, latency_ms=1))
        table.set_dht_peer(3, 1)
        table.dht_peers[5] = table.dht_peers.pop(list(table.dht_peers)[0])
        table.record_overheard(OverheardEntry(peer_id=98, latency_ms=1))
        svc.refresh(table)
        assert table.neighbor_ids() == [2]
        assert 98 not in table.overheard_ids()
        assert all(svc.is_alive(e.peer_id) for e in table.dht_peers.values())

    def test_refresh_promotes_overheard_to_fingers(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring)
        table.record_overheard(OverheardEntry(peer_id=2, latency_ms=1))
        table.record_overheard(OverheardEntry(peer_id=5, latency_ms=1))
        updated = svc.refresh(table)
        assert updated >= 2
        assert 2 in table.dht_peer_ids()
        assert 5 in table.dht_peer_ids()

    def test_replace_failed_neighbor_uses_lowest_latency(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring, max_neighbors=2)
        table.add_neighbor(NeighborEntry(peer_id=99, latency_ms=1))
        table.record_overheard(OverheardEntry(peer_id=30, latency_ms=29))
        table.record_overheard(OverheardEntry(peer_id=4, latency_ms=3))
        replacement = svc.replace_failed_neighbor(table, failed_id=99)
        assert replacement == 4
        assert table.has_neighbor(4)
        assert not table.has_neighbor(99)

    def test_replace_failed_neighbor_without_candidates(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring)
        table.add_neighbor(NeighborEntry(peer_id=99, latency_ms=1))
        assert svc.replace_failed_neighbor(table, failed_id=99) is None
        assert not table.has_neighbor(99)

    def test_fill_neighbor_slots(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring, max_neighbors=3)
        added = svc.fill_neighbor_slots(table, [1, 99, 2, 3, 4])
        # Owner and dead node skipped; capacity 3.
        assert added == 3
        assert table.neighbor_ids() == [2, 3, 4]

    def test_fill_neighbor_slots_skips_existing(self, service, ring):
        svc, _ = service
        table = PeerTable(owner_id=1, ring=ring, max_neighbors=3)
        table.add_neighbor(NeighborEntry(peer_id=2, latency_ms=1))
        added = svc.fill_neighbor_slots(table, [2, 3])
        assert added == 1
        assert table.neighbor_ids() == [2, 3]
