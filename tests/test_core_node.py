"""Tests for the streaming node state machines (base, baseline, ContinuStreaming)."""

from __future__ import annotations

import pytest

from repro.core.baseline import CoolStreamingNode
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.dht.peer_table import NeighborEntry
from repro.dht.ring import IdRing
from repro.streaming.buffermap import BufferMap
from repro.streaming.segment import Segment


RING = IdRing(4096)


def make_node(node_class=StreamingNode, node_id=100, **overrides):
    params = dict(
        buffer_capacity=200,
        playback_rate=10.0,
        period=1.0,
        inbound_rate=15.0,
        outbound_rate=15.0,
        max_neighbors=5,
        playback_lag=50,
    )
    params.update(overrides)
    if node_class is ContinuStreamingNode:
        params.setdefault("backup_replicas", 4)
        params.setdefault("prefetch_limit", 5)
        params.setdefault("hop_latency", 0.05)
        params.setdefault("fetch_time", 0.4)
    return node_class(node_id, RING, **params)


def neighbor_map(head_id, present, capacity=200):
    return BufferMap(head_id=head_id, capacity=capacity, present=frozenset(present))


class TestPolicies:
    def test_base_and_continu_use_paper_policy(self):
        assert make_node().scheduler.policy == "continustreaming"
        assert make_node(ContinuStreamingNode).scheduler.policy == "continustreaming"

    def test_baseline_uses_rarest_first(self):
        node = make_node(CoolStreamingNode)
        assert node.scheduler.policy == "rarest_first"
        assert node.SUPPORTS_PREFETCH is False

    def test_continu_supports_prefetch(self):
        assert make_node(ContinuStreamingNode).SUPPORTS_PREFETCH is True


class TestReceiveAndBookkeeping:
    def test_receive_counts_by_path(self):
        node = make_node()
        assert node.receive_segment(5)
        assert node.receive_segment(6, prefetched=True)
        assert node.stats.segments_received_scheduled == 1
        assert node.stats.segments_received_prefetch == 1
        assert 6 in node.prefetch_tagged
        assert 5 in node.scheduled_deliveries

    def test_begin_round_resets_per_round_state(self):
        node = make_node()
        node.pending_requests = {1}
        node.scheduled_deliveries = {2}
        node.begin_round()
        assert node.pending_requests == set()
        assert node.scheduled_deliveries == set()
        assert node.stats.rounds_participated == 1

    def test_buffer_map_reflects_buffer(self):
        node = make_node()
        node.receive_segment(3)
        assert 3 in node.buffer_map()
        assert node.has_segment(3)


class TestPlaybackLifecycle:
    def test_source_never_starts_playback(self):
        node = make_node(is_source=True)
        node.buffer.update_from(range(50))
        assert not node.maybe_start_playback(10, newest_available_id=100)

    def test_needs_enough_buffered_segments(self):
        node = make_node()
        node.buffer.update_from(range(5))
        assert not node.maybe_start_playback(10, newest_available_id=100)
        node.buffer.update_from(range(5, 12))
        assert node.maybe_start_playback(10, newest_available_id=100)

    def test_starts_at_oldest_buffered(self):
        node = make_node()
        node.buffer.update_from(range(40, 55))
        node.maybe_start_playback(10, newest_available_id=100)
        assert node.playback.play_id == 40

    def test_does_not_start_before_startup_delay_worth_of_stream(self):
        node = make_node()
        node.buffer.update_from(range(0, 15))
        assert not node.maybe_start_playback(30, newest_available_id=20)

    def test_follow_id_override_capped_near_live_edge(self):
        node = make_node()
        node.buffer.update_from(range(0, 20))
        node.maybe_start_playback(10, follow_id=95, newest_available_id=100)
        assert node.playback.play_id == 90  # newest - startup

    def test_play_round_consumes_and_reports(self):
        node = make_node()
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        assert node.can_play_round()
        assert node.play_round(newest_available_id=100)
        assert node.playback.play_id == 10

    def test_play_round_stalls_on_missing_data(self):
        node = make_node()
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        node.buffer.discard(5)
        assert not node.play_round(newest_available_id=100)
        assert node.playback.play_id == 0

    def test_catchup_skip_when_too_far_behind(self):
        node = make_node(buffer_capacity=100, playback_lag=50)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=60)
        # The live edge races ahead far beyond the buffer capacity.
        node.play_round(newest_available_id=500)
        assert node.playback.play_id >= 500 - 50
        assert node.playback.catchup_skips == 1


class TestInterestWindowAndCandidates:
    def test_window_for_started_node_begins_at_play_id(self):
        node = make_node()
        node.buffer.update_from(range(0, 20))
        node.maybe_start_playback(10, newest_available_id=100)
        lo, hi = node.interest_window(newest_available_id=100, window=50)
        assert lo == node.playback.play_id
        assert hi == min(100, lo + 49)

    def test_window_for_new_node_anchors_behind_live_edge(self):
        node = make_node(playback_lag=50)
        lo, hi = node.interest_window(newest_available_id=200, window=80)
        assert lo == 150
        assert hi == 200

    def test_window_clamped_to_live_edge(self):
        node = make_node(playback_lag=50)
        lo, hi = node.interest_window(newest_available_id=30, window=80)
        assert lo == 0
        assert hi == 30

    def test_candidates_exclude_held_segments(self):
        node = make_node(playback_lag=50)
        node.buffer.update_from([150, 151])
        maps = {7: neighbor_map(0, range(140, 160))}
        candidates = node.build_candidates(maps, newest_available_id=200, window=80)
        ids = {candidate.segment_id for candidate in candidates}
        assert 150 not in ids and 151 not in ids
        assert 152 in ids

    def test_candidates_collect_all_offers(self):
        node = make_node(playback_lag=50)
        maps = {
            7: neighbor_map(0, {155}),
            8: neighbor_map(0, {155, 156}),
        }
        candidates = node.build_candidates(maps, newest_available_id=200, window=80)
        by_id = {candidate.segment_id: candidate for candidate in candidates}
        assert sorted(by_id[155].supplier_ids()) == [7, 8]
        assert by_id[156].supplier_ids() == [8]

    def test_plan_requests_tracks_pending(self):
        node = make_node(playback_lag=50)
        node.rate_controller.register_neighbor(7, 15.0, 1)
        maps = {7: neighbor_map(0, range(150, 170))}
        requests = node.plan_requests(maps, newest_available_id=200, window=80)
        assert requests
        assert node.pending_requests == {request.segment_id for request in requests}
        assert node.stats.segments_scheduled == len(requests)

    def test_observe_deliveries_updates_peer_table_supply(self):
        node = make_node()
        node.peer_table.add_neighbor(NeighborEntry(peer_id=7, latency_ms=5))
        node.rate_controller.register_neighbor(7, 15.0, 1)
        node.observe_deliveries({7: 4})
        assert node.peer_table.neighbors[7].recent_supply_rate == pytest.approx(4.0)


class TestContinuSpecifics:
    def test_predict_missed_uses_play_position(self):
        node = make_node(ContinuStreamingNode)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        node.buffer.discard(3)
        prediction = node.predict_missed(newest_available_id=100)
        assert 3 in prediction.missed_segment_ids

    def test_predict_missed_can_exclude_scheduled(self):
        node = make_node(ContinuStreamingNode)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        node.buffer.discard(3)
        node.pending_requests = {3}
        included = node.predict_missed(100, exclude_scheduled=False)
        excluded = node.predict_missed(100, exclude_scheduled=True)
        assert 3 in included.missed_segment_ids
        assert 3 not in excluded.missed_segment_ids

    def test_consider_backup_stores_only_responsible_segments(self):
        node = make_node(ContinuStreamingNode, node_id=10)
        node.peer_table.set_dht_peer(11, 1.0)  # successor = 11, owns only id 10
        stored = 0
        for segment_id in range(200):
            if node.consider_backup(Segment(segment_id=segment_id)):
                stored += 1
        assert stored == len(node.backup)
        assert stored < 200  # responsibility is selective

    def test_serves_segment_from_buffer_or_backup(self):
        node = make_node(ContinuStreamingNode)
        node.receive_segment(5)
        node.backup.force_store(Segment(segment_id=9))
        assert node.serves_segment(5)
        assert node.serves_segment(9)
        assert not node.serves_segment(7)

    def test_prefetch_settlement_overdue(self):
        node = make_node(ContinuStreamingNode)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        alpha_before = node.urgent_line.alpha
        node.record_prefetch(40, arrival_time=5.0, deadline=1.0)
        overdue, repeated = node.settle_prefetches(now=6.0)
        assert (overdue, repeated) == (1, 0)
        assert node.urgent_line.alpha > alpha_before
        assert node.stats.prefetch_overdue == 1

    def test_prefetch_settlement_repeated(self):
        node = make_node(ContinuStreamingNode)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        node.record_prefetch(12, arrival_time=0.5, deadline=2.0)
        node.receive_segment(12)  # delivered by the scheduler too
        overdue, repeated = node.settle_prefetches(now=1.0)
        assert (overdue, repeated) == (0, 1)
        assert node.stats.prefetch_repeated == 1

    def test_prefetch_in_flight_not_settled_early(self):
        node = make_node(ContinuStreamingNode)
        node.record_prefetch(12, arrival_time=5.0, deadline=9.0)
        assert node.settle_prefetches(now=1.0) == (0, 0)
        assert node.pending_prefetches() == [12]

    def test_deadline_of(self):
        node = make_node(ContinuStreamingNode)
        node.buffer.update_from(range(0, 30))
        node.maybe_start_playback(10, newest_available_id=100)
        # Segment 20 is 20 segments ahead of play_id=0 -> 2 s from now.
        assert node.deadline_of(20, now=4.0) == pytest.approx(6.0)
        # A passed segment is due immediately.
        assert node.deadline_of(0, now=4.0) == pytest.approx(4.0)

    def test_deadline_before_playback_started(self):
        node = make_node(ContinuStreamingNode)
        assert node.deadline_of(50, now=2.0) == pytest.approx(3.0)

    def test_backup_handover_round_trip(self):
        leaver = make_node(ContinuStreamingNode, node_id=10)
        heir = make_node(ContinuStreamingNode, node_id=9)
        leaver.backup.force_store(Segment(segment_id=77))
        assert heir.absorb_handover(leaver.handover_backup()) == 1
        assert heir.serves_segment(77)

    def test_available_sending_rate_respects_budget(self):
        node = make_node(ContinuStreamingNode, outbound_rate=12.0)
        assert node.available_sending_rate(100.0) == 12.0
        assert node.available_sending_rate(3.0) == 3.0
        assert node.available_sending_rate(0.0) == 0.0
