"""Cluster-runtime integration tests: real processes, real TCP sockets.

The smoke test is the satellite acceptance: 2 shards × 50 peers over
localhost TCP reach stable continuity ≥ 0.9.  The kill test is the
failure-semantics acceptance: SIGKILL one shard mid-run and the
survivors refund their in-flight credits (``link_resets``), re-partner,
and finish every round — no wedge, no hang.  ``CONTINU_RUNTIME_TIME_SCALE``
slows the swarm clock on busy machines, exactly as for the single-process
runtime tests.
"""

import dataclasses
import os
import threading
import time

import pytest

from repro.core.config import SystemConfig
from repro.net.message import MessageKind, MessageLedger
from repro.obs import (
    Cockpit,
    ObsConfig,
    SloSpec,
    SloViolation,
    load_telemetry_jsonl,
    write_obs_jsonl,
)
from repro.runtime.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    LinkConfig,
    ShardSwarm,
    merge_shard_results,
    run_cluster,
    shard_of,
)
from repro.runtime.cluster.worker import ShardResult
from repro.runtime.parity import run_parity
from repro.runtime.transport import TransportSummary
from repro.scenarios.library import builtin_scenario

TIME_SCALE = float(os.environ.get("CONTINU_RUNTIME_TIME_SCALE", "0.5"))

#: Cluster swarms here are small (≤ 25 peers per shard), so they need far
#: less wall time per period than the 200-node parity swarm the env knob
#: is calibrated for.
SMALL_SCALE = max(0.25, TIME_SCALE / 2)


class TestShardPartition:
    def test_every_ring_id_has_exactly_one_owner(self):
        space = 8192
        for shards in (1, 2, 3, 4, 7):
            owners = [shard_of(rid, shards, space) for rid in range(0, space, 13)]
            assert all(0 <= owner < shards for owner in owners)
            # contiguous ranges: owner is monotone in the ring id
            assert owners == sorted(owners)
        assert shard_of(0, 4, space) == 0
        assert shard_of(space - 1, 4, space) == 3

    def test_shard_swarm_hosts_only_its_range(self):
        spec = builtin_scenario("static").scaled(num_nodes=24, rounds=2)
        swarms = [ShardSwarm(spec, i, 3, time_scale=SMALL_SCALE) for i in range(3)]
        for swarm in swarms:
            swarm.build()
        all_nodes = set(swarms[0].manager.nodes)
        hosted = [set(swarm.peers) for swarm in swarms]
        # identical deterministic construction on every shard
        for swarm in swarms[1:]:
            assert set(swarm.manager.nodes) == all_nodes
        # the hosted sets partition the overlay
        assert set.union(*hosted) == all_nodes
        assert sum(len(h) for h in hosted) == len(all_nodes)
        for swarm, mine in zip(swarms, hosted):
            assert all(swarm.hosts(rid) for rid in mine)

    def test_invalid_parameters_are_rejected(self):
        spec = builtin_scenario("static")
        with pytest.raises(ValueError):
            ShardSwarm(spec, 2, 2)
        with pytest.raises(ValueError):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, time_scale=0.0)
        with pytest.raises(ValueError):
            LinkConfig(queue_limit=0)


def _shard_result(shard_index, samples, msgs=100, lateness=0.0):
    ledger = MessageLedger()
    ledger.record(MessageKind.DATA_SCHEDULED, 1000.0, 2)
    return ShardResult(
        shard_index=shard_index,
        hosted_peers=5,
        hosts_source=shard_index == 0,
        config=SystemConfig(num_nodes=10, rounds=len(samples)),
        rounds=len(samples),
        time_scale=0.5,
        samples=samples,
        per_peer_ledgers={shard_index * 100: ledger},
        transport=TransportSummary(send_stalls=1, link_resets=shard_index),
        messages_sent=msgs,
        messages_dropped=3,
        peers_joined=1,
        peers_left=2,
        wall_time_s=1.5 + shard_index,
        clock_dilation_s=0.25,
        clock_dilations=2,
        worst_lateness_s=lateness,
        socket={"frames_out": 10, "frames_in": 9},
        lost_shards=[],
    )


class TestMergeShardResults:
    def test_samples_sum_per_tick_before_trimming(self):
        spec = builtin_scenario("static").scaled(num_nodes=10, rounds=3)
        a = _shard_result(0, [(0, 2, 4), (1, 3, 4), (2, 0, 0)])
        b = _shard_result(1, [(0, 1, 5), (1, 5, 5), (2, 0, 0)], lateness=0.5)
        merged = merge_shard_results([a, b], spec, shards=2, lost_shards=[])
        series = merged.continuity_series()
        # tick 2 sampled nobody on either shard: trimmed, not perfect
        assert len(series) == 2
        assert series[0] == pytest.approx(3 / 9)
        assert series[1] == pytest.approx(8 / 9)
        assert merged.messages_sent == 200
        assert merged.peers_left == 4
        assert merged.shards == 2
        assert merged.cluster["worst_lateness_s"] == 0.5
        assert merged.cluster["socket"]["frames_out"] == 20
        assert merged.transport.send_stalls == 2
        assert merged.transport.link_resets == 1
        # per-peer ledgers union disjointly and merge into the swarm ledger
        assert set(merged.per_peer_ledgers) == {0, 100}
        assert merged.ledger.count_of(MessageKind.DATA_SCHEDULED) == 4

    def test_lost_shards_are_reported(self):
        spec = builtin_scenario("static").scaled(num_nodes=10, rounds=2)
        a = _shard_result(0, [(0, 1, 2), (1, 2, 2)])
        merged = merge_shard_results([a], spec, shards=2, lost_shards=[1])
        assert merged.cluster["shards_lost"] == 1
        assert merged.cluster["lost_shards"] == [1]

    def test_merge_requires_at_least_one_shard(self):
        spec = builtin_scenario("static")
        with pytest.raises(ValueError):
            merge_shard_results([], spec, shards=2, lost_shards=[0, 1])


class TestClusterSmoke:
    """2 shards × 50 peers over localhost TCP (the satellite acceptance)."""

    @pytest.fixture(scope="class")
    def smoke_result(self):
        spec = builtin_scenario("static").scaled(num_nodes=50, rounds=20)
        return run_cluster(spec, shards=2, rounds=20, time_scale=SMALL_SCALE)

    def test_stable_continuity_at_least_0_9(self, smoke_result):
        assert smoke_result.stable_continuity() >= 0.9, smoke_result.cluster

    def test_no_shard_was_lost_and_sockets_carried_traffic(self, smoke_result):
        cluster = smoke_result.cluster
        assert cluster["shards_lost"] == 0
        assert cluster["socket"]["frames_out"] > 0
        assert cluster["socket"]["frames_in"] > 0
        assert cluster["socket"]["misrouted_frames"] == 0
        assert smoke_result.shards == 2

    def test_all_traffic_planes_flowed_and_merge_into_one_ledger(self, smoke_result):
        ledger = smoke_result.ledger
        assert ledger.count_of(MessageKind.BUFFER_MAP) > 0
        assert ledger.count_of(MessageKind.DATA_SCHEDULED) > 0
        assert 0.0 < smoke_result.control_overhead() < 1.0
        merged = MessageLedger.merged(list(smoke_result.per_peer_ledgers.values()))
        for kind in MessageKind:
            assert merged.bits_of(kind) == ledger.bits_of(kind)

    def test_both_shards_hosted_peers_and_one_hosted_the_source(self, smoke_result):
        rows = smoke_result.cluster["per_shard"]
        assert len(rows) == 2
        assert all(row["hosted_peers"] > 0 for row in rows)
        assert sum(1 for row in rows if row["hosts_source"]) == 1


class TestClusterObs:
    """Trace ids ride the shard sockets: journeys span worker processes."""

    @pytest.fixture(scope="class")
    def traced_result(self):
        spec = builtin_scenario("static").scaled(num_nodes=24, rounds=8, seed=11)
        result = run_cluster(
            spec, shards=2, rounds=8, time_scale=SMALL_SCALE,
            obs=ObsConfig(trace_sample=4),
        )
        assert result.obs is not None
        return result

    @pytest.fixture(scope="class")
    def traced_obs(self, traced_result):
        return traced_result.obs

    def test_traces_propagate_across_the_shard_socket_hop(self, traced_obs):
        by_trace = {}
        for span in traced_obs["spans"]:
            if span.get("trace"):
                by_trace.setdefault(span["trace"], set()).add(span.get("shard"))
        cross = [t for t, shards in by_trace.items() if len(shards - {None}) > 1]
        # A 2-shard swarm partners across the ring: some sampled journeys
        # must cross the socket, and their spans carry both shard tags.
        assert cross, "no journey crossed the shard socket"
        assert traced_obs["traces"]["cross_shard"] == len(cross)

    def test_cross_shard_ships_name_the_remote_hop(self, traced_obs):
        via = [
            s for s in traced_obs["spans"]
            if s["event"] == "ship" and s.get("via_shard") is not None
        ]
        assert via, "no ship span recorded its socket hop"
        assert all(s["via_shard"] != s["shard"] for s in via)

    def test_cross_shard_journeys_carry_per_hop_timestamps(self, traced_obs):
        by_trace = {}
        for span in traced_obs["spans"]:
            if span.get("trace"):
                by_trace.setdefault(span["trace"], []).append(span)
        complete = [
            spans for spans in by_trace.values()
            if len({s.get("shard") for s in spans}) > 1
            and {s["event"] for s in spans} >= {"request", "ship", "deliver"}
        ]
        assert complete, "no cross-shard journey completed"
        for spans in complete:
            assert all(isinstance(s["t"], float) for s in spans)

    def test_merged_metrics_cover_both_shards(self, traced_obs):
        assert traced_obs["shards"] == [0, 1]
        # gauges sum across shards: the merged view reads as cluster totals
        assert traced_obs["metrics"]["gauges"].get("messages_sent", 0) > 0
        assert "messages_sent" in traced_obs["metrics"]["series"]

    def test_flow_pairs_reconcile_with_cluster_wire_bytes(
        self, traced_result, traced_obs
    ):
        """The merged shard-pair matrix accounts for every wire byte —
        charged at the same line as ``bytes_on_wire``, so equality is by
        construction, and any drift means a send path went dark."""
        pairs = traced_obs["flows"]["pairs"]
        assert sum(row[3] for row in pairs) == traced_result.bytes_on_wire
        shards_seen = {(src, dst) for src, dst, _f, _b in pairs}
        # 24 nodes over 2 shards partner across the ring: both the
        # intra-shard diagonals and a cross-shard direction must carry.
        assert {(0, 0), (1, 1)} <= shards_seen
        assert any(src != dst for src, dst in shards_seen)

    def test_merged_topology_spans_both_shards(self, traced_obs):
        topo = traced_obs["topo"]
        assert topo["shards_merged"] == 2
        assert topo["components"] == 1  # a static 24-node overlay never splits
        assert 0 < topo["coverage"] <= 1.0
        assert topo["nodes"] == 24
        assert topo["finger_total"] > 0

    def test_socket_link_stats_are_exported_per_shard_pair(self, traced_obs):
        rows = traced_obs["socket_links"]
        assert {(r["src_shard"], r["dst_shard"]) for r in rows} == {(0, 1), (1, 0)}
        for row in rows:
            assert row["bytes_out"] > 0 and row["frames_out"] > 0
            assert row["lost"] == 0


class TestClusterParity:
    """Small-scale cluster-vs-sim parity (the ``--backend cluster`` axis)."""

    def test_cluster_matches_the_simulator_within_tolerance(self):
        report = run_parity(
            "static",
            num_nodes=50,
            rounds=20,
            seed=0,
            time_scale=SMALL_SCALE,
            backend="cluster",
            shards=2,
        )
        assert report.backend == "cluster"
        assert report.sim_stable_continuity > 0.9
        assert report.continuity_delta <= 0.03, report.formatted()

    def test_unknown_parity_backend_is_rejected(self):
        with pytest.raises(ValueError):
            run_parity("static", num_nodes=10, rounds=2, backend="quantum")


class TestKillOneShard:
    """SIGKILL a shard mid-run: survivors refund credits and never wedge."""

    def test_surviving_shard_completes_with_credits_refunded(self, tmp_path):
        spec = builtin_scenario("static").scaled(num_nodes=30, rounds=12)
        coordinator = ClusterCoordinator(
            spec,
            rounds=12,
            config=ClusterConfig(
                shards=2,
                time_scale=SMALL_SCALE,
                link=LinkConfig(
                    reconnect_attempts=1, reconnect_delay_s=0.1, reconnect_grace_s=0.5
                ),
                obs=ObsConfig(trace_sample=8),
            ),
        )
        outcome = {}

        def drive():
            outcome["result"] = coordinator.run()

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while coordinator.phase != "running":
            assert time.monotonic() < deadline, "cluster never reached running"
            assert thread.is_alive(), "coordinator died during setup"
            time.sleep(0.05)
        # Let a few periods stream, then kill the shard NOT hosting the
        # source (killing the stream origin would test nothing but decay).
        time.sleep(4 * SMALL_SCALE)
        victim = next(
            shard
            for shard, info in coordinator.shard_infos.items()
            if not info["hosts_source"]
        )
        channel = next(c for c in coordinator.channels if c.shard == victim)
        channel.process.kill()
        # The HealthEngine must raise the shard_dead alert *while the run
        # is still going* — that is the live-telemetry acceptance: the
        # operator learns about the death from the stream, not the exit.
        saw_alert_live = False
        alert_deadline = time.monotonic() + 120
        while thread.is_alive() and time.monotonic() < alert_deadline:
            health = coordinator.health
            if health is not None and any(
                a.kind == "shard_dead" and a.shard == victim for a in health.alerts
            ):
                saw_alert_live = True
                break
            time.sleep(0.02)
        thread.join(timeout=180)
        assert not thread.is_alive(), "coordinator hung after a shard died"
        assert saw_alert_live, "shard_dead alert did not surface before run end"
        result = outcome["result"]
        assert result.cluster["shards_lost"] == 1
        assert result.cluster["lost_shards"] == [victim]
        # The invariant under test: the survivor reset its credit windows
        # towards the dead shard, so no link wedged and every round ran.
        assert result.transport.link_resets > 0
        assert len(result.continuity_series()) == 12
        # The surviving shard keeps streaming after re-partnering.
        assert result.continuity_series()[-1] > 0.0
        # The killed shard cannot dump its own flight ring, so the
        # survivor's postmortem is the readable record of its death.
        assert result.obs is not None
        dumps = result.obs["postmortems"]
        assert any(
            f"shard {victim} presumed dead" in dump["reason"] for dump in dumps
        ), dumps
        dead_dump = next(
            d for d in dumps if f"shard {victim} presumed dead" in d["reason"]
        )
        assert any(
            e["event"] == "link_lost" and e.get("remote_shard") == victim
            for e in dead_dump["events"]
        )
        # ...and the whole thing exports as a readable JSONL artifact.
        artifact = tmp_path / "postmortem.jsonl"
        write_obs_jsonl(artifact, result.obs)
        assert any(
            '"type": "postmortem"' in line or '"type":"postmortem"' in line
            for line in artifact.read_text().splitlines()
        )
        # The telemetry stream stayed consistent through the death: both
        # shards fed frames, the survivor kept reporting past the
        # victim's last period, and the cockpit renders the whole story.
        frames = coordinator.telemetry_frames
        shards_seen = {f["shard"] for f in frames}
        assert shards_seen == {0, 1}, frames
        victim_last = max(f["period"] for f in frames if f["shard"] == victim)
        survivor_last = max(f["period"] for f in frames if f["shard"] != victim)
        assert survivor_last > victim_last
        cockpit = Cockpit()
        for body in frames:
            cockpit.feed(body)
        for alert in coordinator.health.alerts:
            cockpit.feed_alert(alert)
        rendered = cockpit.render()
        assert "shard 0" in rendered and "shard 1" in rendered
        assert "shard_dead" in rendered
        # ...and the run-level health verdict survives into the result.
        health = result.cluster["health"]
        assert health["dead_shards"] == [victim]
        assert any(a["kind"] == "shard_dead" for a in health["alerts"])


class TestClusterSlo:
    """``--slo`` aborts a breaching cluster run early (the acceptance)."""

    def test_burning_run_aborts_with_postmortem_and_stream(self, tmp_path):
        # 45% frame loss cannot hold continuity>=0.95: the budget burns
        # at well over 2x from the first scored period.
        spec = builtin_scenario("static").scaled(num_nodes=40, rounds=24, seed=5)
        spec = dataclasses.replace(spec, loss_rate=0.45)
        telemetry_path = tmp_path / "telemetry.jsonl"
        slo = SloSpec.parse("continuity>=0.95:burn=2x:grace=4")
        with pytest.raises(SloViolation) as excinfo:
            run_cluster(
                spec,
                shards=2,
                rounds=24,
                time_scale=SMALL_SCALE,
                obs=ObsConfig(trace_sample=8),
                slo=slo,
                telemetry_out=str(telemetry_path),
            )
        exc = excinfo.value
        assert exc.alert.kind == "continuity_burn"
        assert exc.alert.severity == "critical"
        # Breach confirms within 2 periods of becoming eligible (grace=4,
        # confirm=2 => period 5), well before the 24-round run ends.
        assert exc.alert.period is not None
        assert exc.alert.period <= 7, exc.alert
        assert "burned the error budget" in exc.alert.message
        # The abort carries the obs export whose postmortem names the breach.
        assert exc.obs is not None
        assert any(
            "SLO breach" in dump["reason"] for dump in exc.obs["postmortems"]
        ), exc.obs["postmortems"]
        # The streaming JSONL captured the run up to the abort: telemetry
        # frames from both shards plus the breach alert, but nowhere near
        # the full 24 periods x 2 shards.
        records = list(load_telemetry_jsonl(telemetry_path))
        frames = [r for r in records if r["type"] == "telemetry"]
        alerts = [r for r in records if r["type"] == "alert"]
        assert {f["shard"] for f in frames} == {0, 1}
        assert len(frames) < 48
        assert any(a["kind"] == "continuity_burn" for a in alerts)
        # The cockpit renders the same stream a live `obs --live` would.
        cockpit = Cockpit()
        for record in records:
            cockpit.feed_record(record)
        rendered = cockpit.render()
        assert "continuity_burn" in rendered
        assert "shard 0" in rendered and "shard 1" in rendered
        # ...and the Prometheus exposition file is left for scrapers.
        prom = telemetry_path.with_suffix(".jsonl.prom").read_text()
        assert "# TYPE continu_continuity gauge" in prom
