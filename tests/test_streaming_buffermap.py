"""Tests for the buffer-map wire encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import (
    ANCHOR_BITS,
    BUFFER_MAP_BITS,
    BufferMap,
    buffer_map_bits,
)


class TestSizes:
    def test_default_size_is_620_bits(self):
        """Section 5.4.2: 600 availability bits plus a 20-bit anchor."""
        assert BUFFER_MAP_BITS == 620

    def test_size_scales_with_capacity(self):
        assert buffer_map_bits(100) == 100 + ANCHOR_BITS

    def test_size_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            buffer_map_bits(0)

    def test_instance_size(self):
        snapshot = BufferMap(head_id=0, capacity=600, present=frozenset())
        assert snapshot.size_bits() == 620


class TestSnapshot:
    def test_from_buffer(self):
        buffer = SegmentBuffer(capacity=20, head_id=5)
        buffer.update_from([5, 7, 9])
        snapshot = BufferMap.from_buffer(buffer)
        assert snapshot.head_id == 5
        assert snapshot.capacity == 20
        assert snapshot.present == frozenset({5, 7, 9})
        assert 7 in snapshot and 6 not in snapshot

    def test_snapshot_is_immutable_view(self):
        buffer = SegmentBuffer(capacity=20)
        buffer.add(1)
        snapshot = BufferMap.from_buffer(buffer)
        buffer.add(2)
        assert 2 not in snapshot

    def test_available_after(self):
        snapshot = BufferMap(head_id=0, capacity=20, present=frozenset({1, 5, 9}))
        assert snapshot.available_after(1) == [5, 9]
        assert snapshot.available_after(9) == []


class TestPositionFromTail:
    def test_position_uses_effective_tail(self):
        # Newest held id is 9, so segment 9 is at distance 0 and segment 4 at 5.
        snapshot = BufferMap(head_id=0, capacity=600, present=frozenset({4, 9}))
        assert snapshot.position_from_tail(9) == 0
        assert snapshot.position_from_tail(4) == 5

    def test_position_capped_by_window_tail(self):
        snapshot = BufferMap(head_id=0, capacity=10, present=frozenset({0, 9}))
        assert snapshot.position_from_tail(0) == 9

    def test_position_unknown_segment_raises(self):
        snapshot = BufferMap(head_id=0, capacity=10, present=frozenset({1}))
        with pytest.raises(KeyError):
            snapshot.position_from_tail(2)


class TestBitmapRoundTrip:
    def test_to_bitmap(self):
        snapshot = BufferMap(head_id=10, capacity=5, present=frozenset({10, 12}))
        bitmap = snapshot.to_bitmap()
        assert bitmap.tolist() == [1, 0, 1, 0, 0]
        assert bitmap.dtype == np.uint8

    def test_round_trip(self):
        original = BufferMap(head_id=50, capacity=8, present=frozenset({50, 53, 57}))
        rebuilt = BufferMap.from_bitmap(50, original.to_bitmap())
        assert rebuilt == original

    def test_out_of_window_ids_not_encoded(self):
        snapshot = BufferMap(head_id=0, capacity=4, present=frozenset({0, 99}))
        assert snapshot.to_bitmap().tolist() == [1, 0, 0, 0]
