"""Tests for the system configuration."""

from __future__ import annotations

import math

import pytest

from repro.core.config import PAPER_DEFAULTS, SystemConfig


class TestDefaults:
    def test_paper_defaults_match_section_5_2(self):
        cfg = PAPER_DEFAULTS
        assert cfg.num_nodes == 1000
        assert cfg.connected_neighbors == 5
        assert cfg.buffer_capacity == 600
        assert cfg.playback_rate == 10.0
        assert cfg.scheduling_period == 1.0
        assert cfg.mean_inbound == 15.0
        assert cfg.backup_replicas == 4
        assert cfg.prefetch_limit == 5
        assert cfg.segment_bits == 30 * 1024

    def test_segments_per_round(self):
        assert PAPER_DEFAULTS.segments_per_round == 10
        half = SystemConfig(num_nodes=10, scheduling_period=0.5)
        assert half.segments_per_round == 5

    def test_effective_id_space_default(self):
        assert PAPER_DEFAULTS.effective_id_space >= 8192
        assert PAPER_DEFAULTS.effective_id_space & (PAPER_DEFAULTS.effective_id_space - 1) == 0

    def test_effective_id_space_explicit(self):
        cfg = SystemConfig(num_nodes=10, id_space=4096)
        assert cfg.effective_id_space == 4096

    def test_duration(self):
        cfg = SystemConfig(num_nodes=10, rounds=25, scheduling_period=2.0)
        assert cfg.duration == 50.0

    def test_is_dynamic(self):
        assert not PAPER_DEFAULTS.is_dynamic
        assert SystemConfig(num_nodes=10, leave_fraction=0.05).is_dynamic


class TestValidation:
    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=1)

    def test_id_space_must_exceed_nodes(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=100, id_space=100)

    def test_inbound_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, min_inbound=20, mean_inbound=15, max_inbound=33)

    def test_buffer_must_hold_a_round(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, buffer_capacity=5, playback_rate=10)

    def test_churn_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, leave_fraction=1.0)
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, abrupt_leave_fraction=1.5)

    def test_playback_lag_must_fit_in_buffer(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, playback_lag_segments=600, buffer_capacity=600)

    def test_window_must_cover_a_round(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, scheduling_window=5)

    def test_rounds_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=10, rounds=0)


class TestDerivedFormulas:
    def test_expected_fetch_time_matches_equation_7(self):
        cfg = SystemConfig(num_nodes=1000)
        t_hop = 0.05
        expected = (math.log2(1000) / 2 + 3) * t_hop
        assert cfg.expected_fetch_time(t_hop) == pytest.approx(expected)
        # Paper's own worked example: ~8 hops * 50 ms = ~0.4 s.
        assert cfg.expected_fetch_time(0.05) == pytest.approx(0.4, abs=0.05)

    def test_initial_alpha_matches_equation_9(self):
        cfg = SystemConfig(num_nodes=1000)
        # max(tau, t_fetch) = 1 s, so alpha = p/B = 10/600 = 1/60.
        assert cfg.initial_alpha(0.05) == pytest.approx(10 / 600)

    def test_initial_alpha_uses_fetch_time_when_larger(self):
        cfg = SystemConfig(num_nodes=1000, scheduling_period=0.2)
        t_fetch = cfg.expected_fetch_time(0.05)
        assert cfg.initial_alpha(0.05) == pytest.approx(
            cfg.playback_rate / cfg.buffer_capacity * t_fetch
        )

    def test_alpha_step(self):
        cfg = SystemConfig(num_nodes=1000)
        assert cfg.alpha_step(0.05) == pytest.approx(10 * 0.05 / 600)


class TestVariants:
    def test_static_and_dynamic_variants(self):
        cfg = SystemConfig(num_nodes=50, leave_fraction=0.05, join_fraction=0.05)
        assert cfg.static_variant().leave_fraction == 0.0
        dynamic = SystemConfig(num_nodes=50).dynamic_variant(0.1)
        assert dynamic.leave_fraction == 0.1
        assert dynamic.join_fraction == 0.1

    def test_homogeneous_variant(self):
        assert not SystemConfig(num_nodes=50).homogeneous_variant().heterogeneous

    def test_with_seed_and_scaled(self):
        cfg = SystemConfig(num_nodes=50, rounds=10, seed=1)
        assert cfg.with_seed(9).seed == 9
        scaled = cfg.scaled(200)
        assert scaled.num_nodes == 200 and scaled.rounds == 10
        assert cfg.scaled(200, rounds=5).rounds == 5

    def test_variants_do_not_mutate_original(self):
        cfg = SystemConfig(num_nodes=50)
        cfg.dynamic_variant()
        assert cfg.leave_fraction == 0.0
