"""Thin setup.py shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools lacks the ``wheel`` package required by the
PEP 517 editable-install path (the metadata itself lives in pyproject.toml).
"""

from setuptools import setup

setup()
