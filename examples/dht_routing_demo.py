#!/usr/bin/env python3
"""DHT substrate demo: loosely organised ring, greedy routing, backups.

Shows the structured half of ContinuStreaming's hybrid overlay on its own:

* builds a sparse ring (N = 8192 ids, a few hundred joined nodes),
* routes random lookups and compares the hop counts against both the
  empirical ``log2(n)/2`` observation and the appendix's worst-case bound
  ``log N / log(4/3) ≈ 2.41 · log N``,
* places backup copies of a few segments with the ``hash(id · i) % N`` rule
  and verifies that the responsible nodes can be located by routing.

Run with::

    python examples/dht_routing_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import dht_hop_upper_bound, expected_dht_lookup_hops
from repro.dht import DhtNetwork, backup_keys


def main() -> None:
    id_space = 8192
    num_nodes = 400
    rng = np.random.default_rng(3)

    network = DhtNetwork(id_space=id_space, rng=rng)
    network.populate(num_nodes)
    print(f"DHT ring: id space {id_space}, {num_nodes} joined nodes, "
          f"{network.ring.bits} finger levels per node\n")

    result = network.run_random_lookups(1500, rng=rng)
    print("Random lookups:")
    print(f"  average hops : {result.average_hops:.2f} "
          f"(log2(n)/2 = {expected_dht_lookup_hops(num_nodes):.2f})")
    print(f"  max hops     : {result.max_hops} "
          f"(appendix bound = {dht_hop_upper_bound(id_space):.1f})")
    print(f"  success rate : {result.success_rate:.3f}\n")

    replicas = 4
    print(f"Backup placement (k = {replicas} replicas per segment):")
    for segment_id in (17, 1234, 86400):
        keys = backup_keys(segment_id, replicas, id_space)
        holders = [network.responsible_node(key) for key in keys]
        print(f"  segment {segment_id:>6}: keys {keys} -> holders {holders}")
        # Every holder must be reachable by greedy routing from a random node.
        origin = network.node_ids()[int(rng.integers(num_nodes))]
        outcomes = [network.lookup(origin, key) for key in keys]
        reached = sum(1 for outcome in outcomes if outcome.success)
        print(f"    located {reached}/{replicas} holders from node {origin} "
              f"in {[outcome.hops for outcome in outcomes]} hops")


if __name__ == "__main__":
    main()
