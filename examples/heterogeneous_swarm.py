#!/usr/bin/env python3
"""Heterogeneous-bandwidth scenario and the Section 5.1 theory check.

The paper's analysis models segment arrivals as a Poisson process and
predicts the playback continuity without (``PC_old``) and with (``PC_new``)
the DHT-assisted pre-fetch.  This example

1. prints the analytic predictions for a couple of arrival rates,
2. runs the built-in ``hetero-swarm`` scenario — 20% ethernet / 50% cable /
   30% DSL access classes on a mildly lossy network, declared in
   ``repro.scenarios.library`` rather than hand-wired here — and
3. compares measured PC_old / PC_new / delta against the analytic rows on
   the uniform-bandwidth topology, mirroring the table of Section 5.1.

Run with::

    python examples/heterogeneous_swarm.py
"""

from __future__ import annotations

from repro import SystemConfig, playback_continuity_new, playback_continuity_old
from repro.experiments.table_theory import (
    format_theory_table,
    paper_reference_rows,
    run_theory_table,
)
from repro.scenarios import builtin_scenario


def main() -> None:
    playback_rate = 10.0
    period = 1.0
    replicas = 4

    print("Analytic model (Section 5.1):")
    for arrival_rate in (15.0, 14.0, 12.0):
        pc_old = playback_continuity_old(arrival_rate, playback_rate, period)
        pc_new = playback_continuity_new(arrival_rate, playback_rate, period, replicas)
        print(f"  lambda={arrival_rate:>4.1f}  PC_old={pc_old:.4f}  PC_new={pc_new:.4f}  "
              f"delta={pc_new - pc_old:.4f}")
    print()

    # The access-class swarm (scaled to 200 nodes so the example finishes in
    # under a minute; pass num_nodes=1000 to reproduce the paper's scale).
    spec = builtin_scenario("hetero-swarm").scaled(num_nodes=200, rounds=30, seed=11)
    results = {
        system: spec.scaled(system=system).run()
        for system in ("coolstreaming", "continustreaming")
    }
    print("Access-class swarm (20% ethernet / 50% cable / 30% DSL, 2% loss):")
    for system, run in results.items():
        print(f"  {system:<18} stable continuity: {run.stable_continuity():.3f}")
    print()

    # The paper's own uniform-heterogeneous environment for the theory table.
    config = SystemConfig(num_nodes=200, rounds=30, seed=11)
    rows = run_theory_table(config)
    print("Measured (200 nodes; PC_old = CoolStreaming, PC_new = ContinuStreaming):")
    print(format_theory_table(rows))
    print()
    print("Paper reference values (1000 nodes):")
    print(format_theory_table(paper_reference_rows()))


if __name__ == "__main__":
    main()
