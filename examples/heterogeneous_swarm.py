#!/usr/bin/env python3
"""Heterogeneous-bandwidth scenario and the Section 5.1 theory check.

The paper's analysis models segment arrivals as a Poisson process and
predicts the playback continuity without (``PC_old``) and with (``PC_new``)
the DHT-assisted pre-fetch.  This example

1. prints the analytic predictions for a couple of arrival rates,
2. runs homogeneous and heterogeneous bandwidth environments on the same
   topology, and
3. compares measured PC_old / PC_new / delta against the analytic rows,
   mirroring the table of Section 5.1.

Run with::

    python examples/heterogeneous_swarm.py
"""

from __future__ import annotations

from repro import SystemConfig, playback_continuity_new, playback_continuity_old
from repro.experiments.table_theory import (
    format_theory_table,
    paper_reference_rows,
    run_theory_table,
)


def main() -> None:
    playback_rate = 10.0
    period = 1.0
    replicas = 4

    print("Analytic model (Section 5.1):")
    for arrival_rate in (15.0, 14.0, 12.0):
        pc_old = playback_continuity_old(arrival_rate, playback_rate, period)
        pc_new = playback_continuity_new(arrival_rate, playback_rate, period, replicas)
        print(f"  lambda={arrival_rate:>4.1f}  PC_old={pc_old:.4f}  PC_new={pc_new:.4f}  "
              f"delta={pc_new - pc_old:.4f}")
    print()

    # Simulated environments (scaled to 200 nodes so the example finishes in
    # under a minute; pass num_nodes=1000 to reproduce the paper's scale).
    config = SystemConfig(num_nodes=200, rounds=30, seed=11)
    rows = run_theory_table(config)
    print("Measured (200 nodes; PC_old = CoolStreaming, PC_new = ContinuStreaming):")
    print(format_theory_table(rows))
    print()
    print("Paper reference values (1000 nodes):")
    print(format_theory_table(paper_reference_rows()))


if __name__ == "__main__":
    main()
