#!/usr/bin/env python3
"""Live-event scenario: heavy churn while streaming.

Models the workload the paper's introduction motivates — a live broadcast
where viewers continuously join and leave.  The run starts from a 200-node
overlay and churns 5 % of the audience out and 5 % in every scheduling
period (the paper's dynamic environment), then reports how much playback
continuity the DHT-assisted pre-fetch recovers compared to the
CoolStreaming baseline, and what it costs.

Run with::

    python examples/flash_crowd_churn.py
"""

from __future__ import annotations

from repro import StreamingSystem, SystemConfig


def run_environment(config: SystemConfig, label: str) -> None:
    print(f"--- {label} ---")
    results = {}
    for system in ("coolstreaming", "continustreaming"):
        results[system] = StreamingSystem(config, system=system).run()
    cool = results["coolstreaming"]
    conti = results["continustreaming"]
    print(f"  CoolStreaming     stable continuity: {cool.stable_continuity():.3f}")
    print(f"  ContinuStreaming  stable continuity: {conti.stable_continuity():.3f}")
    print(f"  continuity increment (delta)       : "
          f"{conti.stable_continuity() - cool.stable_continuity():+.3f}")
    print(f"  pre-fetch overhead                 : {conti.prefetch_overhead():.4f}")
    joined = sum(report.nodes_joined for report in conti.rounds)
    left = sum(report.nodes_left for report in conti.rounds)
    print(f"  membership churn over the run      : +{joined} joined / -{left} left")
    print()


def main() -> None:
    base = SystemConfig(num_nodes=200, rounds=35, seed=7)

    # Static reference first, then the churned live-event run.
    run_environment(base.static_variant(), "static audience (reference)")
    run_environment(base.dynamic_variant(0.05), "live event: 5% join + 5% leave per second")
    run_environment(base.dynamic_variant(0.10), "flash crowd: 10% join + 10% leave per second")

    print("The increment brought by ContinuStreaming grows as churn increases —")
    print("exactly the trend the paper reports for its dynamic environments.")


if __name__ == "__main__":
    main()
