#!/usr/bin/env python3
"""Live-event scenarios: heavy churn while streaming.

Models the workload the paper's introduction motivates — a live broadcast
where viewers continuously join and leave — as a sweep over three built-in
scenarios from the scenario library (``repro.scenarios``):

* ``static`` — fixed membership, the reference point;
* ``paper-dynamic`` — the paper's 5% join + 5% leave per period;
* ``flash-crowd`` — a 25%-per-round join spike for 3 rounds, then an
  elevated-leave drain.

Each scenario runs both CoolStreaming and ContinuStreaming on the same
seed/topology, reporting how much playback continuity the DHT-assisted
pre-fetch recovers and what it costs.  The wiring (churn schedule, config,
pipeline) all lives in the scenario specs — this script only picks names.

Run with::

    python examples/flash_crowd_churn.py
"""

from __future__ import annotations

from repro.scenarios import builtin_scenario

SCENARIOS = (
    ("static", "static audience (reference)"),
    ("paper-dynamic", "live event: 5% join + 5% leave per second"),
    ("flash-crowd", "flash crowd: 25% join spike, then the drain"),
)


def run_scenario(name: str, label: str) -> None:
    spec = builtin_scenario(name).scaled(num_nodes=200, rounds=35, seed=7)
    print(f"--- {label} ---")
    results = {
        system: spec.scaled(system=system).run()
        for system in ("coolstreaming", "continustreaming")
    }
    cool = results["coolstreaming"]
    conti = results["continustreaming"]
    print(f"  CoolStreaming     stable continuity: {cool.stable_continuity():.3f}")
    print(f"  ContinuStreaming  stable continuity: {conti.stable_continuity():.3f}")
    print(f"  continuity increment (delta)       : "
          f"{conti.stable_continuity() - cool.stable_continuity():+.3f}")
    print(f"  pre-fetch overhead                 : {conti.prefetch_overhead():.4f}")
    joined = sum(report.nodes_joined for report in conti.rounds)
    left = sum(report.nodes_left for report in conti.rounds)
    print(f"  membership churn over the run      : +{joined} joined / -{left} left")
    print()


def main() -> None:
    for name, label in SCENARIOS:
        run_scenario(name, label)

    print("The increment brought by ContinuStreaming grows as churn increases —")
    print("exactly the trend the paper reports for its dynamic environments.")
    print()
    print("Sweep these scenarios over many seeds in parallel with:")
    print("  continustreaming-experiments campaign --scenario static paper-dynamic"
          " flash-crowd --seeds 4 --workers 4")


if __name__ == "__main__":
    main()
