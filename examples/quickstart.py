#!/usr/bin/env python3
"""Quickstart: stream to a small overlay and compare both systems.

Builds a 150-node overlay from a synthetic Gnutella-like trace, streams a
300 Kbps media stream for 30 scheduling periods with CoolStreaming
(rarest-first pull gossip) and with ContinuStreaming (urgency+rarity
scheduling plus DHT-assisted pre-fetch), and prints the playback-continuity
tracks and the overhead metrics of both runs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import StreamingSystem, SystemConfig
from repro.core.phases import END, Phase, PhaseReport, ProtocolRegistry, RoundContext


class MetricsTapPhase(Phase):
    """Custom end-of-round phase: tally pipeline counters as the run goes.

    Any object implementing ``Phase.execute(ctx) -> PhaseReport`` can be
    spliced into the round pipeline via ``StreamingSystem(..., pipeline=...)``
    — no changes to the system or the registered protocols required.
    """

    name = "metrics-tap"
    timing = END  # run after playback/churn, when the counters are final

    def __init__(self) -> None:
        self.scheduled = 0
        self.prefetched = 0

    def execute(self, ctx: RoundContext) -> PhaseReport:
        self.scheduled += ctx.segments_scheduled
        self.prefetched += ctx.segments_prefetched
        return self.report(scheduled=self.scheduled, prefetched=self.prefetched)


def run_with_custom_phase(config: SystemConfig) -> None:
    """Demonstrate the pipeline hook: the default pipeline plus a tap."""
    tap = MetricsTapPhase()
    default = ProtocolRegistry.get("continustreaming").build_pipeline()
    StreamingSystem(config, pipeline=[*default, tap]).run()
    print("== custom metrics-tap phase ==")
    print(f"  segments via gossip scheduling: {tap.scheduled}")
    print(f"  segments via DHT pre-fetch    : {tap.prefetched}\n")


def main() -> None:
    config = SystemConfig(
        num_nodes=150,      # overlay size, including the media source
        rounds=30,          # scheduling periods (1 s each)
        mean_inbound=15.0,  # segments/s, i.e. 450 Kbps at 30 Kbit segments
        backup_replicas=4,  # each segment is backed up on k = 4 DHT nodes
        prefetch_limit=5,   # at most l = 5 pre-fetches per node per period
        seed=42,
    )

    print(f"Overlay: {config.num_nodes} nodes, id space {config.effective_id_space}, "
          f"stream {config.playback_rate:g} segments/s for {config.duration:g} s\n")

    for system in ("coolstreaming", "continustreaming"):
        result = StreamingSystem(config, system=system).run()
        track = ", ".join(f"{value:.2f}" for value in result.continuity_series())
        print(f"== {system} ==")
        print(f"  continuity track : [{track}]")
        print(f"  stable continuity: {result.stable_continuity():.3f}")
        print(f"  control overhead : {result.control_overhead():.4f}")
        if system == "continustreaming":
            print(f"  pre-fetch overhead: {result.prefetch_overhead():.4f}")
        print()

    run_with_custom_phase(config)

    print("ContinuStreaming should hold a visibly higher stable continuity while")
    print("its pre-fetch overhead stays in the low single-digit percent range.")


if __name__ == "__main__":
    main()
