"""Campaign benchmark — a multi-scenario, multi-seed sweep end to end.

Runs a small campaign over the built-in scenario library through the
:class:`~repro.scenarios.campaign.CampaignRunner` (serial, so the measured
time is comparable across machines regardless of core count) and emits
``BENCH_campaign.json`` with per-scenario wall time and continuity, the
artifact CI tracks across commits.
"""

from __future__ import annotations

from conftest import scaled, write_bench_artifact

from repro.scenarios import run_campaign

SMALL_SCENARIOS = ["static", "paper-dynamic", "flash-crowd"]
PAPER_SCENARIOS = ["static", "paper-dynamic", "flash-crowd", "diurnal",
                   "blackout", "hetero-swarm"]


def test_bench_campaign(benchmark):
    scenarios = scaled(SMALL_SCENARIOS, PAPER_SCENARIOS)
    seeds = scaled([0, 1], [0, 1, 2, 3])
    num_nodes = scaled(60, 400)
    rounds = scaled(8, 30)

    store = benchmark.pedantic(
        run_campaign,
        kwargs=dict(
            scenarios=scenarios,
            seeds=seeds,
            node_counts=[num_nodes],
            rounds=rounds,
            workers=1,
        ),
        rounds=1,
        iterations=1,
    )

    assert len(store) == len(scenarios) * len(seeds)
    summary = store.summary()

    artifact = {}
    for result in store:
        entry = artifact.setdefault(
            result.scenario,
            {"wall_time_s": 0.0, "stable_continuity": 0.0, "seeds": 0},
        )
        entry["wall_time_s"] += result.wall_time_s
        entry["seeds"] += 1
    for group_key, metrics in summary.items():
        scenario = group_key.split("/")[0]
        artifact[scenario]["stable_continuity"] = metrics["stable_continuity"]["mean"]
    path = write_bench_artifact("campaign", artifact)

    print(f"\n{store.format_summary()}\nartifact: {path}")
    # Every scenario must produce a live stream, not a stalled one.
    for scenario, entry in artifact.items():
        assert 0.0 < entry["stable_continuity"] <= 1.0, scenario
