"""Figure 7 benchmark — stable continuity vs overlay size, static environments.

Paper trend (100-8000 nodes, M = 5): both systems' continuity decreases
slowly with size, ContinuStreaming stays well above CoolStreaming at every
size, and the increment grows with the size.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig7_8_scale import format_scale_sweep, run_scale_sweep


def test_bench_fig7_scale_static(benchmark):
    sizes = scaled([80, 150, 250], [100, 500, 1000, 2000, 4000, 8000])
    rounds = scaled(30, 40)

    points = benchmark.pedantic(
        run_scale_sweep,
        kwargs=dict(sizes=sizes, dynamic=False, rounds=rounds, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_scale_sweep(points))
    for point in points:
        assert point.continustreaming > point.coolstreaming
        assert point.continustreaming > 0.8
