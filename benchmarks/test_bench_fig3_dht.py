"""Figure 3 benchmark — DHT routing hops and query success rate vs n.

Paper values (N = 8192): average hops very close to ``log2(n)/2`` (about 3
to 6.5 over the sweep) and query success rate very close to 1.0 even on a
sparse ring.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig3_dht import format_fig3, run_fig3_dht


def test_bench_fig3_dht_routing(benchmark):
    node_counts = scaled([200, 500, 1000], [500, 1000, 2000, 4000, 8000])
    lookups = scaled(500, 2000)

    points = benchmark(
        run_fig3_dht, node_counts=node_counts, lookups_per_size=lookups, seed=0
    )

    print("\n" + format_fig3(points))
    for point in points:
        # Shape checks from the paper: near-perfect success, hops near log2(n)/2.
        assert point.success_rate > 0.9
        assert point.average_hops < point.expected_hops + 2.0
        assert point.average_hops > point.expected_hops - 2.5
