"""Wire fast-path benchmark — codec ops/sec and gossip bytes per round.

Measures the raw codec in isolation (no event loop, no peers) and emits
``BENCH_wire.json``:

* ``encode_ops_per_s`` / ``decode_ops_per_s`` — messages through
  :func:`repro.runtime.wire.encode` / :func:`~repro.runtime.wire.decode`
  over a representative traffic mix (buffer maps, requests, segment
  data, credits);
* ``batch_decode_ops_per_s`` — the same mix decoded from FrameBatch
  envelopes (the read-loop fast path: one length-prefix scan per burst);
* ``gossip_bytes_full`` / ``gossip_bytes_delta`` — physical bytes per
  steady-state gossip round, full maps vs changed-bit deltas, for the
  paper's default window.  The delta figure is the one the transport
  ships once partners are in sync; CI asserts it stays ≤ 0.5× full.
"""

from __future__ import annotations

import time

from conftest import scaled, write_bench_artifact

from repro.runtime import wire
from repro.streaming.buffermap import BufferMap

#: Messages per timing pass (the mix below is repeated to this length).
SMALL_OPS = 20_000
PAPER_OPS = 200_000

#: Steady-state gossip rounds compared full-vs-delta.
ROUNDS = 64

#: The paper's default advertised window (``B = 600``).
CAPACITY = 600


def _traffic_mix():
    """A representative frame mix, roughly in live-swarm proportions."""
    bm = BufferMap(
        head_id=40, capacity=CAPACITY,
        present=frozenset(range(40, 530)) - {55, 77, 91},
    )
    return [
        wire.BufferMapMsg.from_buffer_map(7, 129, bm, seq=3),
        wire.SegmentRequest(sender=7, segment_id=131),
        wire.SegmentData(sender=9, segment_id=131, size_bits=2_000),
        wire.CreditGrant(sender=7, credits=4),
        wire.Ping(sender=7, nonce=12),
    ]


def _steady_maps(rounds: int):
    """A window sliding one segment per round with a little churn."""
    maps = []
    for r in range(rounds + 1):
        head = 100 + r
        present = set(range(head, head + CAPACITY - 10))
        # a couple of in-flight holes that move round to round (matches
        # the ~5 changed runs per round measured on live static swarms)
        present.discard(head + 30 + (r % 7))
        present.discard(head + 200 + (r % 11))
        maps.append(BufferMap(head_id=head, capacity=CAPACITY,
                              present=frozenset(present)))
    return maps


def test_bench_wire(benchmark):
    ops = scaled(SMALL_OPS, PAPER_OPS)
    mix = _traffic_mix()
    messages = [mix[i % len(mix)] for i in range(ops)]
    frames = [wire.encode(msg) for msg in messages]
    batches = wire.encode_batch(frames)

    def sweep():
        timings = {}
        start = time.perf_counter()
        for msg in messages:
            wire.encode(msg)
        timings["encode_s"] = time.perf_counter() - start

        decoder = wire.FrameDecoder()
        start = time.perf_counter()
        decoded = 0
        for frame in frames:
            decoded += len(decoder.feed(frame))
        timings["decode_s"] = time.perf_counter() - start
        assert decoded == len(frames)

        decoder = wire.FrameDecoder()
        start = time.perf_counter()
        decoded = 0
        for batch in batches:
            for envelope in decoder.feed(batch):
                decoded += len(envelope.frames)
        timings["batch_decode_s"] = time.perf_counter() - start
        assert decoded == len(frames)
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    maps = _steady_maps(ROUNDS)
    full_bytes = 0
    delta_bytes = 0
    for seq in range(1, ROUNDS + 1):
        new, base = maps[seq], maps[seq - 1]
        newest = new.head_id + CAPACITY - 11
        full = wire.encode(wire.BufferMapMsg.from_buffer_map(7, newest, new, seq=seq))
        delta = wire.encode(
            wire.BufferMapDelta.from_maps(7, seq, newest, new, base)
        )
        full_bytes += len(full)
        delta_bytes += min(len(delta), len(full))  # the transport's fallback rule

    artifact = {
        "ops": ops,
        "encode_ops_per_s": round(ops / timings["encode_s"], 1),
        "decode_ops_per_s": round(ops / timings["decode_s"], 1),
        "batch_decode_ops_per_s": round(ops / timings["batch_decode_s"], 1),
        "batch_frames": len(batches),
        "gossip_rounds": ROUNDS,
        "gossip_capacity": CAPACITY,
        "gossip_bytes_full": full_bytes,
        "gossip_bytes_delta": delta_bytes,
        "gossip_delta_ratio": round(delta_bytes / full_bytes, 4),
    }
    path = write_bench_artifact("wire", artifact)

    print(
        f"\nencode {artifact['encode_ops_per_s']:.0f}/s, "
        f"decode {artifact['decode_ops_per_s']:.0f}/s, "
        f"batch decode {artifact['batch_decode_ops_per_s']:.0f}/s "
        f"({len(frames)} frames in {len(batches)} envelopes)\n"
        f"gossip: {full_bytes} B full vs {delta_bytes} B delta "
        f"({artifact['gossip_delta_ratio']:.2%}) over {ROUNDS} rounds\n"
        f"artifact: {path}"
    )

    assert artifact["encode_ops_per_s"] > 0
    assert artifact["decode_ops_per_s"] > 0
    # batching must make the decode side cheaper, not dearer
    assert timings["batch_decode_s"] < 1.5 * timings["decode_s"]
    # steady-state delta gossip must stay well under the full-map bytes
    assert delta_bytes <= 0.5 * full_bytes
