"""Figure 5 benchmark — continuity track over 30 s, static, single source.

Paper values (1000 nodes): CoolStreaming enters its stable phase around 26 s
at ~0.83 continuity; ContinuStreaming around 18 s at ~0.97.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig5_6_track import format_track, run_continuity_track


def test_bench_fig5_continuity_track_static(benchmark):
    num_nodes = scaled(200, 1000)
    rounds = scaled(35, 30)

    results = benchmark.pedantic(
        run_continuity_track,
        kwargs=dict(num_nodes=num_nodes, rounds=rounds, dynamic=False, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_track(results))
    cool = results["coolstreaming"]
    conti = results["continustreaming"]
    # Shape: ContinuStreaming ends up clearly above CoolStreaming and close to 1.
    assert conti.stable_continuity > cool.stable_continuity
    assert conti.stable_continuity > 0.85
    # Both start from (near) zero and ramp up.
    assert cool.continuity[0] < 0.2
    assert conti.continuity[0] < 0.2
