"""Figure 11 benchmark — stable-phase pre-fetch overhead vs overlay size.

Paper values: below 0.04 for every size from 100 to 8000 nodes, with dynamic
environments consistently costlier than static ones.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig10_11_prefetch import (
    format_prefetch_scale,
    run_prefetch_overhead_scale,
)


def test_bench_fig11_prefetch_scale(benchmark):
    sizes = scaled([80, 150, 250], [100, 500, 1000, 2000, 4000, 8000])
    rounds = scaled(25, 30)

    points = benchmark.pedantic(
        run_prefetch_overhead_scale,
        kwargs=dict(sizes=sizes, rounds=rounds, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_prefetch_scale(points))
    for point in points:
        # The extra cost of the DHT-assisted pre-fetch stays small.
        assert point.prefetch_overhead < 0.10
    # For each size, the dynamic environment pays at least as much as static.
    for size in {point.num_nodes for point in points}:
        static = next(p for p in points if p.num_nodes == size and not p.dynamic)
        dynamic = next(p for p in points if p.num_nodes == size and p.dynamic)
        assert dynamic.prefetch_overhead >= static.prefetch_overhead - 0.01
