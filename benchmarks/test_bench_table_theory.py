"""Section 5.1 table benchmark — theory vs simulation of PC_old / PC_new / delta.

Paper values (1000 nodes): theory λ=15 gives 0.8815 / 0.9989; the simulated
environments range from 0.8166-0.8748 (PC_old) to 0.9537-0.9979 (PC_new),
with dynamic and heterogeneous environments at the lower end.
"""

from __future__ import annotations

from conftest import scaled

from repro.core.config import SystemConfig
from repro.experiments.table_theory import (
    format_theory_table,
    paper_reference_rows,
    run_theory_table,
)


def test_bench_table_theory(benchmark):
    config = SystemConfig(
        num_nodes=scaled(150, 1000), rounds=scaled(30, 40), seed=0
    )

    rows = benchmark.pedantic(
        run_theory_table, args=(config,), rounds=1, iterations=1
    )

    print("\nmeasured:\n" + format_theory_table(rows))
    print("\npaper reference:\n" + format_theory_table(paper_reference_rows()))

    by_env = {row.environment: row for row in rows}
    # Analytic rows must match the paper exactly (they are closed-form).
    assert abs(by_env["theory λ=15"].pc_old - 0.8815) < 5e-3
    assert abs(by_env["theory λ=15"].pc_new - 0.9989) < 5e-3
    # Simulated rows must preserve the ordering the paper reports:
    # pre-fetch improves continuity in every environment, and the static
    # environment is no worse than its dynamic counterpart.
    for env in ("homogeneous static", "heterogeneous static"):
        assert by_env[env].pc_new > by_env[env].pc_old
    assert (
        by_env["homogeneous static"].pc_new
        >= by_env["homogeneous dynamic"].pc_new - 0.05
    )
