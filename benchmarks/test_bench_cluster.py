"""Cluster scaling benchmark — aggregate throughput vs shard count.

Runs one fixed workload (the ``static`` scenario at an aggressive time
scale, i.e. deliberately past what a single event loop can sustain) as a
cluster of 1, 2 and 4 shard processes and emits ``BENCH_cluster.json``:
peers hosted, aggregate wire messages/sec, delivered segments/sec, the
stable continuity each run still reached, and the speedup/efficiency of
each shard count over the single-shard baseline
(:func:`repro.analysis.metrics.throughput_scaling`).

The workload is overload-shaped on purpose: the coherent cluster-wide
dilation stretches every run to its *sustainable* rate while continuity
stays high, so messages/sec measures the throughput ceiling the process
topology can actually sustain — the number the ROADMAP says to move.
Honesty note: sharding buys throughput only where there are cores to
run the shards on.  The artifact records ``cpus`` (the CPU affinity
count), and the ≥-scaling assertion is enforced only when at least as
many cores as shards are available; on a 1-core box the 4-shard figure
legitimately lands near 1× and the JSON says so.
"""

from __future__ import annotations

import json
import os

from conftest import ARTIFACT_DIR, SCALE, scaled, write_bench_artifact

from repro.analysis.metrics import throughput_scaling
from repro.runtime import HybridSwarm
from repro.runtime.cluster import run_cluster
from repro.scenarios import builtin_scenario

#: Shard counts swept; {1, 2, 4} is the scaling curve CI tracks.
SHARD_COUNTS = [1, 2, 4]

#: Total peers across the cluster (fixed per sweep: the curve isolates
#: the process topology, not the swarm size).
SMALL_PEERS = 120
PAPER_PEERS = 600

#: Long enough for the dilation to converge and for a real stable phase
#: past the startup ramp (the same 30-round lesson as BENCH_runtime).
SMALL_ROUNDS = 30
PAPER_ROUNDS = 30


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_one(peers: int, rounds: int, shards: int):
    spec = builtin_scenario("static").scaled(num_nodes=peers, rounds=rounds)
    # Saturation heuristic: ~1 ms of wall time per peer per simulated
    # second — below what one loop sustains (the dilation engages), yet
    # inside the MAX_STRETCH ceiling even for the single-shard baseline,
    # so every topology stretches to its own *sustainable* rate and
    # messages/sec compares those ceilings rather than collapse regimes.
    time_scale = 0.001 * peers
    return run_cluster(spec, shards=shards, rounds=rounds, time_scale=time_scale)


def test_bench_cluster(benchmark):
    peers = scaled(SMALL_PEERS, PAPER_PEERS)
    rounds = scaled(SMALL_ROUNDS, PAPER_ROUNDS)

    def sweep():
        return {shards: _run_one(peers, rounds, shards) for shards in SHARD_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    throughput = {
        shards: result.messages_per_wall_second() for shards, result in results.items()
    }
    scaling = throughput_scaling(throughput)
    artifact = {"cpus": _cpus(), "peers": peers, "rounds": rounds}
    for shards, result in results.items():
        artifact[str(shards)] = {
            "shards": shards,
            "time_scale": result.time_scale,
            "wall_time_s": round(result.wall_time_s, 4),
            "messages_sent": result.messages_sent,
            "messages_per_s": round(result.messages_per_wall_second(), 1),
            "segments_delivered": result.segments_delivered(),
            "segments_per_s": round(result.segments_per_wall_second(), 1),
            "peer_periods_per_s": round(
                peers * rounds / result.wall_time_s, 1
            ) if result.wall_time_s > 0 else 0.0,
            "stable_continuity": round(result.stable_continuity(), 4),
            "clock_dilations": result.clock_dilations,
            "clock_dilation_s": round(result.clock_dilation_s, 4),
            "socket": (result.cluster or {}).get("socket", {}),
            "shards_lost": (result.cluster or {}).get("shards_lost", 0),
            "bytes_on_wire": result.bytes_on_wire,
            "speedup": round(scaling[shards]["speedup"], 3),
            "efficiency": round(scaling[shards]["efficiency"], 3),
        }
    path = write_bench_artifact("cluster", artifact)

    lines = [
        f"shards={shards}: {entry['messages_per_s']:.0f} msg/s "
        f"(speedup {entry['speedup']:.2f}x), "
        f"continuity {entry['stable_continuity']:.3f}, "
        f"dilated {entry['clock_dilations']}x, "
        f"{entry['socket'].get('frames_out', 0)} socket frames"
        for shards, entry in ((s, artifact[str(s)]) for s in SHARD_COUNTS)
    ]
    print(f"\n{peers} peers on {artifact['cpus']} cpus\n" + "\n".join(lines)
          + f"\nartifact: {path}")

    for shards, result in results.items():
        assert result.messages_per_wall_second() > 0, shards
        assert result.segments_delivered() > 0, shards
        assert (result.cluster or {}).get("shards_lost", 0) == 0, shards
        # dilation keeps an overloaded cluster streaming, not collapsing
        # (a loose floor: the artifact records the exact figure, and the
        # CI smoke step gates the unsaturated regime at >= 0.9)
        assert result.stable_continuity() > 0.4, shards
    if _cpus() >= max(SHARD_COUNTS):
        # The headline scaling claim, gated on the cores existing.  At
        # paper scale (the nightly acceptance regime) 4 shards must hit
        # the ISSUE's >= 2x of the single-shard figure; the small-scale
        # push-CI sweep uses a tolerant floor — tiny swarms amortise the
        # routing overhead badly, and the JSON records the exact ratio
        # either way.
        floor = 2.0 if SCALE == "paper" else 1.5
        assert throughput[4] >= floor * throughput[1], throughput


#: The hybrid-fidelity headline row: a six-figure swarm on one host.
HYBRID_PEERS = 100_000
HYBRID_CORE = 50
HYBRID_ROUNDS = 30


def test_bench_hybrid_100k(benchmark):
    """100k peers as a hybrid swarm: 50 live core + ~100k slim tier.

    Runs on the virtual clock (deterministic, minutes-free) and merges a
    ``hybrid_100k`` row into ``BENCH_cluster.json`` next to the shard
    scaling curve: peers hosted, memory per slim peer, messages/sec and
    the stable continuity the statistical tier still certifies.  The
    continuity floor is the ISSUE's 100k acceptance (≥ 0.95; the seed-0
    figure is 0.953).
    """
    spec = builtin_scenario("static").scaled(
        num_nodes=HYBRID_PEERS, rounds=HYBRID_ROUNDS, seed=0
    )

    def run():
        return HybridSwarm(spec, core_peers=HYBRID_CORE, clock="virtual").run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    fid = result.fidelity or {}
    slim_peers = int(fid.get("slim_peers", 0))
    slim_memory = int(fid.get("slim_memory_bytes", 0))
    row = {
        "fidelity": "hybrid",
        "peers": HYBRID_PEERS,
        "core_peers": HYBRID_CORE,
        "slim_peers": slim_peers,
        "rounds": HYBRID_ROUNDS,
        "clock": "virtual",
        "stable_continuity": round(result.stable_continuity(), 4),
        "messages_sent": result.messages_sent,
        "messages_per_s": round(result.messages_per_wall_second(), 1),
        "memory_per_peer_bytes": round(slim_memory / slim_peers, 2)
        if slim_peers else 0.0,
        "slim_memory_bytes": slim_memory,
        "wall_time_s": round(result.wall_time_s, 4),
    }
    # The shard-scaling sweep owns the artifact's top-level shape and
    # rewrites it wholesale; this row must *merge*, not clobber.
    path = ARTIFACT_DIR / "BENCH_cluster.json"
    artifact = json.loads(path.read_text()) if path.exists() else {}
    artifact["hybrid_100k"] = row
    path = write_bench_artifact("cluster", artifact)

    print(
        f"\nhybrid 100k: continuity {row['stable_continuity']:.4f}, "
        f"{row['messages_per_s']:.0f} msg/s, "
        f"{row['memory_per_peer_bytes']:.1f} B/slim peer, "
        f"wall {row['wall_time_s']:.1f}s\nartifact: {path}"
    )

    assert slim_peers == HYBRID_PEERS - HYBRID_CORE
    assert result.stable_continuity() >= 0.95
    assert 0 < row["memory_per_peer_bytes"] <= 8.0
