"""Live-runtime throughput benchmark — wall-clock messages/sec vs swarm size.

Runs the ``static`` scenario as a real asyncio swarm at several sizes with
an aggressive time scale (the swarm runs essentially as fast as the event
loop can move frames) and emits ``BENCH_runtime.json``: wire messages per
wall second, delivered segments per wall second, and the stable continuity
each swarm still reached.  This artifact seeds the runtime performance
trajectory — future event-loop, codec or transport optimisations must move
``messages_per_s`` up without dropping ``stable_continuity``.

Since the bounded-transport PR the numbers are *honest*: transports are
credit-gated and bounded, and an overloaded swarm dilates its schedule
coherently (reported as ``clock_dilations`` / ``clock_dilation_s``)
instead of letting peers drift apart — so ``messages_per_s`` measures the
throughput the loop can actually sustain **while streaming correctly**
(``stable_continuity`` stays high), not a collapse regime.  The previous
12-round horizon also ended mid-startup-ramp (the simulator itself only
reaches ~0.73 there); 30 rounds gives the stable phase the continuity
number refers to.
"""

from __future__ import annotations

from conftest import scaled, write_bench_artifact

from repro.obs import HealthEngine, ObsConfig
from repro.runtime import LiveSwarm
from repro.scenarios import builtin_scenario

#: Swarm sizes benchmarked; {50, 200} are the sizes CI tracks.
SMALL_SIZES = [50, 200]
PAPER_SIZES = [50, 200, 400]

#: Rounds per swarm — long enough for a real stable phase (trailing third
#: past the startup ramp), short enough for CI.
SMALL_ROUNDS = 30
PAPER_ROUNDS = 30


def _run_one(
    num_nodes: int,
    rounds: int,
    obs: ObsConfig | None = None,
    telemetry_sink=None,
):
    spec = builtin_scenario("static").scaled(num_nodes=num_nodes, rounds=rounds)
    # Push the clock: ~25 ms of wall time per simulated second at 50 peers,
    # growing with swarm size.  Overload is expected and *wanted* here —
    # the adaptive dilation stretches the schedule to the sustainable
    # rate, which is exactly the ceiling this benchmark measures.
    time_scale = 0.0005 * num_nodes
    swarm = LiveSwarm(spec, time_scale=time_scale, obs=obs)
    if telemetry_sink is not None:
        swarm.telemetry_sink = telemetry_sink
    return swarm.run()


def test_bench_runtime(benchmark):
    sizes = scaled(SMALL_SIZES, PAPER_SIZES)
    rounds = scaled(SMALL_ROUNDS, PAPER_ROUNDS)

    def sweep():
        return {size: _run_one(size, rounds) for size in sizes}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    artifact = {}
    for size, result in results.items():
        artifact[str(size)] = {
            "rounds": result.rounds,
            "time_scale": result.time_scale,
            "wall_time_s": round(result.wall_time_s, 4),
            "messages_sent": result.messages_sent,
            "messages_per_s": round(result.messages_per_wall_second(), 1),
            "segments_delivered": result.segments_delivered(),
            "segments_per_s": round(result.segments_per_wall_second(), 1),
            "stable_continuity": round(result.stable_continuity(), 4),
            "control_overhead": round(result.control_overhead(), 4),
            "prefetch_overhead": round(result.prefetch_overhead(), 4),
            "clock_dilations": result.clock_dilations,
            "clock_dilation_s": round(result.clock_dilation_s, 4),
            "bytes_on_wire": result.bytes_on_wire,
            "transport": result.transport.to_dict(),
        }
    path = write_bench_artifact("runtime", artifact)

    lines = [
        f"n={size}: {entry['messages_per_s']:.0f} msg/s, "
        f"{entry['segments_per_s']:.0f} seg/s, "
        f"continuity {entry['stable_continuity']:.3f}, "
        f"dilated {entry['clock_dilations']}x, "
        f"stalls {entry['transport']['send_stalls']}"
        for size, entry in artifact.items()
    ]
    print("\n" + "\n".join(lines) + f"\nartifact: {path}")

    for size, entry in artifact.items():
        # the swarm must actually stream and move real traffic — and with
        # coherent pacing, overload must no longer collapse continuity
        # (tests/test_runtime_backpressure.py pins the 200-peer case ≥0.9)
        assert entry["messages_per_s"] > 0, size
        assert entry["segments_delivered"] > 0, size
        assert entry["stable_continuity"] > 0.5, size


def test_bench_runtime_obs_overhead(benchmark):
    """The observability plane's throughput cost at the 50-peer point.

    Runs the same swarm three ways — obs off, obs fully on (metrics +
    every-16th-request tracing), and obs on with live telemetry streaming
    into a :class:`HealthEngine` at the default one-frame-per-period
    cadence — and records the throughput ratios in
    ``BENCH_runtime_obs.json``.  The issue's ≤5% budget is pinned as a
    loose wall-clock floor here (shared CI boxes time-slice one core, so
    a strict 0.95 gate would flake); the *strict* zero-overhead claim —
    disabled obs is bit-identical — is pinned deterministically on the
    virtual clock by tests/test_obs.py instead.
    """
    rounds = scaled(SMALL_ROUNDS, PAPER_ROUNDS)
    engine = HealthEngine(expected_shards=1)
    frames: list = []

    def sink(body):
        frames.append(body)
        engine.observe_frame(body)

    def triple():
        return {
            "off": _run_one(50, rounds),
            "on": _run_one(50, rounds, obs=ObsConfig()),
            # Live telemetry at the default cadence (one frame/period)
            # feeding a real HealthEngine — the `--telemetry-out` /
            # cluster-coordinator consumer path.
            "telemetry": _run_one(
                50, rounds, obs=ObsConfig(), telemetry_sink=sink
            ),
        }

    results = benchmark.pedantic(triple, rounds=1, iterations=1)
    off, on, tele = results["off"], results["on"], results["telemetry"]
    base = max(1.0, off.messages_per_wall_second())
    ratio = on.messages_per_wall_second() / base
    tele_ratio = tele.messages_per_wall_second() / base
    artifact = {
        "off_messages_per_s": round(off.messages_per_wall_second(), 1),
        "on_messages_per_s": round(on.messages_per_wall_second(), 1),
        "throughput_ratio": round(ratio, 4),
        "on_spans": len((on.obs or {}).get("spans", [])),
        "on_sampled_journeys": ((on.obs or {}).get("traces") or {}).get("sampled", 0),
        "trace_sample": ObsConfig().trace_sample,
        "telemetry_messages_per_s": round(tele.messages_per_wall_second(), 1),
        "telemetry_throughput_ratio": round(tele_ratio, 4),
        "telemetry_frames": len(frames),
        "telemetry_every": ObsConfig().telemetry_every,
    }
    path = write_bench_artifact("runtime_obs", artifact)
    print(
        f"\nobs off {artifact['off_messages_per_s']:.0f} msg/s, "
        f"on {artifact['on_messages_per_s']:.0f} msg/s "
        f"(ratio {ratio:.3f}), telemetry "
        f"{artifact['telemetry_messages_per_s']:.0f} msg/s "
        f"(ratio {tele_ratio:.3f}, {len(frames)} frames); artifact: {path}"
    )
    assert on.obs is not None and on.obs["traces"]["sampled"] > 0
    assert on.stable_continuity() > 0.5
    # The telemetry run actually streamed frames into the engine.
    assert len(frames) == rounds
    assert engine.snapshot()["closed_through"] == rounds - 1
    assert tele.stable_continuity() > 0.5
    # Loose floor for noisy shared runners; the recorded ratios are the
    # tracked numbers (target: ≥ 0.95 on a quiet machine).
    assert ratio >= 0.5, artifact
    assert tele_ratio >= 0.5, artifact
