"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper figures — these quantify how much each mechanism contributes:
the urgency+rarity scheduler vs rarest-first, the pre-fetch path, the number
of backup replicas ``k``, and the per-period pre-fetch cap ``l``.
"""

from __future__ import annotations

from conftest import scaled

from repro.core.config import SystemConfig
from repro.experiments.ablations import (
    format_ablation,
    run_prefetch_limit_ablation,
    run_priority_ablation,
    run_replica_ablation,
)


def _config() -> SystemConfig:
    return SystemConfig(num_nodes=scaled(120, 500), rounds=scaled(25, 40), seed=0)


def test_bench_ablation_priority_and_prefetch(benchmark):
    points = benchmark.pedantic(
        run_priority_ablation, args=(_config(),), rounds=1, iterations=1
    )
    print("\n" + format_ablation(points))
    by_name = {point.name: point for point in points}
    full = by_name["continustreaming full"]
    baseline = by_name["coolstreaming (rarest-first)"]
    assert full.stable_continuity > baseline.stable_continuity
    # Only the full system pays pre-fetch overhead.
    assert full.prefetch_overhead > 0.0
    assert baseline.prefetch_overhead == 0.0


def test_bench_ablation_backup_replicas(benchmark):
    points = benchmark.pedantic(
        run_replica_ablation,
        kwargs=dict(replica_counts=(1, 2, 4), base_config=_config()),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    assert len(points) == 3
    # More replicas never reduce continuity by more than noise, and the k=4
    # configuration (the paper's choice) keeps the overhead small.
    by_name = {point.name: point for point in points}
    assert by_name["k=4"].prefetch_overhead < 0.10
    assert by_name["k=4"].stable_continuity >= by_name["k=1"].stable_continuity - 0.05


def test_bench_ablation_prefetch_limit(benchmark):
    points = benchmark.pedantic(
        run_prefetch_limit_ablation,
        kwargs=dict(limits=(0, 5, 10), base_config=_config()),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    by_name = {point.name: point for point in points}
    # Disabling the pre-fetch removes its overhead entirely; enabling it must
    # not hurt continuity.
    assert by_name["l=0"].prefetch_overhead == 0.0
    assert by_name["l=5"].stable_continuity >= by_name["l=0"].stable_continuity - 0.03
