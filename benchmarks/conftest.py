"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  To keep
the suite runnable on a laptop, the default node counts are scaled down from
the paper's (hundreds instead of thousands of nodes); set the environment
variable ``CONTINU_BENCH_SCALE=paper`` to run at the paper's sizes (slow —
expect tens of minutes).  The benchmarked callables return the data they
produce, and each benchmark also prints a short summary so the regenerated
rows/series can be compared against EXPERIMENTS.md by eye.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: "small" (default) or "paper".
SCALE = os.environ.get("CONTINU_BENCH_SCALE", "small")

#: Where BENCH_*.json artifacts land (the repo root / CI working directory).
ARTIFACT_DIR = Path(os.environ.get("CONTINU_BENCH_ARTIFACT_DIR", "."))


def scaled(small_value, paper_value):
    """Pick the small or paper-scale variant of a parameter."""
    return paper_value if SCALE == "paper" else small_value


def write_bench_artifact(name: str, payload) -> Path:
    """Write a machine-readable benchmark artifact as ``BENCH_<name>.json``.

    Benchmarks that produce data worth tracking across commits (wall
    times, continuity aggregates) emit it here in addition to their
    printed summary; ``CONTINU_BENCH_ARTIFACT_DIR`` redirects the output
    directory (default: the working directory).
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active benchmark scale ("small" or "paper")."""
    return SCALE
