"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  To keep
the suite runnable on a laptop, the default node counts are scaled down from
the paper's (hundreds instead of thousands of nodes); set the environment
variable ``CONTINU_BENCH_SCALE=paper`` to run at the paper's sizes (slow —
expect tens of minutes).  The benchmarked callables return the data they
produce, and each benchmark also prints a short summary so the regenerated
rows/series can be compared against EXPERIMENTS.md by eye.
"""

from __future__ import annotations

import os

import pytest

#: "small" (default) or "paper".
SCALE = os.environ.get("CONTINU_BENCH_SCALE", "small")


def scaled(small_value, paper_value):
    """Pick the small or paper-scale variant of a parameter."""
    return paper_value if SCALE == "paper" else small_value


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active benchmark scale ("small" or "paper")."""
    return SCALE
