"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  To keep
the suite runnable on a laptop, the default node counts are scaled down from
the paper's (hundreds instead of thousands of nodes); set the environment
variable ``CONTINU_BENCH_SCALE=paper`` to run at the paper's sizes (slow —
expect tens of minutes).  The benchmarked callables return the data they
produce, and each benchmark also prints a short summary so the regenerated
rows/series can be compared against EXPERIMENTS.md by eye.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: "small" (default) or "paper".
SCALE = os.environ.get("CONTINU_BENCH_SCALE", "small")

#: The repository root — the anchor for artifact placement, so artifacts
#: land in the same place no matter what directory pytest is invoked from.
_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where BENCH_*.json artifacts land (default: the repo root, where the
#: CI upload steps and .gitignore expect them).
ARTIFACT_DIR = Path(os.environ.get("CONTINU_BENCH_ARTIFACT_DIR", _REPO_ROOT))


def scaled(small_value, paper_value):
    """Pick the small or paper-scale variant of a parameter."""
    return paper_value if SCALE == "paper" else small_value


def write_bench_artifact(name: str, payload) -> Path:
    """Write a machine-readable benchmark artifact as ``BENCH_<name>.json``.

    Benchmarks that produce data worth tracking across commits (wall
    times, continuity aggregates) emit it here in addition to their
    printed summary; ``CONTINU_BENCH_ARTIFACT_DIR`` redirects the output
    directory (default: the repository root).
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active benchmark scale ("small" or "paper")."""
    return SCALE
