"""Figure 10 benchmark — per-round pre-fetch overhead track (static & dynamic).

Paper values (1000 nodes): near zero in the first seconds, then a stable
phase around 0.023 (static) and 0.03 (dynamic).
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig10_11_prefetch import run_prefetch_overhead_track


def test_bench_fig10_prefetch_track(benchmark):
    num_nodes = scaled(150, 1000)
    rounds = scaled(30, 30)

    tracks = benchmark.pedantic(
        run_prefetch_overhead_track,
        kwargs=dict(num_nodes=num_nodes, rounds=rounds, seed=0),
        rounds=1,
        iterations=1,
    )

    for label, track in tracks.items():
        series = ", ".join(f"{value:.4f}" for value in track.overhead)
        print(f"\n{label}: stable {track.stable_overhead:.4f}  track [{series}]")

    static = tracks["static"]
    dynamic = tracks["dynamic"]
    # The overhead is a small fraction of the data traffic in both cases.
    assert static.stable_overhead < 0.08
    assert dynamic.stable_overhead < 0.12
    # The very first round has (almost) no pre-fetch traffic: the urgent-line
    # trigger condition suppresses it while most nodes miss more than l segments.
    assert static.overhead[0] < 0.01
