"""Figure 6 benchmark — continuity track over 30 s with churn (dynamic).

Paper values (1000 nodes, 5% join + 5% leave per period): CoolStreaming
stabilises around 0.78, ContinuStreaming around 0.95; the improvement is
larger than in the static case.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig5_6_track import format_track, run_continuity_track


def test_bench_fig6_continuity_track_dynamic(benchmark):
    num_nodes = scaled(200, 1000)
    rounds = scaled(35, 30)

    results = benchmark.pedantic(
        run_continuity_track,
        kwargs=dict(num_nodes=num_nodes, rounds=rounds, dynamic=True, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_track(results))
    cool = results["coolstreaming"]
    conti = results["continustreaming"]
    # Shape: ContinuStreaming stays at least as continuous as CoolStreaming
    # under churn (the paper reports a larger gap here than in Figure 5).
    assert conti.stable_continuity >= cool.stable_continuity - 0.02
    assert 0.0 < cool.stable_continuity < 1.0
