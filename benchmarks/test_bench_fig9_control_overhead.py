"""Figure 9 benchmark — control overhead vs overlay size for M = 4, 5, 6.

Paper values: all combinations stay below 0.02, slightly above the analytic
``M / 495`` estimate because real continuity is below 1.0.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig9_control import format_control_overhead, run_control_overhead


def test_bench_fig9_control_overhead(benchmark):
    sizes = scaled([80, 150], [100, 500, 1000, 2000, 4000, 8000])
    rounds = scaled(25, 30)

    points = benchmark.pedantic(
        run_control_overhead,
        kwargs=dict(sizes=sizes, neighbor_counts=[4, 5, 6], rounds=rounds, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_control_overhead(points))
    for point in points:
        # The headline claim: control overhead is a minor part of the traffic.
        assert point.control_overhead < 0.05
    # More neighbours -> more buffer-map traffic, for every size.
    for size in {point.num_nodes for point in points}:
        by_m = {
            point.connected_neighbors: point.control_overhead
            for point in points
            if point.num_nodes == size
        }
        assert by_m[4] < by_m[6]
