"""Figure 8 benchmark — stable continuity vs overlay size, dynamic environments.

Paper trend: same ordering as Figure 7 but with lower absolute values under
the 5% + 5% per-period churn, and a larger ContinuStreaming increment.
"""

from __future__ import annotations

from conftest import scaled

from repro.experiments.fig7_8_scale import format_scale_sweep, run_scale_sweep


def test_bench_fig8_scale_dynamic(benchmark):
    sizes = scaled([80, 150, 250], [100, 500, 1000, 2000, 4000, 8000])
    rounds = scaled(30, 40)

    points = benchmark.pedantic(
        run_scale_sweep,
        kwargs=dict(sizes=sizes, dynamic=True, rounds=rounds, seed=0),
        rounds=1,
        iterations=1,
    )

    print("\n" + format_scale_sweep(points))
    for point in points:
        # Under churn ContinuStreaming must not fall behind the baseline.
        assert point.continustreaming >= point.coolstreaming - 0.05
        assert 0.0 < point.coolstreaming < 1.0
