"""FIFO segment buffer.

Each node buffers up to ``B`` segments (default 600 = 60 s of media at
``p = 10``).  The paper's replacement strategy is FIFO, and the *position* of
a segment inside a supplier's buffer — its distance from the buffer tail —
feeds the rarity estimate of the data scheduler (equation (2)): a segment
close to the head of a FIFO buffer is about to be evicted, hence "rare".

The buffer is a sliding window over segment ids.  ``head_id`` is the oldest id
the window can still hold; ids below it are considered expired regardless of
whether they were ever received.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set


class SegmentBuffer:
    """Sliding-window FIFO buffer of segment ids.

    The window covers ids ``[head_id, head_id + capacity)``.  Receiving a
    segment beyond the right edge slides the window forward, evicting the
    oldest ids (FIFO).

    Attributes:
        capacity: maximum number of segment ids the window spans (``B``).
    """

    __slots__ = ("capacity", "_head_id", "_present")

    def __init__(self, capacity: int, head_id: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if head_id < 0:
            raise ValueError(f"head_id must be >= 0, got {head_id}")
        self.capacity = int(capacity)
        self._head_id = int(head_id)
        self._present: Set[int] = set()

    # ------------------------------------------------------------------ window
    @property
    def head_id(self) -> int:
        """Oldest segment id the window can hold."""
        return self._head_id

    @property
    def tail_id(self) -> int:
        """One past the newest segment id the window can hold."""
        return self._head_id + self.capacity

    def in_window(self, segment_id: int) -> bool:
        """True if ``segment_id`` falls inside the current window."""
        return self._head_id <= segment_id < self.tail_id

    def advance_head(self, new_head_id: int) -> List[int]:
        """Slide the window so it starts at ``new_head_id``.

        Segments that fall off the left edge are evicted (FIFO) and their ids
        returned.  Moving the head backwards is a no-op.
        """
        if new_head_id <= self._head_id:
            return []
        evicted = [sid for sid in self._present if sid < new_head_id]
        self._present.difference_update(evicted)
        self._head_id = int(new_head_id)
        return sorted(evicted)

    # ---------------------------------------------------------------- contents
    def __len__(self) -> int:
        return len(self._present)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._present

    def add(self, segment_id: int) -> bool:
        """Insert ``segment_id`` if it lies inside (or ahead of) the window.

        If the id lies beyond the right edge the window slides forward so the
        new id becomes the newest slot (evicting old ids).  Ids older than the
        window head are rejected.

        Returns:
            True if the segment was stored, False if it was expired.
        """
        if segment_id < self._head_id:
            return False
        if segment_id >= self.tail_id:
            self.advance_head(segment_id - self.capacity + 1)
        self._present.add(int(segment_id))
        return True

    def discard(self, segment_id: int) -> None:
        """Remove ``segment_id`` if present."""
        self._present.discard(segment_id)

    def ids(self) -> List[int]:
        """Sorted list of segment ids currently held."""
        return sorted(self._present)

    def id_set(self) -> Set[int]:
        """A copy of the set of held segment ids."""
        return set(self._present)

    def missing_in_range(self, start_id: int, end_id: int) -> List[int]:
        """Ids in ``[start_id, end_id)`` that are *not* held (ascending)."""
        lo = max(start_id, 0)
        return [sid for sid in range(lo, end_id) if sid not in self._present]

    def has_range(self, start_id: int, count: int) -> bool:
        """True if all of ``start_id .. start_id+count-1`` are held."""
        return all((start_id + offset) in self._present for offset in range(count))

    def count_in_range(self, start_id: int, end_id: int) -> int:
        """Number of held ids inside ``[start_id, end_id)``."""
        if end_id - start_id < len(self._present):
            return sum(1 for sid in range(start_id, end_id) if sid in self._present)
        return sum(1 for sid in self._present if start_id <= sid < end_id)

    # ------------------------------------------------------------------ rarity
    def newest_id(self) -> Optional[int]:
        """Largest held id, or ``None`` if empty."""
        return max(self._present) if self._present else None

    def oldest_id(self) -> Optional[int]:
        """Smallest held id, or ``None`` if empty."""
        return min(self._present) if self._present else None

    def position_from_tail(self, segment_id: int) -> Optional[int]:
        """Distance of ``segment_id`` from the buffer tail (``p_ij`` in eq. 2).

        The tail is the newest end of the FIFO window, so a large distance
        means the segment is close to eviction.  Returns ``None`` when the
        segment is not held.
        """
        if segment_id not in self._present:
            return None
        return self.tail_id - 1 - segment_id

    def update_from(self, segment_ids: Iterable[int]) -> int:
        """Bulk-add segment ids; returns how many were accepted."""
        accepted = 0
        for sid in sorted(segment_ids):
            if self.add(sid):
                accepted += 1
        return accepted
