"""Media source.

The source node generates ``p`` new segments per simulated second and serves
them to its connected neighbours like any other supplier, except that it has
zero inbound rate and a much larger outbound rate (``I = 100`` segments/s in
the paper's setup).
"""

from __future__ import annotations

from typing import List

from repro.streaming.segment import DEFAULT_SEGMENT_BITS, Segment, SegmentStore


class MediaSource:
    """Generates the stream of data segments at a fixed playback rate.

    Attributes:
        playback_rate: segments generated per second (``p``).
        segment_bits: payload size of each segment in bits.
    """

    def __init__(
        self,
        playback_rate: float = 10.0,
        segment_bits: int = DEFAULT_SEGMENT_BITS,
        start_time: float = 0.0,
    ) -> None:
        if playback_rate <= 0:
            raise ValueError("playback_rate must be positive")
        self.playback_rate = float(playback_rate)
        self.segment_bits = int(segment_bits)
        self.start_time = float(start_time)
        self.store = SegmentStore()
        self._generated_up_to = -1  # highest segment id generated so far

    @property
    def newest_segment_id(self) -> int:
        """Highest segment id generated so far (-1 before the first one)."""
        return self._generated_up_to

    def segments_available_at(self, time: float) -> int:
        """Number of segments that exist at simulated ``time``.

        Segment ``i`` is generated at ``start_time + i / p``, so at time ``t``
        the ids ``0 .. floor((t - start_time) * p)`` exist.
        """
        if time < self.start_time:
            return 0
        return int((time - self.start_time) * self.playback_rate) + 1

    def generate_until(self, time: float) -> List[Segment]:
        """Generate every segment whose origin time is ``<= time``.

        Returns the newly generated segments in id order.  Idempotent: calling
        twice with the same time generates nothing the second time.
        """
        target = self.segments_available_at(time) - 1
        new_segments: List[Segment] = []
        while self._generated_up_to < target:
            self._generated_up_to += 1
            segment = Segment(
                segment_id=self._generated_up_to,
                size_bits=self.segment_bits,
                origin_time=self.start_time
                + self._generated_up_to / self.playback_rate,
            )
            self.store.add(segment)
            new_segments.append(segment)
        return new_segments

    def has_segment(self, segment_id: int) -> bool:
        """True if the source has generated ``segment_id`` already."""
        return 0 <= segment_id <= self._generated_up_to
