"""Streaming substrate: segments, buffers, buffer-maps, source, playback.

The media stream is modelled as a sequence of fixed-size data segments
(30 Kbit each at a 300 Kbps default stream rate, i.e. ``p = 10`` segments per
second of playback).  Every node keeps a FIFO buffer of ``B`` segments
(default 600, i.e. 60 seconds of media) and periodically exchanges a compact
buffer-map — 600 availability bits plus a 20-bit anchor id — with its
connected neighbours.
"""

from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMap, BUFFER_MAP_BITS
from repro.streaming.playback import PlaybackState, ContinuityTracker
from repro.streaming.segment import Segment, SegmentStore
from repro.streaming.source import MediaSource

__all__ = [
    "Segment",
    "SegmentStore",
    "SegmentBuffer",
    "BufferMap",
    "BUFFER_MAP_BITS",
    "MediaSource",
    "PlaybackState",
    "ContinuityTracker",
]
