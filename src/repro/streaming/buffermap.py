"""Buffer-map encoding used for the periodic buffer-information exchange.

Section 5.4.2 of the paper fixes the wire format we account for: ``B = 600``
availability bits (bit 1 = segment held) plus a 20-bit anchor recording the id
of the first segment of the window — the source emits at most
``3600 * 10 * 24 = 864 000`` segments per hour, which fits in 20 bits.  A
buffer-map message therefore costs ``620`` bits and exchanging maps with one
neighbour costs ``620`` bits of control traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

import numpy as np

from repro.streaming.buffer import SegmentBuffer

#: Number of bits used to encode the window anchor (first segment id).
ANCHOR_BITS = 20

#: Control-message size for a buffer of ``B`` segments, in bits.
def buffer_map_bits(capacity: int) -> int:
    """Size in bits of a buffer-map message for a buffer of ``capacity`` slots."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return capacity + ANCHOR_BITS


#: Size of the default 600-slot buffer-map message (620 bits).
BUFFER_MAP_BITS = buffer_map_bits(600)


@dataclass(frozen=True)
class BufferMap:
    """An immutable snapshot of a neighbour's buffer availability.

    Attributes:
        head_id: id of the first (oldest) slot of the advertised window.
        capacity: number of slots advertised (``B``).
        present: frozen set of segment ids the neighbour holds.
    """

    head_id: int
    capacity: int
    present: FrozenSet[int]

    @classmethod
    def from_buffer(cls, buffer: SegmentBuffer) -> "BufferMap":
        """Snapshot a live :class:`SegmentBuffer`."""
        return cls(
            head_id=buffer.head_id,
            capacity=buffer.capacity,
            present=frozenset(buffer.id_set()),
        )

    @property
    def tail_id(self) -> int:
        """One past the newest advertised slot."""
        return self.head_id + self.capacity

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self.present

    def size_bits(self) -> int:
        """Wire size of this buffer map in bits (``B`` bits + 20-bit anchor)."""
        return buffer_map_bits(self.capacity)

    def position_from_tail(self, segment_id: int) -> int:
        """Distance of ``segment_id`` from the buffer tail (``p_ij`` in eq. 2).

        The tail is the *effective* newest end of the supplier's FIFO buffer —
        the newest segment it actually holds — so the distance measures how
        soon the segment will be pushed out once the window starts sliding.
        (Using the nominal window edge instead would make every segment look
        equally close to eviction while the buffer is still filling up.)

        Raises:
            KeyError: if the segment is not advertised.
        """
        if segment_id not in self.present:
            raise KeyError(segment_id)
        effective_tail = min(self.tail_id - 1, max(self.present))
        return effective_tail - segment_id

    def available_after(self, segment_id: int) -> List[int]:
        """Advertised ids strictly greater than ``segment_id`` (ascending)."""
        return sorted(sid for sid in self.present if sid > segment_id)

    def to_bitmap(self) -> np.ndarray:
        """Dense ``uint8`` availability vector of length ``capacity``.

        Index ``j`` corresponds to segment ``head_id + j``.
        """
        bitmap = np.zeros(self.capacity, dtype=np.uint8)
        for sid in self.present:
            offset = sid - self.head_id
            if 0 <= offset < self.capacity:
                bitmap[offset] = 1
        return bitmap

    @classmethod
    def from_bitmap(cls, head_id: int, bitmap: Iterable[int]) -> "BufferMap":
        """Rebuild a buffer map from a dense availability vector."""
        bits = np.asarray(list(bitmap), dtype=np.uint8)
        present = frozenset(int(head_id + j) for j in np.nonzero(bits)[0])
        return cls(head_id=int(head_id), capacity=int(bits.size), present=present)

    # --------------------------------------------------------------- wire form
    def to_bytes(self) -> bytes:
        """Packed availability bits (8 slots per byte, zero-padded at the end).

        This is the byte payload the live runtime's wire codec ships; the
        *accounted* size stays :func:`buffer_map_bits` (``B`` bits + anchor),
        so the overhead metrics are unaffected by the byte padding.
        """
        return np.packbits(self.to_bitmap()).tobytes()

    @classmethod
    def from_bytes(cls, head_id: int, capacity: int, data: bytes) -> "BufferMap":
        """Rebuild a buffer map from its packed :meth:`to_bytes` payload.

        Raises:
            ValueError: if ``data`` does not hold exactly ``capacity`` bits
                (rounded up to whole bytes).
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        expected = (capacity + 7) // 8
        if len(data) != expected:
            raise ValueError(
                f"packed buffer map of capacity {capacity} needs {expected} "
                f"bytes, got {len(data)}"
            )
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))[:capacity]
        present = frozenset((np.nonzero(bits)[0] + int(head_id)).tolist())
        return cls(head_id=int(head_id), capacity=int(capacity), present=present)
