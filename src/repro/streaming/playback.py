"""Playback state and continuity accounting.

The paper's headline metric is *playback continuity*: per scheduling round,
the fraction of nodes that have collected sufficient data segments to play
back during that round (Section 5.3).  This is stricter than the per-segment
"continuity index" used by earlier systems — a node either can or cannot keep
playing this round.

A node's playback pointer ``idplay`` advances by ``p`` segments per second
whenever the node can play; when the required segments are missing the
playback stalls (the pointer still advances past segments whose deadline has
expired, modelling a viewer who skips, which matches the sliding-window
buffer head used by CoolStreaming-style systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.streaming.buffer import SegmentBuffer


@dataclass
class PlaybackState:
    """Per-node playback bookkeeping.

    Attributes:
        playback_rate: segments consumed per second (``p``).
        play_id: id of the segment currently being played (``idplay``).
        started: whether playback has begun.
        segments_played: total segments played on time.
        segments_missed: total segments whose deadline passed while missing.
    """

    playback_rate: float
    play_id: int = 0
    started: bool = False
    stall_on_miss: bool = True
    segments_played: int = 0
    segments_missed: int = 0
    stall_rounds: int = 0
    catchup_skips: int = 0

    def start(self, play_id: int) -> None:
        """Begin playback at ``play_id`` (a new node follows its neighbours)."""
        self.play_id = max(0, int(play_id))
        self.started = True

    def segments_per_round(self, round_duration: float) -> int:
        """How many segments must be consumed in one round of ``round_duration`` s."""
        return max(1, int(round(self.playback_rate * round_duration)))

    def can_play_round(self, buffer: SegmentBuffer, round_duration: float) -> bool:
        """True if the buffer holds every segment needed for the next round."""
        if not self.started:
            return False
        need = self.segments_per_round(round_duration)
        return buffer.has_range(self.play_id, need)

    def advance_round(
        self,
        buffer: SegmentBuffer,
        round_duration: float,
        newest_available_id: Optional[int] = None,
    ) -> bool:
        """Consume one round's worth of segments.

        The pointer never passes the live edge — a player cannot consume
        segments the source has not generated yet, so when
        ``newest_available_id`` is given the pointer is clamped to one past
        it.

        Two playback disciplines are supported:

        * ``stall_on_miss=True`` (default) — the player behaves like a real
          streaming client: if any segment of the round is missing it stalls
          (rebuffers), the pointer stays put, and the round counts as
          discontinuous.  The paper's playback-continuity metric — the
          fraction of nodes that "have collected sufficient data segments to
          playback" each round — is exactly the fraction of non-stalled nodes
          under this discipline.
        * ``stall_on_miss=False`` — hard live deadlines: the pointer advances
          regardless and missing segments are skipped (counted as missed).

        Returns True if the round was played continuously.
        """
        if not self.started:
            return False
        need = self.segments_per_round(round_duration)
        if newest_available_id is not None:
            need = max(0, min(need, newest_available_id + 1 - self.play_id))
        if need == 0:
            return True  # caught up with the live edge: nothing to play yet
        played = sum(1 for off in range(need) if (self.play_id + off) in buffer)
        missed = need - played
        continuous = missed == 0
        if self.stall_on_miss and not continuous:
            self.stall_rounds += 1
            self.segments_missed += missed
            return False
        self.segments_played += played
        self.segments_missed += missed
        self.play_id += need
        if not continuous:
            self.stall_rounds += 1
        return continuous

    def skip_forward_to(self, play_id: int) -> None:
        """Seek forward (catch-up skip) after falling too far behind the live
        edge; the skipped-over segments are not counted as played."""
        if play_id > self.play_id:
            self.catchup_skips += 1
            self.play_id = int(play_id)

    def continuity_index(self) -> float:
        """Fraction of consumed segments that arrived before their deadline."""
        total = self.segments_played + self.segments_missed
        if total == 0:
            return 1.0
        return self.segments_played / total


@dataclass
class ContinuityTracker:
    """System-wide playback-continuity time series.

    For every round we record the fraction of started, alive nodes that could
    play continuously that round, plus cumulative traffic counters used by the
    overhead metrics.
    """

    round_duration: float = 1.0
    continuity: List[float] = field(default_factory=list)
    nodes_sampled: List[int] = field(default_factory=list)
    times: List[float] = field(default_factory=list)

    def record_round(self, time: float, playing: int, total: int) -> float:
        """Record one round; returns the continuity value recorded."""
        value = 1.0 if total == 0 else playing / total
        self.times.append(float(time))
        self.continuity.append(value)
        self.nodes_sampled.append(int(total))
        return value

    def stable_phase_continuity(self, skip_rounds: Optional[int] = None) -> float:
        """Mean continuity over the stable phase.

        The paper observes the system enters its stable phase within ~30 s;
        by default we skip the first two thirds of the recorded rounds and
        average the rest.
        """
        if not self.continuity:
            return 0.0
        if skip_rounds is None:
            skip_rounds = (2 * len(self.continuity)) // 3
        tail = self.continuity[skip_rounds:]
        if not tail:
            tail = self.continuity[-1:]
        return float(sum(tail) / len(tail))

    def time_to_reach(self, threshold: float) -> Optional[float]:
        """First recorded time at which continuity reached ``threshold``."""
        for time, value in zip(self.times, self.continuity):
            if value >= threshold:
                return time
        return None

    def as_series(self) -> Dict[str, List[float]]:
        """Return the track as ``{"time": [...], "continuity": [...]}``."""
        return {"time": list(self.times), "continuity": list(self.continuity)}
