"""Data segments of the media stream.

Segments are identified by a monotonically increasing integer id.  The source
emits ``p`` segments per second, so segment ``i`` corresponds to playback
instant ``i / p`` seconds after the stream origin.  Only the id and the size
matter to the scheduling and pre-fetch algorithms; the payload is never
materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional

#: Default segment payload size used for overhead accounting (Section 5.2):
#: the stream is 300 Kbps and each segment holds 30 Kbit of media.
DEFAULT_SEGMENT_BITS = 30 * 1024


@dataclass(frozen=True)
class Segment:
    """A single media data segment.

    Attributes:
        segment_id: position of the segment in the stream (0-based).
        size_bits: payload size in bits, used only for overhead accounting.
        origin_time: simulated time at which the source generated it.
    """

    segment_id: int
    size_bits: int = DEFAULT_SEGMENT_BITS
    origin_time: float = 0.0

    def __post_init__(self) -> None:
        if self.segment_id < 0:
            raise ValueError(f"segment_id must be >= 0, got {self.segment_id}")
        if self.size_bits <= 0:
            raise ValueError(f"size_bits must be > 0, got {self.size_bits}")

    def deadline(self, playback_rate: float, startup_delay: float = 0.0) -> float:
        """Playback deadline of this segment for a node that started playback
        ``startup_delay`` seconds after the stream origin.

        Args:
            playback_rate: segments played per second (``p`` in the paper).
            startup_delay: extra slack before the node begins playback.
        """
        if playback_rate <= 0:
            raise ValueError("playback_rate must be positive")
        return self.origin_time + startup_delay + self.segment_id / playback_rate


class SegmentStore:
    """A keyed collection of :class:`Segment` objects.

    Used by the media source (all generated segments) and by the VoD backup
    store of each node.  Lookup, insertion and removal are ``O(1)``.
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Optional[Iterable[Segment]] = None) -> None:
        self._segments: Dict[int, Segment] = {}
        if segments is not None:
            for segment in segments:
                self.add(segment)

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def add(self, segment: Segment) -> None:
        """Insert (or overwrite) a segment."""
        self._segments[segment.segment_id] = segment

    def get(self, segment_id: int) -> Optional[Segment]:
        """Return the stored segment or ``None``."""
        return self._segments.get(segment_id)

    def remove(self, segment_id: int) -> Optional[Segment]:
        """Remove and return the segment, or ``None`` if absent."""
        return self._segments.pop(segment_id, None)

    def ids(self) -> list[int]:
        """Sorted list of stored segment ids."""
        return sorted(self._segments)

    def prune_older_than(self, min_segment_id: int) -> int:
        """Drop every segment with id strictly below ``min_segment_id``.

        Returns the number of segments removed.  The VoD backup store uses
        this to discard data that has passed every node's playback deadline.
        """
        stale = [sid for sid in self._segments if sid < min_segment_id]
        for sid in stale:
            del self._segments[sid]
        return len(stale)

    def total_bits(self) -> int:
        """Total payload size of all stored segments, in bits."""
        return sum(segment.size_bits for segment in self._segments.values())
