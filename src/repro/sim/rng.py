"""Deterministic random-number streams.

Every stochastic component in the simulator (topology generation, bandwidth
assignment, gossip partner choice, churn, DHT peer selection, ...) draws from
its own named stream derived from a single root seed, so that

* the whole experiment is reproducible from one integer, and
* adding randomness to one component does not perturb the draws seen by
  another (stream independence), which keeps A/B comparisons between
  CoolStreaming and ContinuStreaming paired on identical topologies and
  bandwidth assignments.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``(root_seed, name)`` via SHA-256.

    Deterministic and platform-independent, so both the per-component RNG
    streams and the campaign runner's per-cell seeds reproduce exactly.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


#: Backwards-compatible alias (the helper predates its public use).
_derive_seed = derive_seed


def spawn_generator(root_seed: int, name: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for ``name``."""
    return np.random.default_rng(_derive_seed(root_seed, name))


class RngStreams:
    """A registry of named, independent random streams.

    Example:
        >>> streams = RngStreams(seed=7)
        >>> a = streams.get("topology")
        >>> b = streams.get("bandwidth")
        >>> a is streams.get("topology")
        True
        >>> a is b
        False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream registered under ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = spawn_generator(self.seed, name)
            self._streams[name] = stream
        return stream

    def fork(self, name: str, index: Optional[int] = None) -> np.random.Generator:
        """Return a fresh, unregistered generator derived from ``name``.

        Useful for per-node streams: ``streams.fork("node", node_id)``.
        """
        label = name if index is None else f"{name}[{index}]"
        return spawn_generator(self.seed, label)

    def reset(self) -> None:
        """Drop every registered stream so the next ``get`` re-creates it."""
        self._streams.clear()

    def names(self) -> list[str]:
        """Names of the streams created so far (sorted)."""
        return sorted(self._streams)
