"""Discrete-event simulation engine used by every substrate.

The engine is deliberately small: a binary-heap event queue keyed by
``(time, sequence)`` plus helpers for deterministic, per-component random
number streams.  The streaming system itself advances in *scheduling rounds*
(period ``tau``) but message deliveries, DHT lookups and pre-fetches are
scheduled as events with real latencies inside each round.
"""

from repro.sim.engine import Event, EventQueue, SimulationClock, Simulator
from repro.sim.rng import RngStreams, spawn_generator

__all__ = [
    "Event",
    "EventQueue",
    "SimulationClock",
    "Simulator",
    "RngStreams",
    "spawn_generator",
]
