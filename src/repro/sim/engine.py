"""Minimal discrete-event simulation core.

The rest of the library only needs three things from the engine:

* a monotonically increasing simulated clock,
* an event queue ordered by ``(time, insertion sequence)`` so that ties are
  broken deterministically, and
* a simulator loop that pops events and invokes their callbacks until a time
  horizon or event budget is exhausted.

Events carry an arbitrary callback and payload; cancellation is supported by
marking the event rather than removing it from the heap (lazy deletion),
which keeps :meth:`EventQueue.push` and :meth:`EventQueue.pop` at
``O(log n)``.  So that heavy cancellation churn cannot grow the heap without
bound, the queue compacts itself — rebuilds the heap without the cancelled
entries — whenever cancelled events outnumber live ones
(see :meth:`EventQueue.cancel`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is driven incorrectly (e.g. time reversal)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``: events scheduled for the same instant run
    in the order they were scheduled, which makes simulations reproducible.
    """

    time: float
    seq: int
    callback: Callable[["Simulator", Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    popped: bool = field(compare=False, default=False)
    _queue: Optional["EventQueue"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Cancel this event so the simulator skips it when popped.

        Delegates to the owning queue (when scheduled) so the queue's
        live/cancelled tallies — and therefore compaction — stay correct no
        matter which cancellation path the caller uses.
        """
        if self._queue is not None:
            self._queue.cancel(self)
        else:
            self.cancelled = True


class SimulationClock:
    """Tracks the current simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            SimulationError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = float(time)


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    #: Heaps smaller than this are never compacted (rebuilds would cost more
    #: than the memory they reclaim).
    COMPACTION_MIN_SIZE = 8

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_count(self) -> int:
        """Cancelled events still occupying heap slots (awaiting compaction)."""
        return self._cancelled

    def push(
        self,
        time: float,
        callback: Callable[["Simulator", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback(sim, payload)`` at simulated ``time``."""
        event = Event(time=float(time), seq=next(self._counter), callback=callback,
                      payload=payload, _queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled = max(0, self._cancelled - 1)
                continue
            self._live -= 1
            event.popped = True
            return event
        self._live = 0
        self._cancelled = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled = max(0, self._cancelled - 1)
        if not self._heap:
            self._live = 0
            self._cancelled = 0
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Lazily cancel a previously scheduled event.

        When the cancelled entries come to outnumber the live ones (and the
        heap is big enough for a rebuild to pay off), the heap is compacted:
        lazy deletion stays ``O(log n)`` per operation, but a workload that
        cancels most of what it schedules no longer holds the dead entries
        until their pop time.

        Cancelling an event that already ran is a no-op: the event no longer
        occupies a heap slot, so counting it would corrupt the live and
        cancelled tallies.
        """
        if event.popped:
            return
        if not event.cancelled:
            event.cancelled = True
            self._live = max(0, self._live - 1)
            self._cancelled += 1
            if (
                len(self._heap) >= self.COMPACTION_MIN_SIZE
                and self._cancelled * 2 > len(self._heap)
            ):
                self.compact()

    def compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        if self._cancelled == 0:
            return
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def clear(self) -> None:
        """Drop every pending event.

        Outstanding :class:`Event` handles are invalidated so that a later
        ``cancel()`` through a stale handle cannot corrupt the tallies.
        """
        for event in self._heap:
            event.popped = True
        self._heap.clear()
        self._live = 0
        self._cancelled = 0

    def __iter__(self) -> Iterator[Event]:
        return (e for e in sorted(self._heap) if not e.cancelled)


class Simulator:
    """Event loop tying a :class:`SimulationClock` to an :class:`EventQueue`.

    Example:
        >>> sim = Simulator()
        >>> hits = []
        >>> _ = sim.schedule_at(1.5, lambda s, p: hits.append((s.now, p)), "x")
        >>> sim.run()
        >>> hits
        [(1.5, 'x')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulationClock(start_time)
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule an event at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        return self.queue.push(time, callback, payload)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["Simulator", Any], None],
        payload: Any = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.now + delay, callback, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.queue.cancel(event)

    def step(self) -> bool:
        """Process the next event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.callback(self, event.payload)
        self.events_processed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        Returns:
            The number of events processed by this call.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            if not self.step():
                break
            processed += 1
        if until is not None and self.now < until and self.queue.peek_time() is None:
            self.clock.advance_to(until)
        return processed
