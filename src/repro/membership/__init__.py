"""Membership substrate: bootstrap and overhearing-based maintenance.

A new node contacts the Rendezvous Point (RP) server, which assigns it a
unique ring id and returns a short list of existing nodes with close ids.
The joiner pings them, adopts the nearest alive node's Peer Table as the base
of its own, notifies the alive nodes of its arrival, and reports any dead
node back to the RP.  After joining, peer-table maintenance is driven almost
entirely by *overhearing* routing messages that pass through the node.
"""

from repro.membership.overhearing import OverhearingService
from repro.membership.rendezvous import JoinTicket, RendezvousPoint

__all__ = ["RendezvousPoint", "JoinTicket", "OverhearingService"]
