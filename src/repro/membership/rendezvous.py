"""Rendezvous Point (RP) server.

The RP server is the only centralised component: it hands out unique ring
ids and a short contact list of existing nodes with ids close to the
newcomer's.  It holds only a *partial* list of joined nodes (nodes report
failures they observe, and the RP lazily forgets them), so it is cheap to
operate and is never on the data path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.dht.ring import IdRing


@dataclass(frozen=True)
class JoinTicket:
    """What the RP hands a joining node: its id and a contact list."""

    node_id: int
    contacts: tuple[int, ...]


@dataclass
class RendezvousPoint:
    """Central bootstrap server handing out ids and contact lists.

    Attributes:
        ring: the identifier ring of the overlay.
        contact_list_size: how many close-id contacts to return per join.
    """

    ring: IdRing
    contact_list_size: int = 4
    _known: Set[int] = field(default_factory=set)
    _rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def seed_rng(self, rng: np.random.Generator) -> None:
        """Replace the id-assignment random stream (for reproducibility)."""
        self._rng = rng

    @property
    def known_nodes(self) -> List[int]:
        """Sorted ids the RP currently believes are alive."""
        return sorted(self._known)

    def register_existing(self, node_id: int) -> None:
        """Record a node that is already part of the overlay."""
        self._known.add(self.ring.normalize(node_id))

    def report_failure(self, node_id: int) -> None:
        """A member reported ``node_id`` as dead; forget it."""
        self._known.discard(self.ring.normalize(node_id))

    def _allocate_id(self, requested: Optional[int] = None) -> int:
        """Pick an unused ring id (random unless ``requested`` is free)."""
        if requested is not None:
            candidate = self.ring.normalize(requested)
            if candidate not in self._known:
                return candidate
        if len(self._known) >= self.ring.size:
            raise RuntimeError("identifier space exhausted")
        while True:
            candidate = int(self._rng.integers(self.ring.size))
            if candidate not in self._known:
                return candidate

    def _closest_contacts(self, node_id: int, count: int) -> List[int]:
        """Known nodes with the smallest ring distance to ``node_id``."""
        others = [n for n in self._known if n != node_id]
        if not others:
            return []
        others.sort(
            key=lambda n: min(
                self.ring.clockwise_distance(node_id, n),
                self.ring.counter_clockwise_distance(node_id, n),
            )
        )
        return others[:count]

    def admit(self, requested_id: Optional[int] = None) -> JoinTicket:
        """Admit a new node: assign an id and return close-id contacts."""
        node_id = self._allocate_id(requested_id)
        contacts = self._closest_contacts(node_id, self.contact_list_size)
        self._known.add(node_id)
        return JoinTicket(node_id=node_id, contacts=tuple(contacts))

    def handle_departure(self, node_id: int) -> None:
        """A node announced a graceful leave."""
        self._known.discard(self.ring.normalize(node_id))
