"""Overhearing-based peer-table maintenance.

After a node has joined, the paper's overlay needs almost no dedicated
maintenance traffic: every node *overhears* the DHT routing messages that
pass through it (each message carries the ids of the nodes on its path so
far) and records the senders in the Overheard Nodes part of its Peer Table.
Connected neighbours and DHT peers are then refreshed from that list — a
failed or unproductive neighbour is replaced by the lowest-latency overheard
node, and empty or stale finger levels are filled from overheard ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.dht.peer_table import NeighborEntry, OverheardEntry, PeerTable


@dataclass
class OverhearingService:
    """Applies overheard information to a node's :class:`PeerTable`.

    Args:
        latency_of: callable mapping ``(owner_id, peer_id)`` to the one-way
            latency estimate in milliseconds.
        is_alive: callable telling whether a node id is currently alive;
            used to avoid promoting departed nodes into the table.
    """

    latency_of: Callable[[int, int], float]
    is_alive: Callable[[int], bool]

    def overhear_path(
        self, table: PeerTable, path: Iterable[int], now: float = 0.0
    ) -> int:
        """Record every node on a routing path as overheard.

        Returns the number of entries recorded.  The owner itself and dead
        nodes are skipped.
        """
        recorded = 0
        for node_id in path:
            if node_id == table.owner_id or not self.is_alive(node_id):
                continue
            table.record_overheard(
                OverheardEntry(
                    peer_id=node_id,
                    latency_ms=self.latency_of(table.owner_id, node_id),
                    overheard_at=now,
                )
            )
            recorded += 1
        return recorded

    def refresh(self, table: PeerTable) -> int:
        """Refresh DHT peers from the overheard list; returns levels updated."""
        self._purge_dead(table)
        return table.refresh_dht_peers_from_overheard()

    def _purge_dead(self, table: PeerTable) -> None:
        """Drop dead nodes from every part of the table."""
        for peer_id in list(table.neighbors):
            if not self.is_alive(peer_id):
                table.remove_neighbor(peer_id)
        for level in list(table.dht_peers):
            if not self.is_alive(table.dht_peers[level].peer_id):
                del table.dht_peers[level]
        table.overheard = [e for e in table.overheard if self.is_alive(e.peer_id)]

    def replace_failed_neighbor(
        self,
        table: PeerTable,
        failed_id: int,
        exclude: Optional[Sequence[int]] = None,
    ) -> Optional[int]:
        """Replace a failed/unproductive neighbour with the best overheard node.

        Returns the id of the replacement, or ``None`` when no suitable
        overheard node exists (the slot is then simply freed).
        """
        table.remove_neighbor(failed_id)
        banned = set(exclude or ())
        banned.update(table.neighbor_ids())
        candidate = table.lowest_latency_overheard(exclude=banned)
        if candidate is None or not self.is_alive(candidate.peer_id):
            return None
        entry = NeighborEntry(
            peer_id=candidate.peer_id,
            latency_ms=candidate.latency_ms,
            recent_supply_rate=0.0,
        )
        if table.add_neighbor(entry):
            return candidate.peer_id
        return None

    def fill_neighbor_slots(
        self,
        table: PeerTable,
        candidates: Sequence[int],
    ) -> int:
        """Fill free connected-neighbour slots from a candidate id list.

        Used at join time (candidates = contacts + bootstrap neighbours) and
        after churn.  Returns the number of neighbours added.
        """
        added = 0
        for peer_id in candidates:
            if table.neighbor_slots_free() == 0:
                break
            if peer_id == table.owner_id or table.has_neighbor(peer_id):
                continue
            if not self.is_alive(peer_id):
                continue
            entry = NeighborEntry(
                peer_id=peer_id,
                latency_ms=self.latency_of(table.owner_id, peer_id),
            )
            if table.add_neighbor(entry):
                added += 1
        return added
