"""The parallel campaign runner.

A *campaign* fans a scenario × system × node-count × seed grid across
``multiprocessing`` workers and collects every cell's metrics into a
:class:`~repro.scenarios.results.ResultsStore`.  The grid can run on
either **backend**: the lock-step round simulator (``backend="sim"``) or
live asyncio swarms on the deterministic virtual clock
(``backend="runtime"``) — same per-cell seeding, same JSONL schema, same
summaries, so the paper's statistical claims can be checked against real
concurrent peers with the same tooling.  Three properties matter:

* **Deterministic per-cell seeding** — each cell's root seed is derived
  from ``(sweep seed, scenario, node count)`` via the same SHA-256
  construction the per-component RNG streams use
  (:func:`repro.sim.rng.derive_seed`), so cell results depend only on the
  cell's coordinates, never on scheduling order or worker count.  The
  protocol is deliberately excluded so systems sweeping the same cell are
  paired on identical topology/bandwidth/churn (see :func:`cell_seed_for`).
* **Parallel == serial** — workers receive self-contained, picklable cell
  payloads (the scenario's dict form) and return plain records; the parent
  reassembles them in grid order, so a 4-worker campaign produces
  byte-identical aggregated metrics to a serial one.
* **Streaming results** — cells are appended to the store (and its JSONL
  file) as the grid completes, per-seed first, aggregates afterwards.
"""

from __future__ import annotations

import multiprocessing
import re
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import ObsConfig
from repro.scenarios.results import CellResult, ResultsStore
from repro.scenarios.spec import ScenarioSpec, load_scenarios
from repro.sim.rng import derive_seed

#: The engines a campaign can fan its grid over: the lock-step round
#: simulator, live asyncio swarms on the deterministic virtual clock, or
#: sharded multi-process cluster swarms over real TCP sockets (wall
#: clock — throughput and scale, not bit-determinism; see
#: ``docs/cluster.md``).
BACKENDS = ("sim", "runtime", "cluster")


def cell_seed_for(seed: int, scenario: str, num_nodes: int) -> int:
    """The deterministic root seed of one campaign cell.

    Deliberately independent of the protocol — and of the backend: two
    systems (or the simulator and the live runtime) sweeping the same
    (seed, scenario, node count) share a root seed and therefore see the
    same topology, bandwidth assignment and churn schedule — the paired
    A/B methodology the rest of the repo uses (see ``run_comparison``), so
    continuity deltas isolate the protocol (or engine) rather than
    topology variance.
    """
    return derive_seed(seed, f"campaign/{scenario}/n{num_nodes}")


def cell_obs_filename(payload: Mapping[str, Any]) -> str:
    """The collision-free obs JSONL name of one grid cell.

    Every coordinate that distinguishes cells within a campaign —
    scenario, system, node count, sweep seed, backend, and (for
    non-default fidelity) the fidelity mode with its core size — lands
    in the name, so no two cells of one grid (or of a sim/runtime or
    hybrid/full re-run into the same directory) can overwrite each
    other's export.  Full-fidelity names stay exactly as before, so
    existing tooling keyed on them keeps resolving.
    """
    raw = (
        f"{payload['scenario']['name']}_{payload['system']}"
        f"_n{payload['num_nodes']}_s{payload['seed']}"
        f"_{payload.get('backend', 'sim')}"
    )
    fidelity = payload.get("fidelity") or "full"
    if fidelity != "full":
        raw += f"_{fidelity}"
        core_peers = payload.get("core_peers")
        if core_peers is not None:
            raw += f"-c{core_peers}"
    return f"obs_{re.sub(r'[^A-Za-z0-9._-]+', '-', raw)}.jsonl"


def run_cell(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one campaign cell; top-level so worker processes can pickle it.

    The payload is self-contained: the scenario's dict form plus the cell
    coordinates.  Returns the :meth:`CellResult.to_record` dict.

    A ``"runtime"`` backend cell runs the identical spec as a live swarm
    on the **virtual clock** (:mod:`repro.runtime.clock`), so the cell is
    exactly as deterministic and machine-independent as a simulator cell:
    the record depends only on the cell coordinates, with ``wall_time_s``
    the single wall-clock-dependent field.  Both backends report the same
    metric names (:data:`~repro.scenarios.results.METRIC_NAMES`), so the
    JSONL schema and the summary structure are byte-compatible.
    """
    backend = payload.get("backend", "sim")
    if backend not in BACKENDS:
        raise ValueError(f"unknown campaign backend {backend!r}; known: {BACKENDS}")
    spec = ScenarioSpec.from_dict(payload["scenario"]).scaled(
        num_nodes=payload["num_nodes"],
        rounds=payload["rounds"],
        seed=payload["cell_seed"],
        system=payload["system"],
    )
    obs_cfg = payload.get("obs")
    fidelity = payload.get("fidelity") or "full"
    start = time.perf_counter()
    if backend == "runtime":
        from repro.runtime.swarm import DEFAULT_TIME_SCALE, LiveSwarm

        time_scale = payload.get("time_scale") or DEFAULT_TIME_SCALE
        if fidelity == "hybrid":
            from repro.runtime.slim import HybridSwarm

            result = HybridSwarm(
                spec,
                core_peers=payload.get("core_peers"),
                time_scale=time_scale,
                clock="virtual",
                obs=obs_cfg,
            ).run()
        else:
            result = LiveSwarm(
                spec, time_scale=time_scale, clock="virtual", obs=obs_cfg
            ).run()
        joined, left = float(result.peers_joined), float(result.peers_left)
    elif backend == "cluster":
        from repro.runtime.cluster import run_cluster

        result = run_cluster(
            spec,
            shards=payload.get("shards") or 2,
            time_scale=payload.get("time_scale"),
            obs=obs_cfg,
            fidelity=fidelity,
            core_peers=payload.get("core_peers"),
        )
        joined, left = float(result.peers_joined), float(result.peers_left)
    else:
        result = spec.run()
        joined = float(sum(r.nodes_joined for r in result.rounds))
        left = float(sum(r.nodes_left for r in result.rounds))
    wall_time = time.perf_counter() - start
    obs_dir = payload.get("obs_dir")
    if obs_dir and getattr(result, "obs", None):
        from repro.obs import write_obs_jsonl

        out_dir = Path(obs_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        write_obs_jsonl(out_dir / cell_obs_filename(payload), result.obs)
    series = result.continuity_series()
    metrics = {
        "stable_continuity": float(result.stable_continuity()),
        "mean_continuity": float(sum(series) / len(series)) if series else 0.0,
        "final_continuity": float(series[-1]) if series else 0.0,
        "prefetch_overhead": float(result.prefetch_overhead()),
        "control_overhead": float(result.control_overhead()),
        "nodes_joined": joined,
        "nodes_left": left,
    }
    return CellResult(
        scenario=payload["scenario"]["name"],
        system=payload["system"],
        num_nodes=payload["num_nodes"],
        seed=payload["seed"],
        cell_seed=payload["cell_seed"],
        rounds=payload["rounds"],
        backend=backend,
        metrics=metrics,
        wall_time_s=wall_time,
    ).to_record()


def _cell_coordinates(payloads: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """The identifying coordinates of not-yet-finished cells (no spec dump)."""
    return [
        {
            "scenario": payload["scenario"]["name"],
            "system": payload["system"],
            "num_nodes": payload["num_nodes"],
            "seed": payload["seed"],
        }
        for payload in payloads
    ]


@dataclass(frozen=True)
class CampaignSpec:
    """The grid one campaign sweeps.

    Attributes:
        scenarios: the scenario specs to run.
        seeds: sweep seeds; each becomes one cell per grid point.
        node_counts: overlay sizes; ``None`` uses each scenario's own.
        systems: protocol names; ``None`` uses each scenario's own.
        rounds: round-count override; ``None`` uses each scenario's own.
        backend: the engine every cell runs on — ``"sim"`` (default),
            ``"runtime"`` (live virtual-clock swarms) or ``"cluster"``
            (sharded multi-process swarms over TCP, wall clock); per-cell
            seeds are backend-independent so sweeps of the same grid pair
            on identical overlays.  Cluster cells carry wall-clock noise
            in their metrics — they measure scale, not determinism.
        time_scale: runtime/cluster-backend period compression; ``None``
            uses each backend's default (irrelevant to the sim backend;
            on the virtual clock it shifts relative link-latency
            granularity only, not wall time).
        shards: worker processes per cluster-backend cell (ignored by
            the other backends).
        obs: observability plane for runtime/cluster-backend cells
            (:class:`~repro.obs.ObsConfig` is picklable, so it ships in
            the cell payloads); the sim backend has no obs plane and
            rejects it.
        obs_dir: directory for per-cell obs JSONL exports, named by
            :func:`cell_obs_filename` so grid cells never collide;
            requires ``obs``.
        fidelity: ``"full"`` (default) runs every peer live;
            ``"hybrid"`` runs a live core plus an array-backed slim tier
            (:mod:`repro.runtime.slim`) on the runtime/cluster backends.
        core_peers: live-core size for hybrid cells; ``None`` picks the
            default (requires ``fidelity="hybrid"``).
    """

    scenarios: Tuple[ScenarioSpec, ...]
    seeds: Tuple[int, ...] = (0,)
    node_counts: Optional[Tuple[int, ...]] = None
    systems: Optional[Tuple[str, ...]] = None
    rounds: Optional[int] = None
    backend: str = "sim"
    time_scale: Optional[float] = None
    shards: int = 2
    obs: Optional[ObsConfig] = None
    obs_dir: Optional[str] = None
    fidelity: str = "full"
    core_peers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown campaign backend {self.backend!r}; known: {BACKENDS}"
            )
        if self.time_scale is not None and self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.obs is not None and self.backend == "sim":
            raise ValueError(
                "the sim backend has no observability plane; obs campaigns "
                "need --backend runtime or cluster"
            )
        if self.obs_dir is not None and self.obs is None:
            raise ValueError("obs_dir needs an obs config")
        if self.fidelity not in ("full", "hybrid"):
            raise ValueError(
                f"fidelity must be 'full' or 'hybrid', got {self.fidelity!r}"
            )
        if self.fidelity == "hybrid" and self.backend == "sim":
            raise ValueError(
                "the sim backend has no hybrid tier; hybrid campaigns need "
                "--backend runtime or cluster"
            )
        if self.core_peers is not None:
            if self.fidelity != "hybrid":
                raise ValueError("core_peers only applies to fidelity='hybrid'")
            if self.core_peers < 2:
                raise ValueError("core_peers must be >= 2")
        names = [scenario.name for scenario in self.scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            # Per-cell seeds and result groups key on the scenario name, so
            # two different workloads sharing a name would silently merge.
            raise ValueError(
                f"duplicate scenario names in campaign: {duplicates}; "
                f"rename the specs so results and seeds stay distinguishable"
            )
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.node_counts is not None:
            object.__setattr__(
                self, "node_counts", tuple(int(n) for n in self.node_counts)
            )
        if self.systems is not None:
            object.__setattr__(self, "systems", tuple(self.systems))

    def cell_payloads(self) -> List[Dict[str, Any]]:
        """Every cell of the grid, in deterministic grid order."""
        payloads: List[Dict[str, Any]] = []
        for scenario in self.scenarios:
            scenario_dict = scenario.to_dict()
            systems = self.systems or (scenario.system,)
            node_counts = self.node_counts or (scenario.num_nodes,)
            rounds = scenario.rounds if self.rounds is None else self.rounds
            for system in systems:
                for num_nodes in node_counts:
                    for seed in self.seeds:
                        payloads.append(
                            {
                                "scenario": scenario_dict,
                                "system": system,
                                "num_nodes": num_nodes,
                                "rounds": rounds,
                                "seed": seed,
                                "cell_seed": cell_seed_for(
                                    seed, scenario.name, num_nodes
                                ),
                                "backend": self.backend,
                                "time_scale": self.time_scale,
                                "shards": self.shards,
                                "obs": self.obs,
                                "obs_dir": self.obs_dir,
                                "fidelity": self.fidelity,
                                "core_peers": self.core_peers,
                            }
                        )
        return payloads


class CampaignRunner:
    """Runs a :class:`CampaignSpec` across ``workers`` processes.

    Args:
        campaign: the grid to sweep.
        workers: worker processes; ``1`` runs serially in-process (no
            multiprocessing involved), which is also the fallback for
            single-cell grids.
    """

    def __init__(self, campaign: CampaignSpec, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.campaign = campaign
        self.workers = workers

    def run(self, store: Optional[ResultsStore] = None) -> ResultsStore:
        """Sweep the grid and return the populated results store.

        Cells are appended to the store (and its JSONL file) as they
        complete — in grid order either way, so an interrupted campaign
        keeps its finished prefix and a finished one is identical
        regardless of worker count.

        A ``KeyboardInterrupt`` (Ctrl-C) or a dying worker does not lose
        the run: the cells already finished stay flushed to the JSONL
        file, the store is marked incomplete with the reason and the
        missing cell coordinates, and the partial store is returned
        instead of the exception propagating.
        """
        payloads = self.campaign.cell_payloads()
        store = store if store is not None else ResultsStore()
        completed = 0
        # Cluster cells spawn their own shard processes; pool workers are
        # daemonic and cannot have children, so a cluster-backend grid
        # always runs its cells serially (each cell is already parallel).
        use_pool = self.workers > 1 and len(payloads) > 1 and self.campaign.backend != "cluster"
        try:
            if use_pool:
                processes = min(self.workers, len(payloads))
                with multiprocessing.get_context().Pool(processes=processes) as pool:
                    for record in pool.imap(run_cell, payloads):
                        store.append(CellResult.from_record(record))
                        completed += 1
            else:
                for payload in payloads:
                    store.append(CellResult.from_record(run_cell(payload)))
                    completed += 1
        except KeyboardInterrupt:
            store.mark_incomplete(
                "interrupted by user (KeyboardInterrupt)",
                missing_cells=_cell_coordinates(payloads[completed:]),
            )
        except Exception as exc:  # worker death or a failing cell
            # Keep the full traceback visible — the store only records a
            # one-line reason, and silently eating the details would make
            # a broken run_cell much harder to debug.
            traceback.print_exc(file=sys.stderr)
            store.mark_incomplete(
                f"worker failed: {type(exc).__name__}: {exc}",
                missing_cells=_cell_coordinates(payloads[completed:]),
            )
        return store


def run_campaign(
    scenarios: Sequence[Union[str, Path, ScenarioSpec]],
    seeds: Sequence[int] = (0,),
    node_counts: Optional[Sequence[int]] = None,
    systems: Optional[Sequence[str]] = None,
    rounds: Optional[int] = None,
    workers: int = 1,
    results_path: Optional[Union[str, Path]] = None,
    backend: str = "sim",
    time_scale: Optional[float] = None,
    shards: int = 2,
    obs: Optional[ObsConfig] = None,
    obs_dir: Optional[Union[str, Path]] = None,
    fidelity: str = "full",
    core_peers: Optional[int] = None,
) -> ResultsStore:
    """Convenience wrapper: resolve scenarios, build the grid, run it.

    ``scenarios`` may mix :class:`ScenarioSpec` objects, spec file paths
    and built-in scenario names.  ``backend="runtime"`` fans the same grid
    over live virtual-clock swarms instead of the simulator (identical
    per-cell seeding, JSONL schema and summaries); ``backend="cluster"``
    runs each cell as a ``shards``-process swarm over real TCP (cells run
    serially — each one already owns several processes).
    """
    campaign = CampaignSpec(
        scenarios=load_scenarios(scenarios),
        seeds=tuple(seeds),
        node_counts=None if node_counts is None else tuple(node_counts),
        systems=None if systems is None else tuple(systems),
        rounds=rounds,
        backend=backend,
        time_scale=time_scale,
        shards=shards,
        obs=obs,
        obs_dir=None if obs_dir is None else str(obs_dir),
        fidelity=fidelity,
        core_peers=core_peers,
    )
    store = ResultsStore(path=results_path)
    return CampaignRunner(campaign, workers=workers).run(store)
