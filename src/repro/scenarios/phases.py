"""Scenario-specific pipeline phases.

These plug into the standard round pipeline through the
``StreamingSystem(config, pipeline=...)`` hook — scenario features that
would otherwise require core-code branches become ordinary
:class:`~repro.core.phases.base.Phase` objects inserted by
:meth:`~repro.scenarios.spec.ScenarioSpec.build_pipeline`.
"""

from __future__ import annotations

from repro.core.phases.base import Phase, PhaseReport, RoundContext


class LossyNetworkPhase(Phase):
    """Throughput-level model of a lossy network.

    Real pull-based streaming runs over TCP, where a packet-loss rate ``q``
    shows up as a throughput reduction (retransmissions and congestion
    backoff eat goodput) rather than as missing segments.  This phase
    therefore scales every node's per-period inbound and outbound budget by
    ``1 - loss_rate`` after the gossip phase computes them and before the
    scheduler spends them.

    It must sit between :class:`~repro.core.phases.gossip.BufferMapGossipPhase`
    (which fills ``ctx.inbound_budget`` / ``ctx.outbound_budget``) and
    :class:`~repro.core.phases.scheduling.DataSchedulingPhase` (which
    consumes them); :meth:`ScenarioSpec.build_pipeline` inserts it there.
    """

    name = "lossy-network"
    timing = "start"

    def __init__(self, loss_rate: float) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        self.loss_rate = float(loss_rate)

    def execute(self, ctx: RoundContext) -> PhaseReport:
        factor = 1.0 - self.loss_rate
        for node_id in ctx.inbound_budget:
            ctx.inbound_budget[node_id] *= factor
        for node_id in ctx.outbound_budget:
            ctx.outbound_budget[node_id] *= factor
        return self.report(
            loss_rate=self.loss_rate,
            nodes_throttled=float(len(ctx.inbound_budget)),
        )
