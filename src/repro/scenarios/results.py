"""The unified results store for scenario campaigns.

Every campaign cell (scenario × system × node count × seed) produces one
:class:`CellResult`; a :class:`ResultsStore` collects them, optionally
streaming each as a JSONL line to disk, and aggregates per-group summary
statistics (mean / std / min / max / 95% CI) over seeds.

Wall-clock time is recorded per cell for capacity planning but kept *out*
of the aggregated metric summary, so a campaign's summary is byte-identical
regardless of worker count or machine speed.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.analysis.metrics import summarize_runs

#: The metric names every cell reports, in output order.
METRIC_NAMES: Tuple[str, ...] = (
    "stable_continuity",
    "mean_continuity",
    "final_continuity",
    "prefetch_overhead",
    "control_overhead",
    "nodes_joined",
    "nodes_left",
)


@dataclass(frozen=True)
class CellResult:
    """The metrics of one campaign cell.

    Attributes:
        scenario: the scenario name the cell ran.
        system: the protocol name.
        num_nodes: the overlay size.
        seed: the sweep seed the user asked for.
        cell_seed: the derived root seed the simulation actually used.
        rounds: scheduling periods simulated.
        backend: which engine ran the cell — ``"sim"`` (the lock-step
            round simulator), ``"runtime"`` (a live swarm on the
            deterministic virtual clock) or ``"cluster"`` (a sharded
            multi-process swarm over TCP; wall clock, so its metrics
            carry scheduling noise).  All report the identical metric
            schema (:data:`METRIC_NAMES`).
        metrics: named scalar results (see :data:`METRIC_NAMES`).
        wall_time_s: wall-clock seconds the cell took (not aggregated,
            and the *only* machine-dependent field of a record — see
            docs/scenarios.md on campaign determinism).
    """

    scenario: str
    system: str
    num_nodes: int
    seed: int
    cell_seed: int
    rounds: int
    backend: str = "sim"
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def group_key(self) -> str:
        """The aggregation group this cell belongs to."""
        return f"{self.scenario}/{self.system}/n{self.num_nodes}"

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe dict form; inverse of :meth:`from_record`."""
        return asdict(self)

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "CellResult":
        data = dict(record)
        data["metrics"] = {k: float(v) for k, v in dict(data["metrics"]).items()}
        return cls(**data)


class ResultsStore:
    """Collects campaign cell results and aggregates them.

    Args:
        path: optional JSONL file; when given, every appended cell is
            written as one line immediately (so a long campaign's partial
            results survive an interruption).  An existing file is
            truncated — a store represents one campaign run.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._results: List[CellResult] = []
        self.incomplete_reason: Optional[str] = None
        self.missing_cells: List[Dict[str, Any]] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("", encoding="utf-8")

    # ------------------------------------------------------------------ recording
    def append(self, result: CellResult) -> None:
        """Record one cell result (and stream it to the JSONL file)."""
        self._results.append(result)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(result.to_record(), sort_keys=True) + "\n")

    @property
    def is_complete(self) -> bool:
        """False once :meth:`mark_incomplete` has recorded an aborted run."""
        return self.incomplete_reason is None

    def mark_incomplete(
        self, reason: str, missing_cells: Optional[List[Dict[str, Any]]] = None
    ) -> None:
        """Record that the campaign aborted before sweeping every cell.

        The cells finished so far stay in the store (and were already
        streamed to the JSONL file line by line); a trailing marker line
        records why the run stopped and which grid cells are missing, so a
        partial results file is self-describing instead of silently looking
        like a smaller campaign.
        """
        self.incomplete_reason = str(reason)
        self.missing_cells = [dict(cell) for cell in (missing_cells or [])]
        if self.path is not None:
            marker = {
                "incomplete_reason": self.incomplete_reason,
                "missing_cells": self.missing_cells,
            }
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(marker, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self._results)

    @property
    def results(self) -> Tuple[CellResult, ...]:
        return tuple(self._results)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultsStore":
        """Rebuild an in-memory store from a JSONL file (without re-writing it)."""
        store = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "incomplete_reason" in record:
                store.incomplete_reason = record["incomplete_reason"]
                store.missing_cells = list(record.get("missing_cells", []))
                continue
            store._results.append(CellResult.from_record(record))
        return store

    # ---------------------------------------------------------------- aggregation
    def summary(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-group aggregate statistics over seeds.

        Returns a mapping ``group_key -> metric -> {mean, std, min, max,
        count, ci95}`` where ``std`` is the population standard deviation
        (matching :func:`~repro.analysis.metrics.summarize_runs`) and
        ``ci95`` is the normal-approximation 95% confidence half-width
        ``1.96 · s / sqrt(count)`` computed from the *sample* standard
        deviation ``s`` (ddof=1) — at the small seed counts campaigns use,
        the population std would understate the interval.  Groups and
        metrics are sorted, so equal inputs serialise byte-identically.
        """
        groups: Dict[str, List[CellResult]] = {}
        for result in self._results:
            groups.setdefault(result.group_key, []).append(result)
        summary: Dict[str, Dict[str, Dict[str, float]]] = {}
        for key in sorted(groups):
            cells = groups[key]
            metric_names = sorted({name for cell in cells for name in cell.metrics})
            per_metric: Dict[str, Dict[str, float]] = {}
            for metric in metric_names:
                values = [cell.metrics[metric] for cell in cells if metric in cell.metrics]
                stats = summarize_runs(values)
                count = stats["count"]
                if count > 1:
                    sample_std = stats["std"] * math.sqrt(count / (count - 1.0))
                    stats["ci95"] = 1.96 * sample_std / math.sqrt(count)
                else:
                    stats["ci95"] = 0.0
                per_metric[metric] = stats
            summary[key] = per_metric
        return summary

    def total_wall_time_s(self) -> float:
        """Sum of per-cell wall-clock seconds (CPU cost, not elapsed time)."""
        return float(sum(result.wall_time_s for result in self._results))

    def write_summary(self, path: Union[str, Path]) -> Path:
        """Write :meth:`summary` as pretty-printed, key-sorted JSON.

        An aborted campaign's summary additionally carries a top-level
        ``__incomplete__`` entry (reason + missing cell coordinates); a
        completed campaign's file is unchanged.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, Any] = dict(self.summary())
        if not self.is_complete:
            payload["__incomplete__"] = {
                "reason": self.incomplete_reason,
                "missing_cells": self.missing_cells,
            }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def format_incomplete(self) -> str:
        """One warning line for an aborted campaign ('' when complete)."""
        if self.is_complete:
            return ""
        return (
            f"WARNING: campaign incomplete ({self.incomplete_reason}); "
            f"{len(self)} cells finished, {len(self.missing_cells)} missing"
        )

    # ------------------------------------------------------------------ rendering
    def format_results(self) -> str:
        """Per-cell lines (the campaign CLI's per-seed output)."""
        lines = []
        for result in self._results:
            metrics = result.metrics
            lines.append(
                f"{result.group_key} seed={result.seed}: "
                f"continuity {metrics.get('stable_continuity', float('nan')):.4f} "
                f"(mean {metrics.get('mean_continuity', float('nan')):.4f}), "
                f"prefetch overhead {metrics.get('prefetch_overhead', float('nan')):.4f}, "
                f"+{metrics.get('nodes_joined', 0):.0f}/-{metrics.get('nodes_left', 0):.0f} nodes, "
                f"{result.wall_time_s:.2f}s"
            )
        return "\n".join(lines)

    def format_summary(self) -> str:
        """Aggregate table: one line per group, mean ± CI for key metrics."""
        lines = []
        for key, metrics in self.summary().items():
            parts = []
            for metric in ("stable_continuity", "prefetch_overhead", "control_overhead"):
                stats = metrics.get(metric)
                if stats is None:
                    continue
                parts.append(
                    f"{metric} {stats['mean']:.4f} ± {stats['ci95']:.4f}"
                )
            count = next(iter(metrics.values()))["count"] if metrics else 0
            lines.append(f"{key} ({count:.0f} seeds): " + ", ".join(parts))
        return "\n".join(lines)
