"""The built-in scenario library.

Six named workloads cover the paper's two evaluation environments plus the
stress axes the related work motivates — flash crowds and diurnal audience
waves (live events), massive correlated failures (CliqueStream's clustered
fault-resilience stress), and heterogeneous access-technology swarms
(Mykoniati et al.).  Each is an ordinary :class:`ScenarioSpec`: scale it
with :meth:`~repro.scenarios.spec.ScenarioSpec.scaled`, or use it as a
starting point for a custom YAML/JSON spec (``builtin_scenario(name)
.to_file("my.json")``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.bandwidth import BandwidthClass
from repro.net.churn import (
    BlackoutChurn,
    ConstantChurn,
    DiurnalChurn,
    FlashCrowdChurn,
)
from repro.scenarios.spec import ScenarioSpec

#: 20% ethernet / 50% cable / 30% DSL, in segments/s.  The weighted mean
#: uplink stays near the paper's 15 segments/s so the swarm remains
#: supply-feasible; the class spread is what changes.
HETERO_SWARM_CLASSES: Tuple[BandwidthClass, ...] = (
    BandwidthClass(name="ethernet", fraction=0.2, min_inbound=25.0, max_inbound=33.0),
    BandwidthClass(
        name="cable",
        fraction=0.5,
        min_inbound=14.0,
        max_inbound=25.0,
        min_outbound=10.0,
        max_outbound=16.0,
    ),
    BandwidthClass(
        name="dsl",
        fraction=0.3,
        min_inbound=10.0,
        max_inbound=14.0,
        min_outbound=8.0,
        max_outbound=12.0,
    ),
)

BUILTIN_SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="static",
            description="The paper's static environment: fixed membership, "
            "uniform heterogeneous bandwidth.",
        ),
        ScenarioSpec(
            name="paper-dynamic",
            description="The paper's dynamic environment: 5% of nodes leave "
            "and 5% join every scheduling period.",
            churn=ConstantChurn(leave_fraction=0.05, join_fraction=0.05),
        ),
        ScenarioSpec(
            name="flash-crowd",
            description="A live event goes viral: a 25%-per-round join spike "
            "for 3 rounds, then an elevated-leave drain.",
            churn=FlashCrowdChurn(
                base_leave_fraction=0.01,
                base_join_fraction=0.01,
                spike_round=5,
                spike_duration=3,
                spike_join_fraction=0.25,
                drain_duration=5,
                drain_leave_fraction=0.08,
            ),
        ),
        ScenarioSpec(
            name="diurnal",
            description="A daily audience wave compressed into 20 rounds: "
            "joins and leaves move in anti-phase, so the audience swells "
            "and ebbs once per cycle.",
            churn=DiurnalChurn(
                base_leave_fraction=0.04,
                base_join_fraction=0.04,
                amplitude=0.75,
                period_rounds=20,
            ),
        ),
        ScenarioSpec(
            name="blackout",
            description="A massive correlated failure: 30% of the overlay "
            "vanishes in one round, then the audience reconnects.",
            churn=BlackoutChurn(
                base_leave_fraction=0.01,
                base_join_fraction=0.01,
                blackout_round=10,
                failure_fraction=0.30,
                recovery_duration=4,
                recovery_join_fraction=0.08,
            ),
        ),
        ScenarioSpec(
            name="hetero-swarm",
            description="Heterogeneous access technologies (20% ethernet / "
            "50% cable / 30% DSL) on a mildly lossy network.",
            bandwidth_classes=HETERO_SWARM_CLASSES,
            loss_rate=0.02,
        ),
    )
}


def builtin_names() -> Tuple[str, ...]:
    """The built-in scenario names, in definition order."""
    return tuple(BUILTIN_SCENARIOS)


def builtin_scenario(name: str) -> ScenarioSpec:
    """The built-in scenario registered under ``name``.

    Raises:
        ValueError: for unknown names (lists the known ones).
    """
    spec = BUILTIN_SCENARIOS.get(name)
    if spec is None:
        known = ", ".join(builtin_names())
        raise ValueError(f"unknown scenario {name!r}; built-in scenarios: {known}")
    return spec
