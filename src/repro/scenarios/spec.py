"""Declarative scenario specifications.

A :class:`ScenarioSpec` composes the axes a streaming workload varies on —
churn schedule, bandwidth-class mix, loss rate, latency assumption, overlay
size — into a runnable simulation without touching core code:

* churn becomes a :class:`~repro.net.churn.ChurnSchedule` driven by the
  overlay's existing :class:`~repro.net.churn.ChurnProcess`;
* a bandwidth-class mix swaps a
  :class:`~repro.net.bandwidth.ClassMixBandwidthModel` onto the
  :class:`~repro.core.overlay.OverlayManager` before ``build()``;
* a loss rate inserts a
  :class:`~repro.scenarios.phases.LossyNetworkPhase` into the protocol's
  pipeline via the standard ``StreamingSystem(config, pipeline=...)`` hook;
* everything else flows through :class:`~repro.core.config.SystemConfig`.

Specs are plain data: they round-trip through ``to_dict``/``from_dict`` and
load from YAML or JSON files (:meth:`ScenarioSpec.from_file`), which is what
the campaign runner ships across ``multiprocessing`` workers.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.phases import END, Phase, ProtocolRegistry
from repro.core.system import SimulationResult, StreamingSystem
from repro.net.bandwidth import BandwidthClass, ClassMixBandwidthModel
from repro.net.churn import ChurnSchedule, ConstantChurn, schedule_from_dict
from repro.scenarios.phases import LossyNetworkPhase

#: ``SystemConfig`` fields the spec's own fields control; allowing them in
#: ``config_overrides`` too would let :meth:`ScenarioSpec.to_config`
#: silently overwrite a user's value.
_RESERVED_OVERRIDE_KEYS = frozenset(
    {"num_nodes", "rounds", "seed", "leave_fraction", "join_fraction",
     "churn_schedule", "hop_latency_ms"}
)

#: ``SystemConfig`` bandwidth fields that a ``bandwidth_classes`` mix
#: replaces wholesale — overriding them alongside a mix would be silently
#: ignored, so it is rejected instead.
_BANDWIDTH_OVERRIDE_KEYS = frozenset(
    {"mean_inbound", "min_inbound", "max_inbound", "heterogeneous"}
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative streaming workload.

    Attributes:
        name: scenario identifier (used in results and per-cell seeds).
        description: one-line human summary.
        num_nodes: overlay size, including the media source.
        rounds: scheduling periods to simulate.
        seed: root RNG seed (campaigns override this per cell).
        system: protocol name known to the
            :class:`~repro.core.phases.registry.ProtocolRegistry`.
        churn: time-varying churn schedule; ``None`` means static.
        bandwidth_classes: access-technology mix; ``None`` keeps the
            config's uniform heterogeneous draw.
        loss_rate: fraction of per-period bandwidth lost to an unreliable
            network (modelled as a throughput reduction; see
            :class:`~repro.scenarios.phases.LossyNetworkPhase`).
        hop_latency_ms: assumed mean one-hop latency; ``None`` estimates it
            from the trace (the :class:`~repro.core.config.SystemConfig`
            default).
        config_overrides: extra :class:`~repro.core.config.SystemConfig`
            keyword overrides (buffer sizes, prefetch limits, ...).
    """

    name: str
    description: str = ""
    num_nodes: int = 200
    rounds: int = 30
    seed: int = 0
    system: str = "continustreaming"
    churn: Optional[ChurnSchedule] = None
    bandwidth_classes: Optional[Tuple[BandwidthClass, ...]] = None
    loss_rate: float = 0.0
    hop_latency_ms: Optional[float] = None
    config_overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be at least 2")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate!r}")
        if self.bandwidth_classes is not None:
            object.__setattr__(self, "bandwidth_classes", tuple(self.bandwidth_classes))
            if not self.bandwidth_classes:
                raise ValueError(
                    "bandwidth_classes must list at least one class; use None "
                    "for the config's uniform bandwidth draw"
                )
        object.__setattr__(self, "config_overrides", dict(self.config_overrides))
        reserved = _RESERVED_OVERRIDE_KEYS & set(self.config_overrides)
        if reserved:
            raise ValueError(
                f"config_overrides must not set {sorted(reserved)}; these are "
                f"owned by the scenario's own fields (num_nodes, rounds, seed, "
                f"churn, hop_latency_ms) and would be silently overwritten"
            )
        if self.bandwidth_classes is not None:
            shadowed = _BANDWIDTH_OVERRIDE_KEYS & set(self.config_overrides)
            if shadowed:
                raise ValueError(
                    f"config_overrides must not set {sorted(shadowed)} when "
                    f"bandwidth_classes is given; the class mix replaces the "
                    f"config's uniform bandwidth draw entirely"
                )

    # ------------------------------------------------------------------ variants
    def scaled(
        self,
        num_nodes: Optional[int] = None,
        rounds: Optional[int] = None,
        seed: Optional[int] = None,
        system: Optional[str] = None,
    ) -> "ScenarioSpec":
        """Copy of this spec with size/length/seed/protocol overridden."""
        return dataclasses.replace(
            self,
            num_nodes=self.num_nodes if num_nodes is None else num_nodes,
            rounds=self.rounds if rounds is None else rounds,
            seed=self.seed if seed is None else seed,
            system=self.system if system is None else system,
        )

    # ------------------------------------------------------------- construction
    def to_config(self) -> SystemConfig:
        """The :class:`~repro.core.config.SystemConfig` this spec describes.

        A :class:`~repro.net.churn.ConstantChurn` schedule maps onto the
        config's flat ``leave_fraction``/``join_fraction`` (it *is* the flat
        kind); every other schedule rides along as
        ``SystemConfig.churn_schedule``, which the overlay's churn process
        consults per round and ``config.is_dynamic`` accounts for.
        """
        kwargs: Dict[str, Any] = dict(self.config_overrides)
        kwargs.update(
            num_nodes=self.num_nodes,
            rounds=self.rounds,
            seed=self.seed,
        )
        if isinstance(self.churn, ConstantChurn):
            leave, join = self.churn.fractions(0)
            kwargs.update(leave_fraction=leave, join_fraction=join)
        elif self.churn is not None:
            kwargs["churn_schedule"] = self.churn
        if self.hop_latency_ms is not None:
            kwargs["hop_latency_ms"] = self.hop_latency_ms
        try:
            return SystemConfig(**kwargs)
        except TypeError as exc:
            # e.g. a config_overrides key SystemConfig does not know.
            raise ValueError(
                f"scenario {self.name!r}: invalid config_overrides: {exc}"
            ) from exc

    def build_pipeline(self) -> Tuple[Phase, ...]:
        """The protocol's pipeline with scenario phases spliced in."""
        pipeline = list(ProtocolRegistry.get(self.system).build_pipeline())
        if self.loss_rate > 0.0:
            index = next(
                (i for i, phase in enumerate(pipeline) if phase.name == "data-scheduling"),
                None,
            )
            if index is None:
                # Protocol without the standard scheduler: throttle budgets
                # just before the first end-of-period phase.
                index = next(
                    (i for i, phase in enumerate(pipeline) if phase.timing == END),
                    len(pipeline),
                )
            pipeline.insert(index, LossyNetworkPhase(self.loss_rate))
        return tuple(pipeline)

    def build_system(self) -> StreamingSystem:
        """A fully wired (not yet built) :class:`StreamingSystem`."""
        config = self.to_config()
        system = StreamingSystem(
            config, system=self.system, pipeline=self.build_pipeline()
        )
        if self.bandwidth_classes:
            system.manager.bandwidth = ClassMixBandwidthModel(
                self.bandwidth_classes, source_outbound=config.source_outbound
            )
        return system

    def run(self) -> SimulationResult:
        """Build and run the scenario to completion."""
        return self.build_system().run()

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON/YAML-safe); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "num_nodes": self.num_nodes,
            "rounds": self.rounds,
            "seed": self.seed,
            "system": self.system,
            "churn": None if self.churn is None else self.churn.to_dict(),
            "bandwidth_classes": (
                None
                if self.bandwidth_classes is None
                else [dataclasses.asdict(c) for c in self.bandwidth_classes]
            ),
            "loss_rate": self.loss_rate,
            "hop_latency_ms": self.hop_latency_ms,
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        Raises:
            ValueError: for unknown keys or malformed sub-specs, so a typo
                in a YAML file fails loudly instead of being ignored.
        """
        data = dict(payload)
        churn = data.pop("churn", None)
        classes = data.pop("bandwidth_classes", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario keys {sorted(unknown)}; known keys: {sorted(known)}"
            )
        try:
            bandwidth_classes = (
                None
                if classes is None
                else tuple(BandwidthClass(**dict(c)) for c in classes)
            )
        except TypeError as exc:
            raise ValueError(f"invalid bandwidth class parameters: {exc}") from exc
        try:
            return cls(
                churn=None if churn is None else schedule_from_dict(churn),
                bandwidth_classes=bandwidth_classes,
                **data,
            )
        except TypeError as exc:
            # e.g. a missing required key such as "name".
            raise ValueError(f"invalid scenario spec: {exc}") from exc

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec from a YAML (``.yaml``/``.yml``) or JSON file.

        YAML support is optional: if PyYAML is not installed, YAML files
        raise a clear error while JSON files keep working.
        """
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env without PyYAML
                raise RuntimeError(
                    f"loading {path} needs PyYAML; install it or use a JSON spec"
                ) from exc
            payload = yaml.safe_load(text)
        else:
            payload = json.loads(text)
        if not isinstance(payload, Mapping):
            raise ValueError(f"scenario file {path} must contain a mapping")
        return cls.from_dict(payload)

    def to_file(self, path: Union[str, Path]) -> Path:
        """Write the spec to ``path`` (YAML if the suffix asks and PyYAML
        is available, JSON otherwise)."""
        path = Path(path)
        payload = self.to_dict()
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env without PyYAML
                raise RuntimeError(
                    f"writing {path} needs PyYAML; install it or use a JSON spec"
                ) from exc
            path.write_text(yaml.safe_dump(payload, sort_keys=False), encoding="utf-8")
        else:
            path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def load_scenarios(values: Sequence[Union[str, Path, ScenarioSpec]]) -> Tuple[ScenarioSpec, ...]:
    """Resolve a mixed list of spec objects, file paths and built-in names.

    Strings that name an existing file load via :meth:`ScenarioSpec.from_file`;
    every other string is looked up in the built-in scenario library.
    """
    from repro.scenarios.library import builtin_scenario

    specs = []
    for value in values:
        if isinstance(value, ScenarioSpec):
            specs.append(value)
        elif isinstance(value, Path) or (
            isinstance(value, str) and Path(value).is_file()
        ):
            specs.append(ScenarioSpec.from_file(value))
        else:
            specs.append(builtin_scenario(str(value)))
    return tuple(specs)
