"""The scenario engine: declarative workloads and parallel campaigns.

This package is the layer every ablation and benchmark plugs into:

* :class:`~repro.scenarios.spec.ScenarioSpec` — a declarative workload
  (churn schedule × bandwidth-class mix × loss rate × latency × size) that
  composes into a runnable :class:`~repro.core.system.StreamingSystem`
  through the existing config / pipeline / registry contracts;
* :mod:`~repro.scenarios.library` — six built-in named scenarios
  (``static``, ``paper-dynamic``, ``flash-crowd``, ``diurnal``,
  ``blackout``, ``hetero-swarm``);
* :class:`~repro.scenarios.campaign.CampaignRunner` — fans a scenario ×
  system × node-count × seed grid across ``multiprocessing`` workers with
  deterministic per-cell seeding;
* :class:`~repro.scenarios.results.ResultsStore` — JSONL cell records plus
  mean/CI aggregate summaries.

See ``docs/scenarios.md`` for the spec schema and the campaign CLI.
"""

from repro.scenarios.campaign import (
    BACKENDS,
    CampaignRunner,
    CampaignSpec,
    cell_seed_for,
    run_campaign,
    run_cell,
)
from repro.scenarios.library import (
    BUILTIN_SCENARIOS,
    builtin_names,
    builtin_scenario,
)
from repro.scenarios.phases import LossyNetworkPhase
from repro.scenarios.results import METRIC_NAMES, CellResult, ResultsStore
from repro.scenarios.spec import ScenarioSpec, load_scenarios

__all__ = [
    "BACKENDS",
    "ScenarioSpec",
    "load_scenarios",
    "LossyNetworkPhase",
    "BUILTIN_SCENARIOS",
    "builtin_names",
    "builtin_scenario",
    "CampaignSpec",
    "CampaignRunner",
    "run_campaign",
    "run_cell",
    "cell_seed_for",
    "CellResult",
    "ResultsStore",
    "METRIC_NAMES",
]
