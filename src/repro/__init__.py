"""Reproduction of *ContinuStreaming* (Li, Cao, Chen — IPDPS 2008).

ContinuStreaming is a gossip-based peer-to-peer live-streaming system that
adds a lightweight DHT so that data segments which the randomised gossip
("smart pull") dissemination is about to miss can be pre-fetched on demand
from ``k`` backup holders before their playback deadline.

The package is organised as:

``repro.sim``
    Discrete-event simulation engine (event heap, clock, seeded RNG streams).
``repro.net``
    Overlay topology, synthetic Gnutella-like trace generator, latency and
    bandwidth models, message cost accounting, churn.
``repro.dht``
    ID-ring arithmetic, loosely-organised peer tables, greedy clockwise
    routing, backup placement, join/leave/handover, standalone DHT network.
``repro.membership``
    Rendezvous-point bootstrap and overhearing-based peer-table maintenance.
``repro.streaming``
    Segments, FIFO buffers, buffer-map encoding, media source, playback and
    continuity accounting.
``repro.core``
    The paper's contribution: the ContinuStreaming node (urgency+rarity data
    scheduling, Urgent-Line prediction with adaptive alpha, on-demand DHT
    retrieval, VoD backup), the CoolStreaming baseline, and the
    :class:`~repro.core.system.StreamingSystem` orchestration.
``repro.analysis``
    The Poisson playback-continuity theory of Section 5.1, gossip coverage
    formulas, the DHT routing-hop bound, and metric aggregation helpers.
``repro.scenarios``
    The scenario engine: declarative workload specs (churn schedules,
    bandwidth-class mixes, loss rates), six built-in scenarios, and the
    parallel multi-seed campaign runner with its unified results store.
``repro.experiments``
    One module per paper table/figure plus a CLI runner (including the
    ``campaign`` command).
"""

from __future__ import annotations

from repro.analysis.theory import (
    playback_continuity_new,
    playback_continuity_old,
)
from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem
from repro.scenarios import (
    CampaignRunner,
    ResultsStore,
    ScenarioSpec,
    builtin_scenario,
    run_campaign,
)

__all__ = [
    "SystemConfig",
    "StreamingSystem",
    "playback_continuity_old",
    "playback_continuity_new",
    "ScenarioSpec",
    "builtin_scenario",
    "CampaignRunner",
    "run_campaign",
    "ResultsStore",
    "__version__",
]

__version__ = "1.0.0"
