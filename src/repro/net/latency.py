"""Pairwise latency model.

The paper estimates the physical latency between two overlay nodes as the
difference between their real-trace ping times from a central vantage point,
and a single-message latency as ``RTT / 2``.  We reproduce that estimator on
the (synthetic) trace ping times and expose the mean one-hop latency
``t_hop`` that the on-demand retrieval algorithm needs for its ``t_fetch``
estimate (equation (7)).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np


class LatencyModel:
    """Latency between overlay nodes derived from per-node ping times.

    Args:
        ping_ms: mapping node id -> ping time from the central crawler (ms).
        floor_ms: minimum one-way latency; two nodes with identical ping
            times are still physically apart.
    """

    def __init__(self, ping_ms: Mapping[int, float], floor_ms: float = 5.0) -> None:
        if floor_ms < 0:
            raise ValueError("floor_ms must be >= 0")
        self._ping_ms: Dict[int, float] = {int(k): float(v) for k, v in ping_ms.items()}
        self.floor_ms = float(floor_ms)

    def __contains__(self, node: int) -> bool:
        return node in self._ping_ms

    def add_node(self, node: int, ping_ms: float) -> None:
        """Register (or update) the ping time of ``node``."""
        self._ping_ms[int(node)] = float(ping_ms)

    def remove_node(self, node: int) -> None:
        """Forget a departed node (no-op if unknown)."""
        self._ping_ms.pop(node, None)

    def ping_of(self, node: int) -> float:
        """Ping time of ``node`` in milliseconds."""
        return self._ping_ms[node]

    def one_way_ms(self, a: int, b: int) -> float:
        """One-way latency between ``a`` and ``b`` in milliseconds.

        Estimated as half the absolute ping-time difference (the paper's
        |ping_a - ping_b| estimator divided by two for a single direction),
        floored at ``floor_ms``.
        """
        if a == b:
            return 0.0
        delta = abs(self._ping_ms[a] - self._ping_ms[b]) / 2.0
        return max(self.floor_ms, delta)

    def one_way_s(self, a: int, b: int) -> float:
        """One-way latency in seconds."""
        return self.one_way_ms(a, b) / 1000.0

    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time between ``a`` and ``b`` in milliseconds."""
        return 2.0 * self.one_way_ms(a, b)

    def mean_hop_latency_ms(
        self,
        nodes: Optional[Iterable[int]] = None,
        sample_pairs: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Estimate the mean one-hop latency ``t_hop`` over random node pairs.

        The paper reports ``t_hop ≈ 50 ms`` for its traces; this estimator
        lets each experiment compute the equivalent value for its own trace.
        """
        ids = sorted(self._ping_ms if nodes is None else nodes)
        if len(ids) < 2:
            return self.floor_ms
        rng = rng or np.random.default_rng(0)
        pairs = min(sample_pairs, len(ids) * (len(ids) - 1) // 2)
        total = 0.0
        for _ in range(pairs):
            a, b = rng.choice(len(ids), size=2, replace=False)
            total += self.one_way_ms(ids[int(a)], ids[int(b)])
        return total / max(1, pairs)
