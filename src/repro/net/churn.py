"""Churn process and time-varying churn schedules.

The dynamic environment in the paper's evaluation removes 5% of the old
nodes and adds 5% new nodes at every scheduling period.  The churn process
here generalises that twice over:

* :class:`ChurnProcess` turns per-round (leave, join) fractions into concrete
  membership events, with the media source always protected from removal;
* :class:`ChurnSchedule` makes the fractions *time-varying*.  The paper's
  flat "x% out / x% in every period" is one schedule kind
  (:class:`ConstantChurn`); the others model the workloads the scenario
  engine needs — a diurnal audience wave, a flash-crowd spike with a drain
  afterwards, a massive correlated failure (blackout), and an arbitrary
  piecewise-constant profile.

Every schedule serialises to a plain dict (``to_dict`` / ``from_dict`` /
:func:`schedule_from_dict`), which is what lets
:class:`~repro.scenarios.spec.ScenarioSpec` round-trip through YAML/JSON.
"""

from __future__ import annotations

import abc
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type


import numpy as np


def _check_fraction(name: str, value: float, upper_exclusive: bool = False) -> None:
    """Validate a churn fraction; leave fractions must stay below 1."""
    if upper_exclusive:
        if not (0.0 <= value < 1.0):
            raise ValueError(f"{name} must be in [0, 1), got {value!r}")
    elif not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class ChurnEvent:
    """The membership changes decided for one round."""

    round_index: int
    leaving: tuple[int, ...]
    joining: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return not self.leaving and not self.joining


# =========================================================================
# Time-varying schedules
# =========================================================================
class ChurnSchedule(abc.ABC):
    """Per-round (leave_fraction, join_fraction) profile.

    Subclasses declare a :attr:`kind` string (the registry key used by
    :func:`schedule_from_dict`) and implement :meth:`fractions`.  Fractions
    returned for any round are clipped to the valid ranges, so a schedule
    expression such as ``base * (1 + amplitude * sin(...))`` never has to
    worry about the boundaries itself.
    """

    #: Registry key; set on each concrete subclass.
    kind: str = ""

    #: kind -> subclass, filled by :meth:`__init_subclass__`.
    _registry: Dict[str, Type["ChurnSchedule"]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            ChurnSchedule._registry[cls.kind] = cls

    # ------------------------------------------------------------------ contract
    @abc.abstractmethod
    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        """Unclipped (leave_fraction, join_fraction) for ``round_index``."""

    def fractions(self, round_index: int) -> Tuple[float, float]:
        """Clipped (leave_fraction, join_fraction) for ``round_index``."""
        leave, join = self.raw_fractions(round_index)
        # Clip to the documented bounds only — leave stays strictly below 1
        # without distorting values the constructors already validated.
        return (
            float(min(max(leave, 0.0), math.nextafter(1.0, 0.0))),
            float(min(max(join, 0.0), 1.0)),
        )

    @property
    def is_static(self) -> bool:
        """True when the schedule never changes membership (overridable)."""
        return False

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: the dataclass fields plus the ``kind`` tag."""
        payload = asdict(self)  # type: ignore[call-overload]
        payload["kind"] = self.kind
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChurnSchedule":
        """Rebuild any registered schedule kind from its dict form."""
        return schedule_from_dict(payload)


def schedule_from_dict(payload: Mapping[str, Any]) -> ChurnSchedule:
    """Instantiate the :class:`ChurnSchedule` described by ``payload``.

    The payload must carry a ``kind`` key naming a registered schedule;
    the remaining keys are the schedule's constructor fields.

    Raises:
        ValueError: for missing or unknown kinds (lists the known ones).
    """
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind is None:
        raise ValueError("churn schedule dict needs a 'kind' key")
    schedule_cls = ChurnSchedule._registry.get(str(kind))
    if schedule_cls is None:
        known = ", ".join(sorted(ChurnSchedule._registry))
        raise ValueError(f"unknown churn schedule kind {kind!r}; known kinds: {known}")
    try:
        return schedule_cls(**data)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ValueError(
            f"invalid parameters for churn schedule kind {kind!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class ConstantChurn(ChurnSchedule):
    """The paper's flat churn: the same fractions every round."""

    leave_fraction: float = 0.0
    join_fraction: float = 0.0
    kind = "constant"

    def __post_init__(self) -> None:
        _check_fraction("leave_fraction", self.leave_fraction, upper_exclusive=True)
        _check_fraction("join_fraction", self.join_fraction)

    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        return (self.leave_fraction, self.join_fraction)

    @property
    def is_static(self) -> bool:
        return self.leave_fraction == 0.0 and self.join_fraction == 0.0


@dataclass(frozen=True)
class DiurnalChurn(ChurnSchedule):
    """A sinusoidal audience wave around base fractions.

    Joins are modulated by ``1 + amplitude * sin(2π (r + phase)/T)`` and
    leaves by its mirror ``1 - amplitude * sin(...)`` — anti-phase, so the
    join peak and the leave trough fall in the same round and the audience
    grows on the rising half-cycle and shrinks on the falling one: a daily
    audience cycle compressed into ``period_rounds`` scheduling periods.
    """

    base_leave_fraction: float = 0.05
    base_join_fraction: float = 0.05
    amplitude: float = 0.5
    period_rounds: int = 24
    phase_rounds: float = 0.0
    kind = "diurnal"

    def __post_init__(self) -> None:
        _check_fraction("base_leave_fraction", self.base_leave_fraction, upper_exclusive=True)
        _check_fraction("base_join_fraction", self.base_join_fraction)
        if not (0.0 <= self.amplitude <= 1.0):
            raise ValueError("amplitude must be in [0, 1]")
        if self.period_rounds < 2:
            raise ValueError("period_rounds must be >= 2")

    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        angle = 2.0 * math.pi * (round_index + self.phase_rounds) / self.period_rounds
        wave = self.amplitude * math.sin(angle)
        # Joins ride the wave, leaves ride its opposite: the audience grows
        # on the rising half-cycle and shrinks on the falling one.
        return (
            self.base_leave_fraction * (1.0 - wave),
            self.base_join_fraction * (1.0 + wave),
        )


@dataclass(frozen=True)
class FlashCrowdChurn(ChurnSchedule):
    """A sudden join spike followed by an elevated-leave drain.

    Rounds ``[spike_round, spike_round + spike_duration)`` see
    ``spike_join_fraction`` joins per round; the next ``drain_duration``
    rounds see ``drain_leave_fraction`` leaves as the crowd loses interest.
    Outside those windows the base fractions apply.
    """

    base_leave_fraction: float = 0.01
    base_join_fraction: float = 0.01
    spike_round: int = 5
    spike_duration: int = 3
    spike_join_fraction: float = 0.25
    drain_duration: int = 0
    drain_leave_fraction: float = 0.0
    kind = "flash-crowd"

    def __post_init__(self) -> None:
        _check_fraction("base_leave_fraction", self.base_leave_fraction, upper_exclusive=True)
        _check_fraction("base_join_fraction", self.base_join_fraction)
        _check_fraction("spike_join_fraction", self.spike_join_fraction)
        _check_fraction("drain_leave_fraction", self.drain_leave_fraction, upper_exclusive=True)
        if self.spike_round < 0 or self.spike_duration < 1:
            raise ValueError("spike_round must be >= 0 and spike_duration >= 1")
        if self.drain_duration < 0:
            raise ValueError("drain_duration must be >= 0")

    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        spike_end = self.spike_round + self.spike_duration
        if self.spike_round <= round_index < spike_end:
            return (self.base_leave_fraction, self.spike_join_fraction)
        if spike_end <= round_index < spike_end + self.drain_duration:
            return (self.drain_leave_fraction, self.base_join_fraction)
        return (self.base_leave_fraction, self.base_join_fraction)


@dataclass(frozen=True)
class BlackoutChurn(ChurnSchedule):
    """A massive correlated failure at one round, then a recovery wave.

    At ``blackout_round`` a ``failure_fraction`` of the population leaves in
    a single period (the clustered-failure stress CliqueStream motivates);
    the following ``recovery_duration`` rounds see ``recovery_join_fraction``
    joins as the audience reconnects.
    """

    base_leave_fraction: float = 0.0
    base_join_fraction: float = 0.0
    blackout_round: int = 10
    failure_fraction: float = 0.3
    recovery_duration: int = 0
    recovery_join_fraction: float = 0.0
    kind = "blackout"

    def __post_init__(self) -> None:
        _check_fraction("base_leave_fraction", self.base_leave_fraction, upper_exclusive=True)
        _check_fraction("base_join_fraction", self.base_join_fraction)
        _check_fraction("failure_fraction", self.failure_fraction, upper_exclusive=True)
        _check_fraction("recovery_join_fraction", self.recovery_join_fraction)
        if self.blackout_round < 0:
            raise ValueError("blackout_round must be >= 0")
        if self.recovery_duration < 0:
            raise ValueError("recovery_duration must be >= 0")

    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        if round_index == self.blackout_round:
            return (self.failure_fraction, self.base_join_fraction)
        recovery_end = self.blackout_round + 1 + self.recovery_duration
        if self.blackout_round < round_index < recovery_end:
            return (self.base_leave_fraction, self.recovery_join_fraction)
        return (self.base_leave_fraction, self.base_join_fraction)


@dataclass(frozen=True)
class PiecewiseChurn(ChurnSchedule):
    """An arbitrary piecewise-constant profile.

    ``steps`` is a sequence of ``(start_round, leave_fraction,
    join_fraction)`` triples sorted by ``start_round``; each step applies
    from its start round until the next step begins.  Rounds before the
    first step are static.
    """

    steps: Tuple[Tuple[int, float, float], ...] = ()
    kind = "piecewise"

    def __post_init__(self) -> None:
        # Accept lists from JSON/YAML loads; store tuples so the frozen
        # dataclass stays hashable and round-trips cleanly.
        object.__setattr__(
            self, "steps", tuple(tuple(step) for step in self.steps)
        )
        starts = [int(step[0]) for step in self.steps]
        if starts != sorted(starts):
            raise ValueError("piecewise steps must be sorted by start round")
        for start, leave, join in self.steps:
            if start < 0:
                raise ValueError("piecewise step start rounds must be >= 0")
            _check_fraction("leave_fraction", leave, upper_exclusive=True)
            _check_fraction("join_fraction", join)

    def raw_fractions(self, round_index: int) -> Tuple[float, float]:
        leave = join = 0.0
        for start, step_leave, step_join in self.steps:
            if round_index < start:
                break
            leave, join = step_leave, step_join
        return (leave, join)

    @property
    def is_static(self) -> bool:
        return all(leave == 0.0 and join == 0.0 for _, leave, join in self.steps)


# =========================================================================
# The churn process
# =========================================================================
@dataclass
class ChurnProcess:
    """Generates per-round join/leave decisions.

    Attributes:
        leave_fraction: fraction of current (non-protected) nodes leaving per
            round (paper: 0.05 in the dynamic environment, 0.0 in static).
        join_fraction: fraction (of the current population) of new nodes
            joining per round.
        protected: node ids that never leave (the media source).  Every
            protected id must be part of the population handed to
            :meth:`step`; a mismatch is reported as an error rather than
            silently shrinking the protected set.
        next_node_id: id to assign to the next joining node.
        schedule: optional time-varying profile overriding the flat
            fractions; the flat pair is equivalent to
            ``ConstantChurn(leave_fraction, join_fraction)``.
    """

    leave_fraction: float = 0.0
    join_fraction: float = 0.0
    protected: Set[int] = field(default_factory=set)
    next_node_id: int = 0
    schedule: Optional[ChurnSchedule] = None

    def __post_init__(self) -> None:
        _check_fraction("leave_fraction", self.leave_fraction, upper_exclusive=True)
        # Join is capped at 1.0 — at most a population doubling per round.
        _check_fraction("join_fraction", self.join_fraction)

    @property
    def is_static(self) -> bool:
        """True when the process never changes membership."""
        if self.schedule is not None:
            return self.schedule.is_static
        return self.leave_fraction == 0.0 and self.join_fraction == 0.0

    def fractions_for(self, round_index: int) -> Tuple[float, float]:
        """The (leave, join) fractions in force during ``round_index``."""
        if self.schedule is not None:
            return self.schedule.fractions(round_index)
        return (self.leave_fraction, self.join_fraction)

    def reserve_ids(self, existing_ids: Iterable[int]) -> None:
        """Make sure newly assigned ids never collide with existing ones."""
        existing = list(existing_ids)
        if existing:
            self.next_node_id = max(self.next_node_id, max(existing) + 1)

    def step(
        self,
        round_index: int,
        current_nodes: Sequence[int],
        rng: np.random.Generator,
    ) -> ChurnEvent:
        """Decide which nodes leave and which join this round.

        Raises:
            ValueError: when a protected id is missing from
                ``current_nodes`` — protecting a node that is not in the
                population means the caller wired the process to the wrong
                overlay, which would otherwise fail silently.
        """
        if self.is_static or not current_nodes:
            return ChurnEvent(round_index=round_index, leaving=(), joining=())

        population = set(current_nodes)
        missing = self.protected - population
        if missing:
            raise ValueError(
                f"protected node ids {sorted(missing)} are not in the current "
                f"population ({len(population)} nodes); the churn process is "
                f"wired to a different overlay than the one it protects"
            )

        leave_fraction, join_fraction = self.fractions_for(round_index)
        candidates = [n for n in current_nodes if n not in self.protected]
        n_leave = int(round(leave_fraction * len(current_nodes)))
        n_leave = min(n_leave, len(candidates))
        leaving: List[int] = []
        if n_leave > 0:
            idx = rng.choice(len(candidates), size=n_leave, replace=False)
            leaving = [candidates[int(i)] for i in idx]

        n_join = int(round(join_fraction * len(current_nodes)))
        joining: List[int] = []
        for _ in range(n_join):
            joining.append(self.next_node_id)
            self.next_node_id += 1

        return ChurnEvent(
            round_index=round_index,
            leaving=tuple(sorted(leaving)),
            joining=tuple(joining),
        )
