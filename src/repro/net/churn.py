"""Churn process.

The dynamic environment in the paper's evaluation removes 5% of the old
nodes and adds 5% new nodes at every scheduling period.  The churn process
here generalises that: configurable leave and join fractions per round, with
the media source always protected from removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

import numpy as np


@dataclass(frozen=True)
class ChurnEvent:
    """The membership changes decided for one round."""

    round_index: int
    leaving: tuple[int, ...]
    joining: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return not self.leaving and not self.joining


@dataclass
class ChurnProcess:
    """Generates per-round join/leave decisions.

    Attributes:
        leave_fraction: fraction of current (non-protected) nodes leaving per
            round (paper: 0.05 in the dynamic environment, 0.0 in static).
        join_fraction: fraction (of the current population) of new nodes
            joining per round.
        protected: node ids that never leave (the media source).
        next_node_id: id to assign to the next joining node.
    """

    leave_fraction: float = 0.0
    join_fraction: float = 0.0
    protected: Set[int] = field(default_factory=set)
    next_node_id: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.leave_fraction < 1.0):
            raise ValueError("leave_fraction must be in [0, 1)")
        if self.join_fraction < 0.0:
            raise ValueError("join_fraction must be >= 0")

    @property
    def is_static(self) -> bool:
        """True when the process never changes membership."""
        return self.leave_fraction == 0.0 and self.join_fraction == 0.0

    def reserve_ids(self, existing_ids: Iterable[int]) -> None:
        """Make sure newly assigned ids never collide with existing ones."""
        existing = list(existing_ids)
        if existing:
            self.next_node_id = max(self.next_node_id, max(existing) + 1)

    def step(
        self,
        round_index: int,
        current_nodes: Sequence[int],
        rng: np.random.Generator,
    ) -> ChurnEvent:
        """Decide which nodes leave and which join this round."""
        if self.is_static or not current_nodes:
            return ChurnEvent(round_index=round_index, leaving=(), joining=())

        candidates = [n for n in current_nodes if n not in self.protected]
        n_leave = int(round(self.leave_fraction * len(current_nodes)))
        n_leave = min(n_leave, len(candidates))
        leaving: List[int] = []
        if n_leave > 0:
            idx = rng.choice(len(candidates), size=n_leave, replace=False)
            leaving = [candidates[int(i)] for i in idx]

        n_join = int(round(self.join_fraction * len(current_nodes)))
        joining: List[int] = []
        for _ in range(n_join):
            joining.append(self.next_node_id)
            self.next_node_id += 1

        return ChurnEvent(
            round_index=round_index,
            leaving=tuple(sorted(leaving)),
            joining=tuple(joining),
        )
