"""Network substrate: overlay topology, traces, latency, bandwidth, churn.

The paper evaluates on 30 real Gnutella crawl topologies (dss.clip2.com,
2000-2001) of 100-10000 nodes, of which it only uses node id, IP and ping
time, and then densifies the graph with random edges until every node has
``M`` connected neighbours.  Those traces are no longer available, so
:mod:`repro.net.trace` synthesises statistically equivalent ones (same record
schema, size range, degree range, ping-time distribution) and the rest of the
pipeline treats them identically.
"""

from repro.net.bandwidth import BandwidthModel, NodeBandwidth
from repro.net.churn import ChurnProcess, ChurnEvent
from repro.net.latency import LatencyModel
from repro.net.message import MessageKind, MessageLedger, ROUTING_MESSAGE_BITS
from repro.net.topology import OverlayTopology
from repro.net.trace import TraceNodeRecord, TraceTopologyGenerator

__all__ = [
    "OverlayTopology",
    "TraceNodeRecord",
    "TraceTopologyGenerator",
    "LatencyModel",
    "BandwidthModel",
    "NodeBandwidth",
    "MessageKind",
    "MessageLedger",
    "ROUTING_MESSAGE_BITS",
    "ChurnProcess",
    "ChurnEvent",
]
