"""Per-node inbound/outbound bandwidth model.

Section 5.2 of the paper assigns every node a random inbound rate between
300 Kbps and 1 Mbps (mean 450 Kbps), i.e. between 10 and 33 segments per
second with a mean of 15, and outbound rates likewise; the media source has
zero inbound rate and a much larger outbound rate (about 100 segments/s).

Rates are expressed in *segments per second* throughout the simulator, which
keeps the scheduling arithmetic (equations (1)-(3) and Algorithm 1) in the
paper's own units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np


@dataclass
class NodeBandwidth:
    """Inbound/outbound capacity of one node, in segments per second."""

    inbound: float
    outbound: float

    def __post_init__(self) -> None:
        if self.inbound < 0 or self.outbound < 0:
            raise ValueError("rates must be non-negative")


class BandwidthModel:
    """Assigns and stores per-node bandwidth capacities.

    Two assignment modes mirror the paper's evaluation environments:

    * *heterogeneous* — inbound drawn uniformly from ``[min_rate, max_rate]``
      and rescaled so the population mean equals ``mean_rate``;
    * *homogeneous* — every node gets exactly ``mean_rate``.
    """

    def __init__(
        self,
        mean_rate: float = 15.0,
        min_rate: float = 10.0,
        max_rate: float = 33.0,
        heterogeneous: bool = True,
        source_outbound: float = 100.0,
    ) -> None:
        if not (0 < min_rate <= mean_rate <= max_rate):
            raise ValueError(
                f"need 0 < min_rate <= mean_rate <= max_rate, got "
                f"{min_rate}, {mean_rate}, {max_rate}"
            )
        self.mean_rate = float(mean_rate)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.heterogeneous = bool(heterogeneous)
        self.source_outbound = float(source_outbound)
        self._capacity: Dict[int, NodeBandwidth] = {}

    # ---------------------------------------------------------------- assignment
    def _draw_rates(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if not self.heterogeneous or count == 0:
            return np.full(count, self.mean_rate)
        rates = rng.uniform(self.min_rate, self.max_rate, size=count)
        # Rescale towards the configured mean while staying inside the bounds,
        # so "average inbound rate is 450 Kbps / I = 15" holds as in the paper.
        current_mean = float(rates.mean())
        if current_mean > 0:
            rates = rates * (self.mean_rate / current_mean)
        return np.clip(rates, self.min_rate, self.max_rate)

    def assign(
        self,
        node_ids: Iterable[int],
        rng: np.random.Generator,
        source_id: Optional[int] = None,
    ) -> None:
        """Assign capacities to ``node_ids`` (overwriting existing entries).

        The node identified by ``source_id`` gets zero inbound capacity and
        ``source_outbound`` outbound capacity, as in the paper's setup.
        """
        ids = [int(n) for n in node_ids]
        inbound = self._draw_rates(len(ids), rng)
        outbound = self._draw_rates(len(ids), rng)
        for node, i_rate, o_rate in zip(ids, inbound, outbound):
            self._capacity[node] = NodeBandwidth(float(i_rate), float(o_rate))
        if source_id is not None:
            self._capacity[int(source_id)] = NodeBandwidth(0.0, self.source_outbound)

    def assign_one(
        self,
        node_id: int,
        rng: np.random.Generator,
    ) -> NodeBandwidth:
        """Assign capacity to a single (newly joined) node."""
        inbound = float(self._draw_rates(1, rng)[0])
        outbound = float(self._draw_rates(1, rng)[0])
        capacity = NodeBandwidth(inbound, outbound)
        self._capacity[int(node_id)] = capacity
        return capacity

    # ------------------------------------------------------------------ queries
    def __contains__(self, node_id: int) -> bool:
        return node_id in self._capacity

    def remove(self, node_id: int) -> None:
        """Forget a departed node."""
        self._capacity.pop(node_id, None)

    def of(self, node_id: int) -> NodeBandwidth:
        """Capacity of ``node_id``.

        Raises:
            KeyError: if the node has no assigned capacity.
        """
        return self._capacity[node_id]

    def inbound(self, node_id: int) -> float:
        """Inbound rate of ``node_id`` in segments/s."""
        return self._capacity[node_id].inbound

    def outbound(self, node_id: int) -> float:
        """Outbound rate of ``node_id`` in segments/s."""
        return self._capacity[node_id].outbound

    def mean_inbound(self) -> float:
        """Population mean inbound rate (segments/s)."""
        if not self._capacity:
            return 0.0
        return float(np.mean([c.inbound for c in self._capacity.values()]))

    @staticmethod
    def kbps_to_segments_per_s(kbps: float, segment_bits: int = 30 * 1024) -> float:
        """Convert a rate in Kbps to segments per second."""
        return kbps * 1000.0 / segment_bits

    @staticmethod
    def segments_per_s_to_kbps(rate: float, segment_bits: int = 30 * 1024) -> float:
        """Convert a rate in segments per second to Kbps."""
        return rate * segment_bits / 1000.0
