"""Per-node inbound/outbound bandwidth model.

Section 5.2 of the paper assigns every node a random inbound rate between
300 Kbps and 1 Mbps (mean 450 Kbps), i.e. between 10 and 33 segments per
second with a mean of 15, and outbound rates likewise; the media source has
zero inbound rate and a much larger outbound rate (about 100 segments/s).

Rates are expressed in *segments per second* throughout the simulator, which
keeps the scheduling arithmetic (equations (1)-(3) and Algorithm 1) in the
paper's own units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np


@dataclass
class NodeBandwidth:
    """Inbound/outbound capacity of one node, in segments per second."""

    inbound: float
    outbound: float

    def __post_init__(self) -> None:
        if self.inbound < 0 or self.outbound < 0:
            raise ValueError("rates must be non-negative")


class BandwidthModel:
    """Assigns and stores per-node bandwidth capacities.

    Two assignment modes mirror the paper's evaluation environments:

    * *heterogeneous* — inbound drawn uniformly from ``[min_rate, max_rate]``
      and rescaled so the population mean equals ``mean_rate``;
    * *homogeneous* — every node gets exactly ``mean_rate``.
    """

    def __init__(
        self,
        mean_rate: float = 15.0,
        min_rate: float = 10.0,
        max_rate: float = 33.0,
        heterogeneous: bool = True,
        source_outbound: float = 100.0,
    ) -> None:
        if not (0 < min_rate <= mean_rate <= max_rate):
            raise ValueError(
                f"need 0 < min_rate <= mean_rate <= max_rate, got "
                f"{min_rate}, {mean_rate}, {max_rate}"
            )
        self.mean_rate = float(mean_rate)
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.heterogeneous = bool(heterogeneous)
        self.source_outbound = float(source_outbound)
        self._capacity: Dict[int, NodeBandwidth] = {}

    # ---------------------------------------------------------------- assignment
    def _draw_rates(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if not self.heterogeneous or count == 0:
            return np.full(count, self.mean_rate)
        rates = rng.uniform(self.min_rate, self.max_rate, size=count)
        # Rescale towards the configured mean while staying inside the bounds,
        # so "average inbound rate is 450 Kbps / I = 15" holds as in the paper.
        current_mean = float(rates.mean())
        if current_mean > 0:
            rates = rates * (self.mean_rate / current_mean)
        return np.clip(rates, self.min_rate, self.max_rate)

    def assign(
        self,
        node_ids: Iterable[int],
        rng: np.random.Generator,
        source_id: Optional[int] = None,
    ) -> None:
        """Assign capacities to ``node_ids`` (overwriting existing entries).

        The node identified by ``source_id`` gets zero inbound capacity and
        ``source_outbound`` outbound capacity, as in the paper's setup.
        """
        ids = [int(n) for n in node_ids]
        inbound = self._draw_rates(len(ids), rng)
        outbound = self._draw_rates(len(ids), rng)
        for node, i_rate, o_rate in zip(ids, inbound, outbound):
            self._capacity[node] = NodeBandwidth(float(i_rate), float(o_rate))
        if source_id is not None:
            self._capacity[int(source_id)] = NodeBandwidth(0.0, self.source_outbound)

    def assign_one(
        self,
        node_id: int,
        rng: np.random.Generator,
    ) -> NodeBandwidth:
        """Assign capacity to a single (newly joined) node."""
        inbound = float(self._draw_rates(1, rng)[0])
        outbound = float(self._draw_rates(1, rng)[0])
        capacity = NodeBandwidth(inbound, outbound)
        self._capacity[int(node_id)] = capacity
        return capacity

    # ------------------------------------------------------------------ queries
    def __contains__(self, node_id: int) -> bool:
        return node_id in self._capacity

    def remove(self, node_id: int) -> None:
        """Forget a departed node."""
        self._capacity.pop(node_id, None)

    def of(self, node_id: int) -> NodeBandwidth:
        """Capacity of ``node_id``.

        Raises:
            KeyError: if the node has no assigned capacity.
        """
        return self._capacity[node_id]

    def inbound(self, node_id: int) -> float:
        """Inbound rate of ``node_id`` in segments/s."""
        return self._capacity[node_id].inbound

    def outbound(self, node_id: int) -> float:
        """Outbound rate of ``node_id`` in segments/s."""
        return self._capacity[node_id].outbound

    def mean_inbound(self) -> float:
        """Population mean inbound rate (segments/s)."""
        if not self._capacity:
            return 0.0
        return float(np.mean([c.inbound for c in self._capacity.values()]))

    @staticmethod
    def kbps_to_segments_per_s(kbps: float, segment_bits: int = 30 * 1024) -> float:
        """Convert a rate in Kbps to segments per second."""
        return kbps * 1000.0 / segment_bits

    @staticmethod
    def segments_per_s_to_kbps(rate: float, segment_bits: int = 30 * 1024) -> float:
        """Convert a rate in segments per second to Kbps."""
        return rate * segment_bits / 1000.0


@dataclass(frozen=True)
class BandwidthClass:
    """One access-technology class of a heterogeneous swarm.

    Rates are in segments per second, like everywhere else in the simulator.
    ``min_outbound``/``max_outbound`` default to the inbound range
    (symmetric access), which suits ethernet; asymmetric classes (cable,
    DSL) set them explicitly.
    """

    name: str
    fraction: float
    min_inbound: float
    max_inbound: float
    min_outbound: Optional[float] = None
    max_outbound: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.fraction <= 1.0):
            raise ValueError(f"class {self.name!r}: fraction must be in (0, 1]")
        if not (0.0 < self.min_inbound <= self.max_inbound):
            raise ValueError(f"class {self.name!r}: need 0 < min_inbound <= max_inbound")
        out_lo, out_hi = self.outbound_range
        if not (0.0 < out_lo <= out_hi):
            raise ValueError(f"class {self.name!r}: need 0 < min_outbound <= max_outbound")

    @property
    def outbound_range(self) -> "tuple[float, float]":
        lo = self.min_inbound if self.min_outbound is None else self.min_outbound
        hi = self.max_inbound if self.max_outbound is None else self.max_outbound
        return (lo, hi)


class ClassMixBandwidthModel(BandwidthModel):
    """Bandwidth assignment from a mix of access-technology classes.

    Each node is first assigned a class (ethernet / cable / dsl / ...)
    according to the mix fractions, then draws its inbound and outbound
    rates uniformly from that class's ranges — so a node's two rates are
    correlated through its class, unlike the base model's independent
    draws.  The scenario engine composes this into a run without core code
    changes by swapping it onto the
    :class:`~repro.core.overlay.OverlayManager` before ``build()``.
    """

    def __init__(
        self,
        classes: Iterable[BandwidthClass],
        source_outbound: float = 100.0,
    ) -> None:
        class_list = tuple(classes)
        if not class_list:
            raise ValueError("need at least one bandwidth class")
        total = sum(c.fraction for c in class_list)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"class fractions must sum to 1, got {total:.6f}")
        min_rate = min(c.min_inbound for c in class_list)
        max_rate = max(c.max_inbound for c in class_list)
        mean_rate = sum(
            c.fraction * (c.min_inbound + c.max_inbound) / 2.0 for c in class_list
        )
        super().__init__(
            mean_rate=mean_rate,
            min_rate=min_rate,
            max_rate=max_rate,
            heterogeneous=True,
            source_outbound=source_outbound,
        )
        self.classes = class_list
        self._cumulative = np.cumsum([c.fraction for c in class_list])
        self._class_of: Dict[int, str] = {}

    # ---------------------------------------------------------------- assignment
    def _draw_class(self, rng: np.random.Generator) -> BandwidthClass:
        index = int(np.searchsorted(self._cumulative, rng.random(), side="right"))
        return self.classes[min(index, len(self.classes) - 1)]

    def _assign_from_class(self, node_id: int, rng: np.random.Generator) -> NodeBandwidth:
        klass = self._draw_class(rng)
        inbound = float(rng.uniform(klass.min_inbound, klass.max_inbound))
        out_lo, out_hi = klass.outbound_range
        outbound = float(rng.uniform(out_lo, out_hi))
        capacity = NodeBandwidth(inbound, outbound)
        self._capacity[int(node_id)] = capacity
        self._class_of[int(node_id)] = klass.name
        return capacity

    def assign(
        self,
        node_ids: Iterable[int],
        rng: np.random.Generator,
        source_id: Optional[int] = None,
    ) -> None:
        for node in node_ids:
            self._assign_from_class(int(node), rng)
        if source_id is not None:
            self._capacity[int(source_id)] = NodeBandwidth(0.0, self.source_outbound)
            self._class_of[int(source_id)] = "source"

    def assign_one(self, node_id: int, rng: np.random.Generator) -> NodeBandwidth:
        return self._assign_from_class(node_id, rng)

    # ------------------------------------------------------------------ queries
    def remove(self, node_id: int) -> None:
        super().remove(node_id)
        self._class_of.pop(node_id, None)

    def class_name_of(self, node_id: int) -> str:
        """The access class assigned to ``node_id``.

        Raises:
            KeyError: if the node has no assigned class.
        """
        return self._class_of[node_id]

    def class_census(self) -> Dict[str, int]:
        """How many currently assigned nodes each class holds."""
        census: Dict[str, int] = {}
        for name in self._class_of.values():
            census[name] = census.get(name, 0) + 1
        return census
