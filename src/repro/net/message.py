"""Message kinds and traffic accounting.

The paper's two overhead metrics are ratios of control traffic over real data
traffic (Section 5.3):

* *control overhead* — buffer-map exchange bits / data bits transferred, and
* *pre-fetch overhead* — (DHT routing message bits + pre-fetched data bits)
  / data bits transferred by the normal scheduling path.

The :class:`MessageLedger` accumulates bits per message kind so the metrics
can be computed exactly as defined, per round and cumulatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

#: Size of one DHT routing message (Section 5.4.3: "each routing message
#: costs 10 bytes, i.e. 80 bits").
ROUTING_MESSAGE_BITS = 80

#: Size of a PING/PONG probe used during join (same order as a routing msg).
PING_MESSAGE_BITS = 80


class MessageKind(Enum):
    """Categories of simulated traffic, used for overhead accounting."""

    #: Buffer-map exchange between connected neighbours (control traffic).
    BUFFER_MAP = "buffer_map"
    #: Data segments delivered by the gossip data-scheduling path.
    DATA_SCHEDULED = "data_scheduled"
    #: Data segments delivered by the on-demand (pre-fetch) path.
    DATA_PREFETCH = "data_prefetch"
    #: DHT routing/lookup messages issued by the on-demand retrieval.
    DHT_ROUTING = "dht_routing"
    #: Membership traffic: PING/PONG during join, RP contact, handover notices.
    MEMBERSHIP = "membership"


@dataclass
class MessageLedger:
    """Accumulates traffic volume (bits) and message counts per kind."""

    bits: Dict[MessageKind, float] = field(
        default_factory=lambda: {kind: 0.0 for kind in MessageKind}
    )
    counts: Dict[MessageKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in MessageKind}
    )

    def record(self, kind: MessageKind, size_bits: float, count: int = 1) -> None:
        """Record ``count`` messages of ``kind`` totalling ``size_bits`` bits."""
        if size_bits < 0 or count < 0:
            raise ValueError("size_bits and count must be non-negative")
        self.bits[kind] += float(size_bits)
        self.counts[kind] += int(count)

    def bits_of(self, kind: MessageKind) -> float:
        """Total bits recorded under ``kind``."""
        return self.bits[kind]

    def count_of(self, kind: MessageKind) -> int:
        """Total messages recorded under ``kind``."""
        return self.counts[kind]

    def data_bits(self) -> float:
        """Bits of real data-segment transfer on the scheduling path."""
        return self.bits[MessageKind.DATA_SCHEDULED]

    def control_overhead(self) -> float:
        """Control overhead = buffer-map bits / scheduled-data bits."""
        data = self.data_bits()
        if data <= 0:
            return 0.0
        return self.bits[MessageKind.BUFFER_MAP] / data

    def prefetch_overhead(self) -> float:
        """Pre-fetch overhead = (DHT routing + pre-fetched data) / scheduled data."""
        data = self.data_bits()
        if data <= 0:
            return 0.0
        extra = self.bits[MessageKind.DHT_ROUTING] + self.bits[MessageKind.DATA_PREFETCH]
        return extra / data

    def total_bits(self) -> float:
        """Total bits recorded across every message kind."""
        return float(sum(self.bits.values()))

    def total_count(self) -> int:
        """Total messages recorded across every message kind."""
        return int(sum(self.counts.values()))

    def merge(self, other: "MessageLedger") -> None:
        """Fold another ledger's counters into this one.

        This is how concurrently accumulated per-peer ledgers (one per
        :class:`~repro.runtime.peer.LivePeer`, no shared mutable state) are
        reduced into a swarm-wide ledger: merging is commutative and
        associative, so the reduction order never changes the totals.
        """
        for kind in MessageKind:
            self.bits[kind] += other.bits[kind]
            self.counts[kind] += other.counts[kind]

    @classmethod
    def merged(cls, ledgers: "list[MessageLedger] | tuple[MessageLedger, ...]") -> "MessageLedger":
        """A fresh ledger holding the sum of ``ledgers`` (inputs untouched)."""
        total = cls()
        for ledger in ledgers:
            total.merge(ledger)
        return total

    def snapshot(self) -> "MessageLedger":
        """Deep copy of the current counters.

        The snapshot is detached: later :meth:`record` calls on the live
        ledger never show through, so a collector can difference or merge
        snapshots while the owning peer keeps recording.
        """
        clone = MessageLedger()
        clone.bits = dict(self.bits)
        clone.counts = dict(self.counts)
        return clone

    def delta_since(self, earlier: "MessageLedger") -> "MessageLedger":
        """Ledger containing only the traffic recorded after ``earlier``."""
        delta = MessageLedger()
        for kind in MessageKind:
            delta.bits[kind] = self.bits[kind] - earlier.bits[kind]
            delta.counts[kind] = self.counts[kind] - earlier.counts[kind]
        return delta

    def reset(self) -> None:
        """Zero every counter."""
        for kind in MessageKind:
            self.bits[kind] = 0.0
            self.counts[kind] = 0


@dataclass
class RoundTrafficLog:
    """Per-round ledgers, for time-series overhead metrics (Figures 9-11)."""

    rounds: List[MessageLedger] = field(default_factory=list)
    times: List[float] = field(default_factory=list)

    def append(self, time: float, ledger: MessageLedger) -> None:
        """Record the traffic of one round."""
        self.times.append(float(time))
        self.rounds.append(ledger)

    def control_overhead_series(self) -> List[float]:
        """Per-round control overhead values."""
        return [ledger.control_overhead() for ledger in self.rounds]

    def prefetch_overhead_series(self) -> List[float]:
        """Per-round pre-fetch overhead values."""
        return [ledger.prefetch_overhead() for ledger in self.rounds]

    def cumulative(self) -> MessageLedger:
        """Sum of every recorded round."""
        total = MessageLedger()
        for ledger in self.rounds:
            total.merge(ledger)
        return total
