"""Synthetic Gnutella-like trace topologies.

The paper uses 30 crawls of the early Gnutella network collected by
``dss.clip2.com`` between December 2000 and June 2001.  Each trace record
contains a node id, IP address, port, ping time measured from a central
crawler, and link speed; the paper only uses the id, IP, and ping time.  The
crawled graphs span 100-10000 nodes with an average degree between <1 and
3.5, which is too sparse for streaming, so the paper densifies them with
random edges until every node has ``M = 5`` connected neighbours.

Those traces are no longer available, so this module generates synthetic
equivalents preserving the properties the paper actually relies on:

* the same record schema (id, IP, port, ping time, speed),
* the same node-count range and sparse average degree (sampled in [0.8, 3.5]),
* a heavy-tailed degree distribution (preferential attachment over a random
  backbone), matching early Gnutella measurements, and
* ping times drawn from a log-normal distribution with a median of ~100 ms,
  from which pairwise latencies are later derived exactly as the paper does
  (difference of ping times from the central vantage point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.net.topology import OverlayTopology


@dataclass(frozen=True)
class TraceNodeRecord:
    """One row of a (synthetic) crawl trace.

    Attributes:
        node_id: integer id assigned by the crawler.
        ip: dotted-quad IP address (synthetic, only used for realism).
        port: TCP port the servent listened on.
        ping_ms: ping time from the central crawler, in milliseconds.
        speed_kbps: advertised link speed in Kbps.
    """

    node_id: int
    ip: str
    port: int
    ping_ms: float
    speed_kbps: int


@dataclass(frozen=True)
class TraceTopology:
    """A generated trace: node records plus the sparse crawl graph."""

    records: tuple[TraceNodeRecord, ...]
    graph: OverlayTopology

    def ping_times(self) -> dict[int, float]:
        """Mapping node id -> ping time in milliseconds."""
        return {rec.node_id: rec.ping_ms for rec in self.records}

    def node_ids(self) -> List[int]:
        return [rec.node_id for rec in self.records]


class TraceTopologyGenerator:
    """Generates synthetic Gnutella-like crawl traces.

    Example:
        >>> gen = TraceTopologyGenerator(seed=1)
        >>> trace = gen.generate(num_nodes=200)
        >>> len(trace.records)
        200
        >>> 0.5 <= trace.graph.average_degree() <= 4.0
        True
    """

    #: Typical modem/DSL/T1 speed labels seen in the clip2 traces, in Kbps.
    SPEED_CLASSES: Sequence[int] = (28, 33, 56, 64, 128, 384, 768, 1544)
    SPEED_WEIGHTS: Sequence[float] = (0.08, 0.07, 0.30, 0.10, 0.15, 0.15, 0.10, 0.05)

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ records
    def _random_ip(self, rng: np.random.Generator) -> str:
        octets = rng.integers(1, 255, size=4)
        return ".".join(str(int(o)) for o in octets)

    def _ping_times_ms(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Log-normal ping times, median ~100 ms, clipped to [5 ms, 1.5 s].

        The pairwise one-hop latency the simulator derives from these (half
        the absolute ping-time difference) then averages ~50 ms, matching the
        ``t_hop ≈ 50 ms`` the paper reports for its traces.
        """
        pings = rng.lognormal(mean=np.log(100.0), sigma=0.6, size=count)
        return np.clip(pings, 5.0, 1500.0)

    def generate_records(self, num_nodes: int, rng: Optional[np.random.Generator] = None
                         ) -> List[TraceNodeRecord]:
        """Generate ``num_nodes`` synthetic crawl records."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        rng = rng or self._rng
        pings = self._ping_times_ms(rng, num_nodes)
        speeds = rng.choice(
            self.SPEED_CLASSES, size=num_nodes, p=np.asarray(self.SPEED_WEIGHTS)
        )
        records = []
        for node_id in range(num_nodes):
            records.append(
                TraceNodeRecord(
                    node_id=node_id,
                    ip=self._random_ip(rng),
                    port=int(rng.integers(1024, 65535)),
                    ping_ms=float(pings[node_id]),
                    speed_kbps=int(speeds[node_id]),
                )
            )
        return records

    # -------------------------------------------------------------------- graph
    def _crawl_graph(
        self,
        num_nodes: int,
        average_degree: float,
        rng: np.random.Generator,
    ) -> OverlayTopology:
        """Heavy-tailed sparse graph approximating an early Gnutella crawl.

        Preferential attachment with a fractional number of edges per new
        node reproduces both the power-law tail and the sub-1 average degrees
        seen in the smallest crawls (some crawled servents have no resolved
        neighbours at all).
        """
        graph = OverlayTopology(range(num_nodes))
        if num_nodes <= 1:
            return graph
        edges_target = max(0, int(round(average_degree * num_nodes / 2.0)))
        # Preferential attachment: weight each endpoint by degree + 1.
        degrees = np.ones(num_nodes, dtype=np.float64)
        added = 0
        attempts = 0
        max_attempts = 20 * max(edges_target, 1)
        while added < edges_target and attempts < max_attempts:
            attempts += 1
            probs = degrees / degrees.sum()
            a = int(rng.choice(num_nodes, p=probs))
            b = int(rng.choice(num_nodes, p=probs))
            if a == b or graph.has_edge(a, b):
                continue
            graph.add_edge(a, b)
            degrees[a] += 1.0
            degrees[b] += 1.0
            added += 1
        return graph

    def generate(
        self,
        num_nodes: int,
        average_degree: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> TraceTopology:
        """Generate one synthetic trace of ``num_nodes`` nodes.

        Args:
            num_nodes: number of crawled servents (paper range: 100-10000).
            average_degree: target crawl-graph average degree; sampled
                uniformly in ``[0.8, 3.5]`` when omitted (paper: "<1 to 3.5").
            seed: optional per-trace seed overriding the generator's stream.
        """
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        if average_degree is None:
            average_degree = float(rng.uniform(0.8, 3.5))
        records = self.generate_records(num_nodes, rng)
        graph = self._crawl_graph(num_nodes, average_degree, rng)
        return TraceTopology(records=tuple(records), graph=graph)

    def generate_suite(
        self,
        sizes: Sequence[int],
        traces_per_size: int = 1,
    ) -> List[TraceTopology]:
        """Generate a suite of traces mimicking the paper's 30-trace corpus."""
        suite: List[TraceTopology] = []
        for size in sizes:
            for _ in range(traces_per_size):
                suite.append(self.generate(size))
        return suite


def build_streaming_overlay(
    trace: TraceTopology,
    target_degree: int,
    rng: np.random.Generator,
) -> OverlayTopology:
    """Densify a sparse crawl graph for streaming, as the paper does.

    Random edges are added until every node has at least ``target_degree``
    neighbours (``M = 5`` by default in the paper); the original crawl edges
    are preserved.
    """
    overlay = trace.graph.copy()
    overlay.densify_to_degree(target_degree, rng)
    return overlay
