"""Undirected overlay topology.

A thin adjacency-set graph specialised for the simulator's needs: node
addition/removal under churn, random edge densification to a target degree,
and neighbour sampling.  We intentionally do not depend on :mod:`networkx`
for the hot path (the simulator touches adjacency sets every round), but the
graph can be exported to networkx for analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np


class OverlayTopology:
    """Mutable undirected graph over integer node ids."""

    def __init__(self, nodes: Optional[Iterable[int]] = None) -> None:
        self._adj: Dict[int, Set[int]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(int(node))

    # ------------------------------------------------------------------ nodes
    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def nodes(self) -> List[int]:
        """Sorted list of node ids."""
        return sorted(self._adj)

    def iter_nodes(self) -> Iterator[int]:
        return iter(self._adj)

    def add_node(self, node: int) -> None:
        """Add a node (no-op if already present)."""
        self._adj.setdefault(int(node), set())

    def remove_node(self, node: int) -> Set[int]:
        """Remove a node and its incident edges; returns its old neighbours."""
        neighbours = self._adj.pop(node, set())
        for other in neighbours:
            self._adj[other].discard(node)
        return neighbours

    # ------------------------------------------------------------------ edges
    def add_edge(self, a: int, b: int) -> bool:
        """Add an undirected edge; returns False for self-loops/duplicates."""
        if a == b:
            return False
        self.add_node(a)
        self.add_node(b)
        if b in self._adj[a]:
            return False
        self._adj[a].add(b)
        self._adj[b].add(a)
        return True

    def remove_edge(self, a: int, b: int) -> bool:
        """Remove the edge if present; returns whether it existed."""
        if a in self._adj and b in self._adj[a]:
            self._adj[a].discard(b)
            self._adj[b].discard(a)
            return True
        return False

    def has_edge(self, a: int, b: int) -> bool:
        return a in self._adj and b in self._adj[a]

    def neighbors(self, node: int) -> Set[int]:
        """A copy of the neighbour set of ``node``."""
        return set(self._adj.get(node, set()))

    def degree(self, node: int) -> int:
        return len(self._adj.get(node, set()))

    def edge_count(self) -> int:
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self.edge_count() / len(self._adj)

    def edges(self) -> List[tuple[int, int]]:
        """All undirected edges as ``(min, max)`` pairs, sorted."""
        seen = set()
        for a, neigh in self._adj.items():
            for b in neigh:
                seen.add((a, b) if a < b else (b, a))
        return sorted(seen)

    # ------------------------------------------------------------- operations
    def densify_to_degree(
        self, target_degree: int, rng: np.random.Generator
    ) -> int:
        """Add random edges until every node has at least ``target_degree``
        neighbours (the paper adds random edges so every node holds ``M = 5``
        connected neighbours).

        Returns the number of edges added.  Nodes that cannot reach the
        target (graph too small) get as many as possible.
        """
        node_list = self.nodes()
        n = len(node_list)
        if n <= 1:
            return 0
        added = 0
        max_possible = min(target_degree, n - 1)
        deficient = [v for v in node_list if self.degree(v) < max_possible]
        attempts_budget = 50 * n * max(1, target_degree)
        attempts = 0
        while deficient and attempts < attempts_budget:
            attempts += 1
            v = deficient[int(rng.integers(len(deficient)))]
            w = node_list[int(rng.integers(n))]
            if w == v or self.has_edge(v, w):
                continue
            self.add_edge(v, w)
            added += 1
            deficient = [u for u in deficient if self.degree(u) < max_possible]
        return added

    def random_neighbor_sample(
        self, node: int, count: int, rng: np.random.Generator
    ) -> List[int]:
        """Up to ``count`` distinct random neighbours of ``node``."""
        neigh = sorted(self._adj.get(node, set()))
        if not neigh or count <= 0:
            return []
        if count >= len(neigh):
            return neigh
        idx = rng.choice(len(neigh), size=count, replace=False)
        return [neigh[i] for i in idx]

    def connected_component_sizes(self) -> List[int]:
        """Sizes of connected components, descending — useful for sanity checks."""
        seen: Set[int] = set()
        sizes: List[int] = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            size = 0
            while stack:
                v = stack.pop()
                size += 1
                for w in self._adj[v]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            sizes.append(size)
        return sorted(sizes, reverse=True)

    def to_networkx(self):  # pragma: no cover - convenience only
        """Export to a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.edges())
        return graph

    def copy(self) -> "OverlayTopology":
        """Deep copy of the topology."""
        clone = OverlayTopology()
        clone._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return clone
