"""The live asyncio runtime: real concurrent peers over a wire protocol.

Where :mod:`repro.core.system` clocks the protocol in lock-step rounds on
a discrete-event engine, this package runs the same protocol logic as a
swarm of independent asyncio tasks exchanging length-prefixed binary
frames over in-process loopback transports:

* :mod:`repro.runtime.wire` — the codec for the full message vocabulary
  (buffer maps, segment transfers, DHT routing/lookup, membership
  PING/PONG and backup handover), with ledger accounting reconciled
  against the paper's Section 5.4 message sizes;
* :mod:`repro.runtime.peer` — :class:`~repro.runtime.peer.LivePeer`, the
  actor adapting :class:`~repro.core.node.StreamingNode` to an
  event-driven inbox with per-link latency and send-budget pacing;
* :mod:`repro.runtime.swarm` — :class:`~repro.runtime.swarm.LiveSwarm`,
  the orchestrator booting a scenario's peers, driving live churn and
  collecting continuity/overhead metrics;
* :mod:`repro.runtime.parity` — the sim-vs-runtime parity harness.

Deployment at scale lives in :mod:`repro.runtime.cluster`: the same
swarm sharded across worker processes, cross-shard links on real TCP
sockets behind the same codec (``docs/cluster.md``); see
``docs/runtime.md`` for the single-process runtime.
"""

from repro.runtime.clock import VirtualClockEventLoop, run_on_virtual_clock
from repro.runtime.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    LinkConfig,
    run_cluster,
)
from repro.runtime.parity import (
    PARITY_TOLERANCE,
    ParityMatrix,
    ParityReport,
    run_parity,
    run_parity_matrix,
)
from repro.runtime.slim import (
    HybridShardSwarm,
    HybridSwarm,
    SlimTier,
    default_core_peers,
)
from repro.runtime.swarm import (
    CLOCKS,
    DEFAULT_TIME_SCALE,
    LiveSwarm,
    RuntimeResult,
    run_swarm,
)
from repro.runtime.transport import (
    BoundedInbox,
    TransportConfig,
    TransportStats,
    TransportSummary,
)
from repro.runtime.wire import (
    BufferMapDelta,
    BufferMapMsg,
    CreditGrant,
    DhtLookup,
    DhtResponse,
    FrameBatch,
    FrameDecoder,
    Handover,
    Ping,
    Pong,
    SegmentData,
    SegmentRequest,
    TruncatedFrameError,
    WireError,
    WireKind,
    decode,
    encode,
    encode_batch,
    frame_count,
    ledger_entry,
)

__all__ = [
    "BoundedInbox",
    "BufferMapDelta",
    "BufferMapMsg",
    "CLOCKS",
    "ClusterConfig",
    "ClusterCoordinator",
    "CreditGrant",
    "LinkConfig",
    "run_cluster",
    "DEFAULT_TIME_SCALE",
    "DhtLookup",
    "DhtResponse",
    "FrameBatch",
    "FrameDecoder",
    "Handover",
    "HybridShardSwarm",
    "HybridSwarm",
    "LiveSwarm",
    "PARITY_TOLERANCE",
    "ParityMatrix",
    "ParityReport",
    "Ping",
    "Pong",
    "RuntimeResult",
    "SegmentData",
    "SegmentRequest",
    "SlimTier",
    "TransportConfig",
    "TransportStats",
    "TransportSummary",
    "TruncatedFrameError",
    "VirtualClockEventLoop",
    "WireError",
    "WireKind",
    "decode",
    "default_core_peers",
    "encode",
    "encode_batch",
    "frame_count",
    "ledger_entry",
    "run_on_virtual_clock",
    "run_parity",
    "run_parity_matrix",
    "run_swarm",
]
