"""Bounded, backpressured peer transports for the live runtime.

PR 3's runtime shipped every frame into an *unbounded* ``asyncio.Queue``
per peer.  That can neither deadlock nor drop — but it also means an
overloaded swarm silently buffers without limit, and the throughput
numbers in ``BENCH_runtime.json`` measure a regime no real deployment
allows.  This module replaces that queue with explicit flow control:

* :class:`TransportConfig` — the knobs: the per-peer inbox watermark, the
  per-link DATA credit window and the sender-side pending limit;
* :class:`BoundedInbox` — a two-lane bounded receive queue.  **Control
  frames (buffer maps, requests, PING/PONG, DHT, credits) ride a priority
  lane** that is always drained before segment data, so the gossip and
  membership planes never starve behind bulk transfer — the classic
  head-of-line separation streaming flow-control analyses call out;
* :class:`TransportStats` / :class:`TransportSummary` — per-peer and
  swarm-wide observability: queue high-watermarks, send stalls, overflow
  drops and credits granted, surfaced through
  :class:`~repro.runtime.swarm.RuntimeResult` and the runtime CLI.

The credit protocol itself lives in :mod:`repro.runtime.peer`: a sender
may have at most ``data_window`` unconsumed :class:`~repro.runtime.wire.
SegmentData` frames outstanding per link; the receiver returns credits in
batches with :class:`~repro.runtime.wire.CreditGrant` control frames as it
consumes (or sheds) data.  A sender out of credit queues the segment in a
*bounded* per-link pending buffer instead of flooding the wire — so every
queue in the system has a configurable ceiling and an overflow policy,
and total buffered frames are bounded regardless of swarm size or load.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Tuple


@dataclass(frozen=True)
class TransportConfig:
    """Flow-control knobs of the runtime's peer transports.

    Attributes:
        inbox_watermark: max frames queued per inbox *lane* (control and
            data each); an arriving frame finding its lane full is shed
            and counted, never buffered without bound.
        data_window: per-link credit window — the max un-consumed
            ``SegmentData`` frames a sender may have outstanding towards
            one receiver before it must wait for a ``CreditGrant``.
        pending_limit: max segments a sender queues per link while waiting
            for credit; beyond it the oldest pending segment is shed (the
            requester's NACK/rescue machinery re-requests if it still
            matters).
    """

    inbox_watermark: int = 512
    data_window: int = 16
    pending_limit: int = 64

    def __post_init__(self) -> None:
        if self.inbox_watermark < 1:
            raise ValueError("inbox_watermark must be >= 1")
        if self.data_window < 1:
            raise ValueError("data_window must be >= 1")
        if self.pending_limit < 1:
            raise ValueError("pending_limit must be >= 1")

    @property
    def credit_batch(self) -> int:
        """Consumed frames per :class:`~repro.runtime.wire.CreditGrant`.

        Half the window: small enough that the sender's pipeline never
        drains dry waiting for the first grant, large enough that credit
        traffic stays a small fraction of data traffic.
        """
        return max(1, self.data_window // 2)


@dataclass
class TransportStats:
    """One peer's transport counters (collected into the run summary)."""

    #: Peak total frames queued in the inbox (both lanes) at once.
    inbox_high_watermark: int = 0
    #: Data frames shed because the inbox data lane was full.
    inbox_dropped_data: int = 0
    #: Control frames shed because the inbox control lane was full.
    inbox_dropped_control: int = 0
    #: Times a segment send had to queue for lack of link credit.
    send_stalls: int = 0
    #: Segments shed from a full sender-side pending queue.
    pending_shed: int = 0
    #: Peak segments queued towards a single link awaiting credit.
    pending_high_watermark: int = 0
    #: CreditGrant frames this peer issued to its senders.
    credits_granted: int = 0
    #: Credit-gated links forcibly reset (peer departures and cluster
    #: socket drops) — each reset refunds the link's in-flight credits.
    link_resets: int = 0
    #: Physical bytes of buffer-map gossip this peer sent (full maps and
    #: deltas, as actually encoded).
    gossip_bytes: int = 0
    #: What the same gossip would have cost had every map shipped full —
    #: the baseline the delta savings are measured against.
    gossip_bytes_full: int = 0
    #: Buffer maps this peer shipped as deltas / as full maps.
    map_deltas_sent: int = 0
    map_fulls_sent: int = 0
    #: Incoming deltas dropped for a missing or out-of-sequence base map
    #: (each triggers a PING resync towards the sender).
    map_desyncs: int = 0


@dataclass(frozen=True)
class TransportSummary:
    """Swarm-wide aggregate of every peer's :class:`TransportStats`.

    Sums across peers, except the high-watermarks which take the max —
    "the fullest any queue ever got" is the capacity-planning number.
    """

    inbox_high_watermark: int = 0
    inbox_dropped_data: int = 0
    inbox_dropped_control: int = 0
    send_stalls: int = 0
    pending_shed: int = 0
    pending_high_watermark: int = 0
    credits_granted: int = 0
    link_resets: int = 0
    gossip_bytes: int = 0
    gossip_bytes_full: int = 0
    map_deltas_sent: int = 0
    map_fulls_sent: int = 0
    map_desyncs: int = 0

    #: Fields aggregated as maxima rather than sums (peak queue depths).
    _MAX_FIELDS = frozenset({"inbox_high_watermark", "pending_high_watermark"})

    @classmethod
    def aggregate(cls, stats: Iterable[TransportStats]) -> "TransportSummary":
        values = {f.name: 0 for f in dataclasses.fields(cls)}
        for entry in stats:
            for name in values:
                if name in cls._MAX_FIELDS:
                    values[name] = max(values[name], getattr(entry, name))
                else:
                    values[name] += getattr(entry, name)
        return cls(**values)

    def to_dict(self) -> Dict[str, int]:
        """Flat dict form (for summaries and benchmark artifacts)."""
        return dataclasses.asdict(self)

    def formatted(self) -> str:
        """One human-readable line (the runtime CLI's transport row)."""
        return (
            f"inbox high-watermark {self.inbox_high_watermark}, "
            f"send stalls {self.send_stalls}, "
            f"shed {self.inbox_dropped_data}+{self.pending_shed} data / "
            f"{self.inbox_dropped_control} control, "
            f"credits granted {self.credits_granted}, "
            f"map desyncs {self.map_desyncs}"
        )


class BoundedInbox:
    """A bounded, two-lane receive queue with control priority.

    Frames arrive tagged ``control`` or ``data``; :meth:`get` always
    drains the control lane first, so buffer maps, credits and membership
    probes cross the swarm even when bulk segment data has filled the
    data lane.  Each lane holds at most ``watermark`` frames — an
    arriving frame finding its lane full is *shed* (``put`` returns
    ``False``) rather than queued, which together with the sender-side
    credit window bounds the whole swarm's buffered memory.

    Single-consumer: exactly one reader task may block in :meth:`get`.
    """

    def __init__(self, watermark: int, stats: TransportStats) -> None:
        if watermark < 1:
            raise ValueError("watermark must be >= 1")
        self.watermark = watermark
        self.stats = stats
        #: (sender id, frame bytes, weight) per lane.  The weight is the
        #: number of logical frames the entry carries (> 1 for a
        #: :class:`~repro.runtime.wire.FrameBatch`), so a batched burst
        #: counts against the watermark exactly like its loose frames.
        self._control: Deque[Tuple[int, bytes, int]] = deque()
        self._data: Deque[Tuple[int, bytes, int]] = deque()
        self._control_depth = 0
        self._data_depth = 0
        self._ready = asyncio.Event()

    def __len__(self) -> int:
        return self._control_depth + self._data_depth

    def put(self, src: int, frame: bytes, control: bool, weight: int = 1) -> bool:
        """Enqueue one frame; returns ``False`` if the lane shed it.

        ``weight`` is the logical frame count of the entry (a batch of
        *k* frames fills *k* watermark slots).
        """
        if control:
            if self._control_depth >= self.watermark:
                self.stats.inbox_dropped_control += weight
                return False
            self._control.append((src, frame, weight))
            self._control_depth += weight
        else:
            if self._data_depth >= self.watermark:
                self.stats.inbox_dropped_data += weight
                return False
            self._data.append((src, frame, weight))
            self._data_depth += weight
        depth = len(self)
        if depth > self.stats.inbox_high_watermark:
            self.stats.inbox_high_watermark = depth
        self._ready.set()
        return True

    async def get(self) -> Tuple[int, bytes, bool]:
        """Dequeue ``(src, frame, was_control)``, control lane first."""
        while not self._control and not self._data:
            self._ready.clear()
            await self._ready.wait()
        if self._control:
            src, frame, weight = self._control.popleft()
            self._control_depth -= weight
            return src, frame, True
        src, frame, weight = self._data.popleft()
        self._data_depth -= weight
        return src, frame, False

    async def get_batch(self) -> "list[Tuple[int, bytes, bool]]":
        """Dequeue everything queued right now, control lane first.

        One task wake-up per *burst* instead of per frame — the reader
        loop's throughput lever: under load the per-frame ``await`` (a
        full event-loop cycle each) dominated the runtime's messages/sec
        ceiling.
        """
        while not self._control and not self._data:
            self._ready.clear()
            await self._ready.wait()
        batch = [(src, frame, True) for src, frame, _ in self._control]
        self._control.clear()
        self._control_depth = 0
        batch.extend((src, frame, False) for src, frame, _ in self._data)
        self._data.clear()
        self._data_depth = 0
        return batch


class CreditedLink:
    """Sender-side state of one credit-gated link (towards one receiver)."""

    __slots__ = ("credits", "pending")

    def __init__(self, window: int) -> None:
        self.credits = window
        self.pending: Deque[Any] = deque()


class SendWindowSet:
    """Every credit-gated outbound link of one peer.

    The gate only applies to segment data; control frames always pass.
    ``acquire`` spends a credit (or queues the item), ``grant`` returns
    credits and releases queued items in FIFO order.  Items are opaque to
    the window (the peer queues ``(frame, ledger entry)`` pairs so shed
    segments are never charged to the traffic ledger).
    """

    def __init__(self, config: TransportConfig, stats: TransportStats) -> None:
        self.config = config
        self.stats = stats
        self._links: Dict[int, CreditedLink] = {}

    def link(self, dst: int) -> CreditedLink:
        link = self._links.get(dst)
        if link is None:
            link = self._links[dst] = CreditedLink(self.config.data_window)
        return link

    def acquire(self, dst: int, item: Any) -> bool:
        """Try to spend one credit towards ``dst``.

        Returns ``True`` when the item may ship now.  Otherwise the item
        is queued (bounded; the oldest pending item is shed past
        ``pending_limit``) and ``False`` is returned — the caller must not
        send it; :meth:`grant` will release it later.
        """
        link = self.link(dst)
        if link.credits > 0 and not link.pending:
            link.credits -= 1
            return True
        self.stats.send_stalls += 1
        if len(link.pending) >= self.config.pending_limit:
            link.pending.popleft()
            self.stats.pending_shed += 1
        link.pending.append(item)
        if len(link.pending) > self.stats.pending_high_watermark:
            self.stats.pending_high_watermark = len(link.pending)
        return False

    def grant(self, dst: int, credits: int) -> "list[Any]":
        """Credit ``dst``'s link and return the pending items now clear
        to ship (already debited).

        Incoming credits release pending items one-for-one first; only
        the residual tops the free window back up (capped there), so a
        grant larger than the free window never loses credits to the cap
        while items are waiting.
        """
        link = self.link(dst)
        released: list[Any] = []
        while credits > 0 and link.pending:
            credits -= 1
            released.append(link.pending.popleft())
        link.credits = min(self.config.data_window, link.credits + credits)
        return released

    def reset(self, dst: int) -> None:
        """Forget the link to ``dst`` entirely (fresh window on next use).

        Called when ``dst`` leaves the swarm — or, in the cluster runtime,
        when the socket link to ``dst``'s shard drops: credits spent on
        frames the network dropped at the dead peer (or lost with the
        connection) can never be granted back, and a joiner later admitted
        under a recycled ring id must meet a full window, not the corpse's
        exhausted one.  Counted in ``stats.link_resets`` when flow-control
        state actually existed.
        """
        if self._links.pop(dst, None) is not None:
            self.stats.link_resets += 1

    def pending_count(self) -> int:
        """Total frames queued across links (for tests/diagnostics)."""
        return sum(len(link.pending) for link in self._links.values())


@dataclass
class CreditLedger:
    """Receiver-side tally of consumed-but-not-yet-granted data frames."""

    batch: int
    owed: Dict[int, int] = field(default_factory=dict)

    def consume(self, src: int) -> bool:
        """Count one consumed/shed data frame from ``src``; ``True`` when
        a grant is due (owed reached the batch size)."""
        owed = self.owed.get(src, 0) + 1
        self.owed[src] = owed
        return owed >= self.batch

    def take(self, src: int) -> int:
        """Collect (and reset) the credits owed to ``src``."""
        return self.owed.pop(src, 0)

    def drain(self) -> Dict[int, int]:
        """Collect (and reset) every non-zero owed balance."""
        owed, self.owed = self.owed, {}
        return owed
