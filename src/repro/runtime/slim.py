"""Hybrid-fidelity swarm tier: array-backed slim peers around a live core.

Full-fidelity :class:`~repro.runtime.peer.LivePeer` tasks cap the runtime
at roughly a thousand peers per host — every peer carries an asyncio
task, a reader loop, bounded inboxes and per-link credit windows.  The
paper's claims, however, are about *swarm-scale* continuity.  This module
scales the runtime to six-figure populations the way large-swarm
streaming studies do: the bulk of the swarm is modeled **statistically**
(one numpy-array tier, no per-peer task, no per-frame wire traffic)
while a configurable **core** of full-fidelity live peers keeps the
protocol — gossip, Algorithm-1 scheduling, DHT recovery, credit
backpressure — physically real.

The slim tier aggregates per scheduling period, mirroring what
Algorithm 1 converges to in expectation rather than executing it
per-segment:

* **membership** follows the scenario's exact
  :class:`~repro.net.churn.ChurnSchedule` fractions, applied to the slim
  population with the same boundary ordering as the live churn driver
  (leave/join at boundary *r* take effect at tick *r + 1*, no churn after
  the final boundary);
* **startup** gates a joiner out of the playing set for
  ``ceil(startup_segments / segments_per_round)`` periods — the live
  peer's buffering delay (§III-B), collapsed to its deterministic mean;
* **playback** per period is a binomial draw: each started slim peer
  plays continuously with probability ``core_continuity × capacity``,
  where *core continuity* is the full-fidelity core's measured
  playing/total for the same period (the core peers *are* the protocol,
  so their misses — churn wounds, scheduling conflicts, loss — transfer
  statistically to the tier), and *capacity* is the paper's bandwidth
  balance ``min(1, supply/demand)`` with supply
  ``total·I·τ·(1 − loss) + source_outbound·τ`` and demand
  ``started·segments_per_round`` (eq. (1)'s feasibility condition).

Everything the tier does is driven by a dedicated
:func:`~repro.sim.rng.derive_seed` stream, so a virtual-clock hybrid run
is bit-identical for identical specs and seeds — the same contract the
full runtime pins.

What is **not** emulated: slim peers exchange no wire frames (they add
nothing to ``messages_sent`` / ``bytes_on_wire``), hold no buffer maps,
and cannot serve the core — the core swarm is sized by ``--core-peers``
and behaves exactly like a standalone swarm of that size.  The parity
contract (|Δ stable continuity| ≤ 0.03 vs the full runtime at
overlapping sizes, ``tests/test_runtime_hybrid.py``) bounds what that
approximation costs.

Composition is by MRO: :class:`HybridSwarm` mixes the tier into
:class:`~repro.runtime.swarm.LiveSwarm`, :class:`HybridShardSwarm` into
:class:`~repro.runtime.cluster.shard.ShardSwarm` — the tier hooks the
swarm's single aggregation point (``_period_playback_counts``) so
telemetry frames, playback samples, the merged tracker, campaigns and
the PR 8 health engine all see core + slim as **one population** with no
changes of their own.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.net.churn import ChurnSchedule
from repro.runtime.cluster.shard import ShardSwarm
from repro.runtime.swarm import LiveSwarm
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import derive_seed

__all__ = [
    "SlimTier",
    "HybridSwarm",
    "HybridShardSwarm",
    "default_core_peers",
]

#: Core sizes below this lose the gossip fan-out the statistics lean on.
MIN_CORE_PEERS = 2

#: Default full-fidelity core: 50 live peers is the documented sweet spot
#: (a 50-peer swarm already exhibits the paper's stable-phase continuity,
#: see BENCH_runtime.json) and stays cheap enough for 100k-peer totals.
DEFAULT_CORE_PEERS = 50


def default_core_peers(num_nodes: int) -> int:
    """Core size when ``--core-peers`` is omitted: 50, capped by the swarm."""
    return max(MIN_CORE_PEERS, min(DEFAULT_CORE_PEERS, int(num_nodes)))


class SlimTier:
    """The statistical bulk of a hybrid swarm, as two numpy arrays.

    State is ~5 bytes per peer ever admitted (one liveness bool + one
    int32 join round) — no objects, no tasks, no buffers.  One
    :meth:`step` call per scheduling period applies the churn schedule
    and draws the period's playback sample.
    """

    __slots__ = (
        "config",
        "churn",
        "loss_rate",
        "rng",
        "alive",
        "first_round",
        "startup_rounds",
        "history",
        "joined",
        "left",
    )

    #: Dissemination discount: a swarm larger than its measured core pays
    #: extra deadline misses — segments reach the marginal peers through
    #: more gossip generations, each with a small hazard of landing past
    #: the playback deadline.  The hazard *saturates* (peers beyond the
    #: buffer-lag window recover via the paper's DHT prefetch path rather
    #: than missing forever), so the discount is
    #: ``SAT · (1 − (total/core)^−ALPHA)`` — 0 when the tier is empty,
    #: ≈``SAT`` for six-figure swarms.  Constants calibrated against the
    #: full runtime's measured size curve (static, virtual clock, n ∈
    #: [50, 200]; see ``tests/test_runtime_hybrid.py``).
    DISSEMINATION_SAT = 0.043
    DISSEMINATION_ALPHA = 1.5

    def __init__(
        self,
        count: int,
        config: Any,
        churn: Optional[ChurnSchedule] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if count < 0:
            raise ValueError("slim tier size must be >= 0")
        self.config = config
        self.churn = churn
        self.loss_rate = float(loss_rate)
        self.rng = np.random.default_rng(int(seed))
        #: Liveness per slot; departed slots stay allocated (history).
        self.alive = np.ones(int(count), dtype=bool)
        #: Round each slot joined at (0 = present from boot).
        self.first_round = np.zeros(int(count), dtype=np.int32)
        #: Periods a joiner buffers before it can count as playing —
        #: the live peer's startup_segments fill time, deterministically.
        self.startup_rounds = max(
            1, math.ceil(config.startup_segments / config.segments_per_round)
        )
        #: Per-tick ``(playing, total)`` samples, indexed by round.
        self.history: List[Tuple[int, int]] = []
        self.joined = 0
        self.left = 0

    # ------------------------------------------------------------------ facts
    @property
    def count(self) -> int:
        """Slots ever allocated (initial population + all joiners)."""
        return int(self.alive.size)

    @property
    def alive_count(self) -> int:
        """Currently-live slim peers."""
        return int(self.alive.sum())

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the tier's per-peer state arrays."""
        return int(self.alive.nbytes + self.first_round.nbytes)

    def sample_for(self, tick: int) -> Tuple[int, int]:
        """``(playing, total)`` recorded for ``tick`` (``(0, 0)`` if none)."""
        if 0 <= tick < len(self.history):
            return self.history[tick]
        return (0, 0)

    # ------------------------------------------------------------------- step
    def step(self, round_index: int, core_playing: int, core_total: int) -> None:
        """Advance one period: churn first, then this period's sample.

        Mirrors the live churn driver's ordering: the boundary-``r`` churn
        event produces joiners whose first tick is ``r + 1``, and no churn
        fires after the final boundary — so :meth:`step` for round ``r``
        first applies the churn drawn at boundary ``r − 1``.
        """
        if round_index > 0:
            self._apply_churn(round_index - 1)
        in_swarm = self.alive & (self.first_round <= round_index)
        total = int(in_swarm.sum())
        started = int(
            (
                in_swarm
                & (
                    (self.first_round == 0)
                    | (round_index >= self.first_round + self.startup_rounds)
                )
            ).sum()
        )
        core_continuity = (core_playing / core_total) if core_total else 1.0
        p = (
            core_continuity
            * self._capacity_ratio(total, started)
            * self._dissemination_factor(total, core_total)
        )
        playing = int(self.rng.binomial(started, min(1.0, max(0.0, p))))
        self.history.append((playing, total))

    def _apply_churn(self, churn_round: int) -> None:
        """Apply the schedule's boundary-``churn_round`` event to the tier."""
        if self.churn is None:
            return
        population = self.alive_count
        if population == 0:
            return
        leave_frac, join_frac = self.churn.fractions(churn_round)
        leavers = min(population, int(round(leave_frac * population)))
        if leavers > 0:
            victims = self.rng.choice(
                np.flatnonzero(self.alive), size=leavers, replace=False
            )
            self.alive[victims] = False
            self.left += leavers
        joiners = int(round(join_frac * population))
        if joiners > 0:
            self.alive = np.concatenate(
                [self.alive, np.ones(joiners, dtype=bool)]
            )
            self.first_round = np.concatenate(
                [
                    self.first_round,
                    np.full(joiners, churn_round + 1, dtype=np.int32),
                ]
            )
            self.joined += joiners

    def _dissemination_factor(self, total: int, core_total: int) -> float:
        """Size discount for the tier's extra gossip depth (see class doc)."""
        if total <= 0:
            return 1.0
        if core_total <= 0:
            return 1.0 - self.DISSEMINATION_SAT
        ratio = (core_total + total) / core_total
        return 1.0 - self.DISSEMINATION_SAT * (
            1.0 - ratio ** -self.DISSEMINATION_ALPHA
        )

    def _capacity_ratio(self, total: int, started: int) -> float:
        """The paper's bandwidth-balance feasibility, ``min(1, supply/demand)``.

        Supply: the tier's aggregate inbound budget ``total·I·τ`` derated
        by the scenario loss rate, plus the source's outbound.  Demand:
        every started peer needs ``p·τ`` segments per period.
        """
        if started <= 0:
            return 1.0
        tau = self.config.scheduling_period
        supply = (
            total * self.config.mean_inbound * tau * (1.0 - self.loss_rate)
            + self.config.source_outbound * tau
        )
        demand = started * self.config.segments_per_round
        if demand <= 0:
            return 1.0
        return min(1.0, supply / demand)


class _HybridTierMixin:
    """Folds a :class:`SlimTier` into a live swarm's aggregation seams.

    Mixes in *before* the swarm class so the MRO routes the swarm's
    period aggregation (``_period_playback_counts``), live-peer gauge and
    fidelity export through the tier, while ``super()`` keeps the
    unmodified core-only views available internally.
    """

    slim: SlimTier
    full_spec: ScenarioSpec
    core_peers: int

    def _init_slim(
        self, full_spec: ScenarioSpec, core_peers: int, slim_count: int, shard: int = 0
    ) -> None:
        self.full_spec = full_spec
        self.core_peers = int(core_peers)
        self.slim = SlimTier(
            count=slim_count,
            config=self.config,
            churn=full_spec.churn,
            loss_rate=full_spec.loss_rate,
            seed=derive_seed(full_spec.seed, f"slim-tier/{shard}"),
        )

    async def _boundary_sync(self, round_index: int, own_lateness: float) -> None:
        """Step the slim tier at every boundary, after the core syncs.

        Runs before the telemetry emit in ``_churn_loop``, so the frame
        for ``round_index`` already carries the tier's fresh sample.  The
        tier conditions on the core's *own* period counts (``super()``'s
        view), never on its own output.
        """
        await super()._boundary_sync(round_index, own_lateness)
        core_playing, core_total = super()._period_playback_counts(round_index)
        self.slim.step(round_index, core_playing, core_total)

    def _period_playback_counts(self, tick: int) -> Tuple[int, int]:
        playing, total = super()._period_playback_counts(tick)
        slim_playing, slim_total = self.slim.sample_for(tick)
        return playing + slim_playing, total + slim_total

    def _peers_live(self) -> int:
        return super()._peers_live() + self.slim.alive_count

    def _fidelity_export(self) -> Optional[Dict[str, Any]]:
        return {
            "mode": "hybrid",
            "core_peers": self.core_peers,
            "slim_peers": self.slim.count,
            "slim_alive": self.slim.alive_count,
            "slim_joined": self.slim.joined,
            "slim_left": self.slim.left,
            "slim_memory_bytes": self.slim.memory_bytes,
            "total_peers": int(self.full_spec.num_nodes),
        }


def _core_size(spec: ScenarioSpec, core_peers: Optional[int]) -> int:
    core = default_core_peers(spec.num_nodes) if core_peers is None else int(core_peers)
    if core < MIN_CORE_PEERS:
        raise ValueError(f"core_peers must be >= {MIN_CORE_PEERS}, got {core}")
    if core > spec.num_nodes:
        raise ValueError(
            f"core_peers ({core}) cannot exceed the swarm size ({spec.num_nodes})"
        )
    return core


class HybridSwarm(_HybridTierMixin, LiveSwarm):
    """A single-process hybrid swarm: live core + slim statistical bulk.

    Accepts every :class:`~repro.runtime.swarm.LiveSwarm` knob; the spec's
    ``num_nodes`` is the *total* population, of which ``core_peers`` run
    as full-fidelity live peers (default :func:`default_core_peers`).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        core_peers: Optional[int] = None,
        **swarm_kwargs: Any,
    ) -> None:
        core = _core_size(spec, core_peers)
        super().__init__(spec.scaled(num_nodes=core), **swarm_kwargs)
        self._init_slim(spec, core, spec.num_nodes - core, shard=0)


class HybridShardSwarm(_HybridTierMixin, ShardSwarm):
    """A cluster shard hosting its slice of both tiers.

    The core swarm shards exactly as before (contiguous ring ranges over
    ``core_peers`` nodes); the slim population is split near-evenly
    across shards, each slice with its own derived RNG stream so the
    cluster total is deterministic for a given seed and shard count.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        shard_index: int,
        num_shards: int,
        core_peers: Optional[int] = None,
        **swarm_kwargs: Any,
    ) -> None:
        core = _core_size(spec, core_peers)
        super().__init__(
            spec.scaled(num_nodes=core), shard_index, num_shards, **swarm_kwargs
        )
        slim_total = spec.num_nodes - core
        share = slim_total // num_shards + (
            1 if shard_index < slim_total % num_shards else 0
        )
        self._init_slim(spec, core, share, shard=shard_index)
