"""The live runtime's length-prefixed binary wire protocol.

Every message the simulated protocol vocabulary knows — buffer-map
exchanges, segment transfers, DHT routing/lookup traffic, membership
PING/PONG and the graceful-leave backup handover — has a binary frame:

``[u32 length][u8 kind][body]``

with the 4-byte big-endian ``length`` covering the kind byte and the body.
Peers exchange these frames over in-process loopback transports (see
:mod:`repro.runtime.swarm`); nothing in the codec assumes loopback, so the
same frames can later travel over real sockets.

Two sizes exist per message and must not be confused:

* the **physical frame size** (``len(encode(msg))``) — an implementation
  detail of this codec, used only to move bytes;
* the **accounted size** (:func:`ledger_entry`) — the paper's Section 5.4
  costs from :mod:`repro.net.message` (a buffer map costs ``B`` bits plus
  the 20-bit anchor, a DHT routing message 80 bits, a PING 80 bits, a data
  segment its payload bits), which is what the
  :class:`~repro.runtime.message.MessageLedger` records so the control- and
  pre-fetch-overhead metrics stay exactly as defined.

The fast path leans on that separation: :class:`FrameBatch` coalesces many
frames into one length-prefixed write without being charged itself, and
:class:`BufferMapDelta` ships a buffer map as changed-bit runs against the
sender's previous snapshot while the ledger still charges the full
``capacity + 20`` bits — physical bytes shrink, paper accounting does not
move.  Encoding packs each frame's length prefix, kind byte and fixed
header with one precompiled :class:`struct.Struct`; decoding operates on
``memoryview`` slices of the receive buffer so steady-state decode performs
no intermediate payload copies.

Segment payloads are synthetic (the reproduction never ships real media),
so a :class:`SegmentData` frame carries the declared payload size instead
of the payload bytes; the ledger charges the declared size.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import IntEnum
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.net.message import (
    PING_MESSAGE_BITS,
    ROUTING_MESSAGE_BITS,
    MessageKind,
)
from repro.streaming.buffermap import BufferMap, buffer_map_bits

#: Upper bound on one frame's payload (kind byte + body).  Generously above
#: the largest legal single message (a full 600-slot buffer map is ~90
#: bytes); a bigger length prefix means a corrupt or hostile stream.  Frame
#: batches are split by :func:`encode_batch` to stay under it.
MAX_FRAME_PAYLOAD = 1 << 16

#: Struct of the frame header: payload length (kind byte + body).
_LEN = struct.Struct(">I")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

_U32_MAX = 0xFFFF_FFFF
_U16_MAX = 0xFFFF


class WireError(ValueError):
    """Malformed frame: unknown kind, bad length, out-of-range field."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame does (wait for more bytes)."""


class WireKind(IntEnum):
    """On-the-wire message kinds (the u8 tag after the length prefix)."""

    BUFFER_MAP = 1
    SEGMENT_REQUEST = 2
    SEGMENT_DATA = 3
    DHT_LOOKUP = 4
    DHT_RESPONSE = 5
    PING = 6
    PONG = 7
    HANDOVER = 8
    SEGMENT_NACK = 9
    CREDIT = 10
    SHARD_HELLO = 11
    ROUTE = 12
    BATCH = 13
    MAP_DELTA = 14
    TELEMETRY = 15


# ===================================================================== messages
@dataclass(frozen=True)
class BufferMapMsg:
    """Periodic buffer-map gossip: window anchor + packed availability bits.

    ``newest_id`` piggybacks the sender's view of the stream's live edge, so
    knowledge of the newest generated segment diffuses with the gossip
    instead of needing a global oracle (``-1`` = no segment seen yet).

    ``seq`` numbers the sender's gossip snapshots so a later
    :class:`BufferMapDelta` can chain off this full map: a delta with
    ``seq = s`` applies to the snapshot advertised with ``seq = s - 1``.
    """

    sender: int
    newest_id: int
    head_id: int
    capacity: int
    bitmap: bytes
    seq: int = 0

    def buffer_map(self) -> BufferMap:
        """Decode the packed bits back into a :class:`BufferMap` snapshot."""
        return BufferMap.from_bytes(self.head_id, self.capacity, self.bitmap)

    @classmethod
    def from_buffer_map(
        cls, sender: int, newest_id: int, bm: BufferMap, seq: int = 0
    ) -> "BufferMapMsg":
        return cls(
            sender=sender,
            newest_id=newest_id,
            head_id=bm.head_id,
            capacity=bm.capacity,
            bitmap=bm.to_bytes(),
            seq=seq,
        )


@dataclass(frozen=True)
class BufferMapDelta:
    """Incremental buffer-map gossip: changed-bit runs against a base map.

    ``runs`` is an ascending, disjoint tuple of ``(offset, length)`` pairs —
    offsets are relative to ``head_id`` — whose bits *toggled* between the
    sender's previous snapshot (``seq - 1``) and this one (``seq``).  The
    receiver rebuilds the new map with :meth:`apply`; a receiver whose
    stored snapshot is not at ``seq - 1`` must discard the delta and ask
    for a full map (the runtime pings the sender, whose PING handler
    replies with its current full snapshot).

    Bits of the base map that scrolled out of the new ``[head_id,
    head_id + capacity)`` window are dropped implicitly on both sides —
    runs never reference them.
    """

    sender: int
    seq: int
    newest_id: int
    head_id: int
    capacity: int
    runs: Tuple[Tuple[int, int], ...]

    @classmethod
    def from_maps(
        cls,
        sender: int,
        seq: int,
        newest_id: int,
        new: BufferMap,
        base: BufferMap,
    ) -> "BufferMapDelta":
        """Delta carrying the toggles that turn ``base`` into ``new``."""
        head = new.head_id
        tail = head + new.capacity
        new_in = {s for s in new.present if head <= s < tail}
        base_in = {s for s in base.present if head <= s < tail}
        runs: List[Tuple[int, int]] = []
        run_start = run_end = -1
        for sid in sorted(new_in ^ base_in):
            offset = sid - head
            if offset == run_end:
                run_end += 1
            else:
                if run_start >= 0:
                    runs.append((run_start, run_end - run_start))
                run_start, run_end = offset, offset + 1
        if run_start >= 0:
            runs.append((run_start, run_end - run_start))
        return cls(
            sender=sender,
            seq=seq,
            newest_id=newest_id,
            head_id=head,
            capacity=new.capacity,
            runs=tuple(runs),
        )

    def apply(self, base: BufferMap) -> BufferMap:
        """Rebuild the sender's new map from the receiver's stored ``base``."""
        head = self.head_id
        tail = head + self.capacity
        present = {s for s in base.present if head <= s < tail}
        toggles: set = set()
        for offset, length in self.runs:
            first = head + offset
            toggles.update(range(first, first + length))
        present ^= toggles
        return BufferMap(
            head_id=head, capacity=self.capacity, present=frozenset(present)
        )


@dataclass(frozen=True)
class SegmentRequest:
    """Pull request for one segment (``prefetch`` = on-demand path).

    ``trace_id`` is the observability plane's sampled journey id
    (:mod:`repro.obs`): when non-zero it rides the frame as an 8-byte
    tail behind flag bit 1 and is echoed by the supplier's
    :class:`SegmentData`/:class:`SegmentNack` reply.  A zero trace id
    encodes byte-identically to a pre-obs frame, and the tail is
    physical-only — :func:`ledger_entry` never charges it.
    """

    sender: int
    segment_id: int
    prefetch: bool = False
    trace_id: int = 0


@dataclass(frozen=True)
class SegmentData:
    """One delivered segment; the payload is represented by its size."""

    sender: int
    segment_id: int
    size_bits: int
    prefetch: bool = False
    trace_id: int = 0


@dataclass(frozen=True)
class SegmentNack:
    """Refusal of a :class:`SegmentRequest` (uplink saturated or no data).

    Lets the requester retry with a fallback supplier inside the same
    period — the wire analogue of the simulator's within-round rerouting
    when the chosen uplink's per-period budget is spent.
    """

    sender: int
    segment_id: int
    prefetch: bool = False
    trace_id: int = 0


@dataclass(frozen=True)
class DhtLookup:
    """A DHT routing message walking greedily towards ``target_key``.

    ``path`` accumulates the nodes visited so far (the origin first), which
    both terminates routing loops and feeds the overhearing-based peer-table
    maintenance at every hop.
    """

    origin: int
    target_key: int
    segment_id: int
    path: Tuple[int, ...]


@dataclass(frozen=True)
class DhtResponse:
    """The terminal node's reply, sent directly back to the lookup origin."""

    responder: int
    origin: int
    target_key: int
    segment_id: int
    has_data: bool
    rate: float
    path: Tuple[int, ...]


@dataclass(frozen=True)
class Ping:
    """Membership probe (join-time neighbour contact)."""

    sender: int
    nonce: int = 0


@dataclass(frozen=True)
class Pong:
    """Reply to a :class:`Ping` (echoes the nonce)."""

    sender: int
    nonce: int = 0


@dataclass(frozen=True)
class Handover:
    """Graceful-leave handover of a VoD backup store to the successor."""

    sender: int
    segment_bits: int
    segment_ids: Tuple[int, ...]


@dataclass(frozen=True)
class CreditGrant:
    """Flow-control credit return: the receiver has consumed ``credits``
    data frames from this link, the sender may put that many more in
    flight (see :mod:`repro.runtime.transport`).

    Rides the control lane so a saturated data path can never starve the
    very frames that would un-saturate it.
    """

    sender: int
    credits: int


@dataclass(frozen=True)
class ShardHello:
    """Shard-to-shard handshake, the first frame on a cluster TCP stream.

    Identifies the dialing (and, in the reply, the accepting) shard and
    carries enough shared-construction facts — shard count, ring size and
    the coordinator's per-run ``token`` — for the acceptor to reject a
    stream from a different run or a differently built cluster before any
    peer traffic flows (see :mod:`repro.runtime.cluster`).
    """

    shard_index: int
    num_shards: int
    token: int
    ring_size: int


@dataclass(frozen=True)
class RoutedFrame:
    """One peer-to-peer frame in transit between shards.

    ``payload`` is the complete encoded inner frame (length prefix
    included), opaque to the carrying link: the receiving shard drops it
    straight into the destination peer's inbox, so a peer never knows
    whether its partner's frame crossed a socket or stayed in-process.
    ``data`` tags the inbox lane exactly like the loopback transport's
    ``data`` flag (segment data vs control priority).

    On the wire, ``src`` is elided whenever the inner frame's first body
    field already spells it (every peer frame leads with its sender id
    except forwarded DHT hops) — the codec detects the match at encode
    time, sets a flag bit and re-reads the id from the payload on decode,
    saving four bytes on the vast majority of routed traffic.
    """

    src: int
    dst: int
    payload: bytes
    data: bool = False


@dataclass(frozen=True)
class FrameBatch:
    """Several complete frames coalesced into one physical frame.

    ``frames`` holds fully encoded frames (length prefix included); on the
    wire each entry is re-framed with a two-byte length, so a batch of *n*
    frames costs ``7 + sum(len(frame) - 2)`` bytes — cheaper than the loose
    frames from the second entry on.  Batches must not nest (encode and
    decode both reject an inner ``BATCH`` kind), and the envelope itself is
    never ledger-charged: inner frames were charged at their origin,
    exactly like :class:`RoutedFrame` payloads.
    """

    frames: Tuple[bytes, ...]


@dataclass(frozen=True)
class TelemetryFrame:
    """One shard's live-telemetry push (observability plane, uncharged).

    ``payload`` is an opaque UTF-8 JSON body — incremental metric
    counters, gauge levels, per-period continuity and flight-recorder
    deltas (see ``docs/observability.md`` → *Live telemetry & SLOs*).
    The codec does not interpret it: the schema belongs to the obs
    plane and may grow without a wire change.  Telemetry frames ride
    the cluster control seam from each :class:`ShardWorker` to the
    coordinator's :class:`~repro.obs.health.HealthEngine`; like every
    observability byte they are physical-only and never touch the
    paper-facing ledger (:func:`ledger_entry` returns ``None``).
    """

    shard: int
    period: int
    payload: bytes

    def body(self) -> dict:
        """Decode the JSON payload (the telemetry frame body dict)."""
        return json.loads(self.payload.decode("utf-8"))

    @classmethod
    def from_body(cls, shard: int, period: int, body: dict) -> "TelemetryFrame":
        return cls(
            shard=shard,
            period=period,
            payload=json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8"),
        )


WireMessage = Union[
    BufferMapMsg,
    BufferMapDelta,
    SegmentRequest,
    SegmentData,
    SegmentNack,
    DhtLookup,
    DhtResponse,
    Ping,
    Pong,
    Handover,
    CreditGrant,
    ShardHello,
    RoutedFrame,
    FrameBatch,
    TelemetryFrame,
]


# ====================================================================== encoding
#
# One precompiled Struct per kind packs the length prefix, kind byte and
# fixed header in a single call; out-of-range fields surface as
# ``struct.error`` and are re-raised as :class:`WireError`.  Variable tails
# (bitmaps, paths, batch entries) are appended with cached per-count
# Structs (:func:`_ids_struct` / :func:`_u16s_struct`).

_BM_FRAME = struct.Struct(">IBIiIHI")  # len, kind, sender, newest, head, cap, seq
_BM_BODY = struct.Struct(">IiIHI")
_MD_FRAME = struct.Struct(">IBIIiIHH")  # len, kind, sender, seq, newest, head, cap, n
_MD_BODY = struct.Struct(">IIiIHH")
_REQ_FRAME = struct.Struct(">IBIIB")  # len, kind, sender, segment, flags
_REQ_BODY = struct.Struct(">IIB")
_DATA_FRAME = struct.Struct(">IBIIIB")
_DATA_BODY = struct.Struct(">IIIB")
#: Optional 8-byte trace-id tail on segment request/data/nack frames
#: (flag bit 1).  Physical-only: absent when the trace id is zero, never
#: ledger-charged (:mod:`repro.obs` segment-journey tracing).
_TRACE_TAIL = struct.Struct(">Q")
_TRACED_FLAG = 0x2
_LOOKUP_FRAME = struct.Struct(">IBIIIH")
_LOOKUP_BODY = struct.Struct(">IIIH")
_RESP_FRAME = struct.Struct(">IBIIIIBfH")
_RESP_BODY = struct.Struct(">IIIIBfH")
_PINGPONG_FRAME = struct.Struct(">IBII")
_PINGPONG_BODY = struct.Struct(">II")
_HANDOVER_FRAME = struct.Struct(">IBIIH")
_HANDOVER_BODY = struct.Struct(">IIH")
_CREDIT_FRAME = struct.Struct(">IBIH")
_CREDIT_BODY = struct.Struct(">IH")
_HELLO_FRAME = struct.Struct(">IBHHII")
_HELLO_BODY = struct.Struct(">HHII")
_ROUTE_FRAME = struct.Struct(">IBBII")  # len, kind, flags, src, dst
_ROUTE_E_FRAME = struct.Struct(">IBBI")  # len, kind, flags, dst (src in payload)
_ROUTE_IDS = struct.Struct(">II")
_BATCH_FRAME = struct.Struct(">IBH")  # len, kind, count
_TELEM_FRAME = struct.Struct(">IBHI")  # len, kind, shard, period
_TELEM_BODY = struct.Struct(">HI")

#: RoutedFrame flag bits.
_RF_DATA = 0x01
_RF_SRC_ELIDED = 0x02


@lru_cache(maxsize=512)
def _ids_struct(count: int) -> struct.Struct:
    """Cached ``>{count}I`` Struct (paths, handover id lists)."""
    return struct.Struct(f">{count}I")


@lru_cache(maxsize=512)
def _u16s_struct(count: int) -> struct.Struct:
    """Cached ``>{count}H`` Struct (delta run pairs)."""
    return struct.Struct(f">{count}H")


def _check_runs(runs: Tuple[Tuple[int, int], ...], capacity: int) -> None:
    """Runs must be ascending, disjoint, non-empty and inside the window."""
    prev_end = 0
    for start, length in runs:
        if length < 1:
            raise WireError("delta run length must be >= 1")
        if start < prev_end:
            raise WireError("delta runs must be ascending and disjoint")
        prev_end = start + length
    if prev_end > capacity:
        raise WireError(
            f"delta run ends at offset {prev_end}, past capacity {capacity}"
        )


def _enc_buffer_map(msg: BufferMapMsg) -> bytes:
    if not (-1 <= msg.newest_id <= 0x7FFF_FFFF):
        raise WireError(f"newest_id out of range: {msg.newest_id}")
    if msg.capacity < 1:
        raise WireError("capacity must be >= 1")
    nbytes = (msg.capacity + 7) // 8
    if len(msg.bitmap) != nbytes:
        raise WireError(
            f"bitmap of capacity {msg.capacity} needs {nbytes} bytes, "
            f"got {len(msg.bitmap)}"
        )
    try:
        head = _BM_FRAME.pack(
            1 + _BM_BODY.size + nbytes,
            WireKind.BUFFER_MAP,
            msg.sender,
            msg.newest_id,
            msg.head_id,
            msg.capacity,
            msg.seq,
        )
    except struct.error as exc:
        raise WireError(f"buffer-map field out of range: {exc}") from exc
    return head + msg.bitmap


def _enc_map_delta(msg: BufferMapDelta) -> bytes:
    if not (-1 <= msg.newest_id <= 0x7FFF_FFFF):
        raise WireError(f"newest_id out of range: {msg.newest_id}")
    if msg.capacity < 1:
        raise WireError("capacity must be >= 1")
    _check_runs(msg.runs, msg.capacity)
    flat: List[int] = []
    for start, length in msg.runs:
        flat.append(start)
        flat.append(length)
    try:
        head = _MD_FRAME.pack(
            1 + _MD_BODY.size + 4 * len(msg.runs),
            WireKind.MAP_DELTA,
            msg.sender,
            msg.seq,
            msg.newest_id,
            msg.head_id,
            msg.capacity,
            len(msg.runs),
        )
        return head + _u16s_struct(len(flat)).pack(*flat)
    except struct.error as exc:
        raise WireError(f"map-delta field out of range: {exc}") from exc


def _enc_request(msg: SegmentRequest) -> bytes:
    try:
        if not msg.trace_id:
            return _REQ_FRAME.pack(
                1 + _REQ_BODY.size,
                WireKind.SEGMENT_REQUEST,
                msg.sender,
                msg.segment_id,
                1 if msg.prefetch else 0,
            )
        head = _REQ_FRAME.pack(
            1 + _REQ_BODY.size + _TRACE_TAIL.size,
            WireKind.SEGMENT_REQUEST,
            msg.sender,
            msg.segment_id,
            (1 if msg.prefetch else 0) | _TRACED_FLAG,
        )
        return head + _TRACE_TAIL.pack(msg.trace_id)
    except struct.error as exc:
        raise WireError(f"segment-request field out of range: {exc}") from exc


def _enc_nack(msg: SegmentNack) -> bytes:
    try:
        if not msg.trace_id:
            return _REQ_FRAME.pack(
                1 + _REQ_BODY.size,
                WireKind.SEGMENT_NACK,
                msg.sender,
                msg.segment_id,
                1 if msg.prefetch else 0,
            )
        head = _REQ_FRAME.pack(
            1 + _REQ_BODY.size + _TRACE_TAIL.size,
            WireKind.SEGMENT_NACK,
            msg.sender,
            msg.segment_id,
            (1 if msg.prefetch else 0) | _TRACED_FLAG,
        )
        return head + _TRACE_TAIL.pack(msg.trace_id)
    except struct.error as exc:
        raise WireError(f"segment-nack field out of range: {exc}") from exc


def _enc_data(msg: SegmentData) -> bytes:
    try:
        if not msg.trace_id:
            return _DATA_FRAME.pack(
                1 + _DATA_BODY.size,
                WireKind.SEGMENT_DATA,
                msg.sender,
                msg.segment_id,
                msg.size_bits,
                1 if msg.prefetch else 0,
            )
        head = _DATA_FRAME.pack(
            1 + _DATA_BODY.size + _TRACE_TAIL.size,
            WireKind.SEGMENT_DATA,
            msg.sender,
            msg.segment_id,
            msg.size_bits,
            (1 if msg.prefetch else 0) | _TRACED_FLAG,
        )
        return head + _TRACE_TAIL.pack(msg.trace_id)
    except struct.error as exc:
        raise WireError(f"segment-data field out of range: {exc}") from exc


def _enc_lookup(msg: DhtLookup) -> bytes:
    count = len(msg.path)
    try:
        head = _LOOKUP_FRAME.pack(
            1 + _LOOKUP_BODY.size + 4 * count,
            WireKind.DHT_LOOKUP,
            msg.origin,
            msg.target_key,
            msg.segment_id,
            count,
        )
        return head + _ids_struct(count).pack(*msg.path)
    except struct.error as exc:
        raise WireError(f"dht-lookup field out of range: {exc}") from exc


def _enc_response(msg: DhtResponse) -> bytes:
    count = len(msg.path)
    try:
        head = _RESP_FRAME.pack(
            1 + _RESP_BODY.size + 4 * count,
            WireKind.DHT_RESPONSE,
            msg.responder,
            msg.origin,
            msg.target_key,
            msg.segment_id,
            1 if msg.has_data else 0,
            float(msg.rate),
            count,
        )
        return head + _ids_struct(count).pack(*msg.path)
    except struct.error as exc:
        raise WireError(f"dht-response field out of range: {exc}") from exc


def _enc_ping(msg: Ping) -> bytes:
    try:
        return _PINGPONG_FRAME.pack(
            1 + _PINGPONG_BODY.size, WireKind.PING, msg.sender, msg.nonce
        )
    except struct.error as exc:
        raise WireError(f"ping field out of range: {exc}") from exc


def _enc_pong(msg: Pong) -> bytes:
    try:
        return _PINGPONG_FRAME.pack(
            1 + _PINGPONG_BODY.size, WireKind.PONG, msg.sender, msg.nonce
        )
    except struct.error as exc:
        raise WireError(f"pong field out of range: {exc}") from exc


def _enc_handover(msg: Handover) -> bytes:
    count = len(msg.segment_ids)
    try:
        head = _HANDOVER_FRAME.pack(
            1 + _HANDOVER_BODY.size + 4 * count,
            WireKind.HANDOVER,
            msg.sender,
            msg.segment_bits,
            count,
        )
        return head + _ids_struct(count).pack(*msg.segment_ids)
    except struct.error as exc:
        raise WireError(f"handover field out of range: {exc}") from exc


def _enc_credit(msg: CreditGrant) -> bytes:
    if msg.credits < 1:
        raise WireError(f"credit grant must carry >= 1 credit, got {msg.credits}")
    try:
        return _CREDIT_FRAME.pack(
            1 + _CREDIT_BODY.size, WireKind.CREDIT, msg.sender, msg.credits
        )
    except struct.error as exc:
        raise WireError(f"credit-grant field out of range: {exc}") from exc


def _enc_hello(msg: ShardHello) -> bytes:
    if msg.num_shards < 1:
        raise WireError(f"num_shards must be >= 1, got {msg.num_shards}")
    try:
        return _HELLO_FRAME.pack(
            1 + _HELLO_BODY.size,
            WireKind.SHARD_HELLO,
            msg.shard_index,
            msg.num_shards,
            msg.token,
            msg.ring_size,
        )
    except struct.error as exc:
        raise WireError(f"shard-hello field out of range: {exc}") from exc


def _enc_route(msg: RoutedFrame) -> bytes:
    payload = msg.payload
    flags = _RF_DATA if msg.data else 0
    try:
        if len(payload) >= 9 and payload[5:9] == _U32.pack(msg.src):
            head = _ROUTE_E_FRAME.pack(
                6 + len(payload), WireKind.ROUTE, flags | _RF_SRC_ELIDED, msg.dst
            )
        else:
            head = _ROUTE_FRAME.pack(
                10 + len(payload), WireKind.ROUTE, flags, msg.src, msg.dst
            )
    except struct.error as exc:
        raise WireError(f"routed-frame field out of range: {exc}") from exc
    return head + payload


def _enc_batch(msg: FrameBatch) -> bytes:
    frames = msg.frames
    if not frames:
        raise WireError("a frame batch must hold at least one frame")
    length = 3  # kind byte counted by the prefix + u16 count
    parts: List[Union[bytes, memoryview]] = []
    for frame in frames:
        payload_len = len(frame) - _LEN.size
        if payload_len < 1:
            raise WireError("batch entry is not a complete frame")
        if _LEN.unpack_from(frame, 0)[0] != payload_len:
            raise WireError("batch entry length prefix mismatch")
        if frame[4] == WireKind.BATCH:
            raise WireError("frame batches must not nest")
        if payload_len > _U16_MAX:
            raise WireError(f"batch entry too large: {payload_len}")
        parts.append(_U16.pack(payload_len))
        parts.append(memoryview(frame)[4:])
        length += 2 + payload_len
    try:
        head = _BATCH_FRAME.pack(length, WireKind.BATCH, len(frames))
    except struct.error as exc:
        raise WireError(f"too many frames in one batch: {len(frames)}") from exc
    return head + b"".join(parts)


def _enc_telemetry(msg: TelemetryFrame) -> bytes:
    try:
        head = _TELEM_FRAME.pack(
            1 + _TELEM_BODY.size + len(msg.payload),
            WireKind.TELEMETRY,
            msg.shard,
            msg.period,
        )
    except struct.error as exc:
        raise WireError(f"telemetry field out of range: {exc}") from exc
    return head + msg.payload


_ENCODERS: Dict[type, Callable[..., bytes]] = {
    BufferMapMsg: _enc_buffer_map,
    BufferMapDelta: _enc_map_delta,
    SegmentRequest: _enc_request,
    SegmentNack: _enc_nack,
    SegmentData: _enc_data,
    DhtLookup: _enc_lookup,
    DhtResponse: _enc_response,
    Ping: _enc_ping,
    Pong: _enc_pong,
    Handover: _enc_handover,
    CreditGrant: _enc_credit,
    ShardHello: _enc_hello,
    RoutedFrame: _enc_route,
    FrameBatch: _enc_batch,
    TelemetryFrame: _enc_telemetry,
}


def encode(msg: WireMessage) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    encoder = _ENCODERS.get(type(msg))
    if encoder is None:
        raise WireError(f"cannot encode {type(msg).__name__}")
    frame = encoder(msg)
    if len(frame) - _LEN.size > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload too large: {len(frame) - _LEN.size}")
    return frame


def encode_batch(
    frames: Sequence[bytes], limit: int = MAX_FRAME_PAYLOAD
) -> List[bytes]:
    """Coalesce already-encoded frames into as few physical frames as
    possible.

    Runs of batchable frames become :class:`FrameBatch` envelopes (split
    so no envelope's payload exceeds ``limit``, default
    :data:`MAX_FRAME_PAYLOAD` — a carrier wrapping the result in a
    further envelope passes a smaller limit to reserve headroom); a lone
    frame, an oversized frame or one that is itself a batch passes
    through untouched.  Frame order is preserved.
    """
    if len(frames) <= 1:
        return list(frames)
    out: List[bytes] = []
    group: List[bytes] = []
    group_len = 3

    def _flush() -> None:
        nonlocal group, group_len
        if len(group) == 1:
            out.append(group[0])
        elif group:
            out.append(encode(FrameBatch(frames=tuple(group))))
        group = []
        group_len = 3

    for frame in frames:
        payload_len = len(frame) - _LEN.size
        if payload_len > _U16_MAX or (len(frame) > 4 and frame[4] == WireKind.BATCH):
            _flush()
            out.append(frame)
            continue
        if group_len + 2 + payload_len > limit:
            _flush()
        group.append(frame)
        group_len += 2 + payload_len
    _flush()
    return out


def frame_count(frame: Union[bytes, bytearray, memoryview]) -> int:
    """Logical frames carried by one physical frame (batch count, else 1)."""
    if len(frame) >= 7 and frame[4] == WireKind.BATCH:
        return _U16.unpack_from(frame, 5)[0]
    return 1


# ====================================================================== decoding
def _dec_buffer_map(view: memoryview, start: int, end: int) -> BufferMapMsg:
    if end - start < _BM_BODY.size:
        raise WireError("buffer-map body too short")
    sender, newest, head, capacity, seq = _BM_BODY.unpack_from(view, start)
    if capacity < 1:
        raise WireError("capacity must be >= 1")
    nbytes = (capacity + 7) // 8
    if end - start - _BM_BODY.size != nbytes:
        raise WireError(
            f"bitmap of capacity {capacity} needs {nbytes} bytes, "
            f"got {end - start - _BM_BODY.size}"
        )
    return BufferMapMsg(
        sender=sender,
        newest_id=newest,
        head_id=head,
        capacity=capacity,
        bitmap=bytes(view[start + _BM_BODY.size : end]),
        seq=seq,
    )


def _dec_map_delta(view: memoryview, start: int, end: int) -> BufferMapDelta:
    if end - start < _MD_BODY.size:
        raise WireError("map-delta body too short")
    sender, seq, newest, head, capacity, count = _MD_BODY.unpack_from(view, start)
    if capacity < 1:
        raise WireError("capacity must be >= 1")
    if end - start - _MD_BODY.size != 4 * count:
        raise WireError(
            f"map-delta with {count} runs needs {4 * count} run bytes, "
            f"got {end - start - _MD_BODY.size}"
        )
    flat = _u16s_struct(2 * count).unpack_from(view, start + _MD_BODY.size)
    runs = tuple(zip(flat[::2], flat[1::2]))
    _check_runs(runs, capacity)
    return BufferMapDelta(
        sender=sender,
        seq=seq,
        newest_id=newest,
        head_id=head,
        capacity=capacity,
        runs=runs,
    )


def _trace_tail(
    view: memoryview, start: int, end: int, body_size: int, flags: int, what: str
) -> int:
    """Validate the body length against flag bit 1, return the trace id."""
    if not flags & _TRACED_FLAG:
        if end - start != body_size:
            raise WireError(f"{what} body size mismatch")
        return 0
    if end - start != body_size + _TRACE_TAIL.size:
        raise WireError(f"{what} body size mismatch")
    return _TRACE_TAIL.unpack_from(view, start + body_size)[0]


def _dec_request(view: memoryview, start: int, end: int) -> SegmentRequest:
    if end - start < _REQ_BODY.size:
        raise WireError("segment-request body size mismatch")
    sender, segment_id, flags = _REQ_BODY.unpack_from(view, start)
    trace_id = _trace_tail(view, start, end, _REQ_BODY.size, flags, "segment-request")
    return SegmentRequest(
        sender=sender, segment_id=segment_id, prefetch=bool(flags & 1), trace_id=trace_id
    )


def _dec_nack(view: memoryview, start: int, end: int) -> SegmentNack:
    if end - start < _REQ_BODY.size:
        raise WireError("segment-nack body size mismatch")
    sender, segment_id, flags = _REQ_BODY.unpack_from(view, start)
    trace_id = _trace_tail(view, start, end, _REQ_BODY.size, flags, "segment-nack")
    return SegmentNack(
        sender=sender, segment_id=segment_id, prefetch=bool(flags & 1), trace_id=trace_id
    )


def _dec_data(view: memoryview, start: int, end: int) -> SegmentData:
    if end - start < _DATA_BODY.size:
        raise WireError("segment-data body size mismatch")
    sender, segment_id, size_bits, flags = _DATA_BODY.unpack_from(view, start)
    trace_id = _trace_tail(view, start, end, _DATA_BODY.size, flags, "segment-data")
    return SegmentData(
        sender=sender,
        segment_id=segment_id,
        size_bits=size_bits,
        prefetch=bool(flags & 1),
        trace_id=trace_id,
    )


def _dec_ids(
    view: memoryview, offset: int, end: int, count: int, what: str
) -> Tuple[int, ...]:
    if end - offset != 4 * count:
        raise WireError(
            f"{what}: expected {4 * count} bytes of ids, got {end - offset}"
        )
    return _ids_struct(count).unpack_from(view, offset)


def _dec_lookup(view: memoryview, start: int, end: int) -> DhtLookup:
    if end - start < _LOOKUP_BODY.size:
        raise WireError("dht-lookup body too short")
    origin, key, segment_id, count = _LOOKUP_BODY.unpack_from(view, start)
    path = _dec_ids(view, start + _LOOKUP_BODY.size, end, count, "dht-lookup path")
    return DhtLookup(origin=origin, target_key=key, segment_id=segment_id, path=path)


def _dec_response(view: memoryview, start: int, end: int) -> DhtResponse:
    if end - start < _RESP_BODY.size:
        raise WireError("dht-response body too short")
    responder, origin, key, segment_id, flags, rate, count = _RESP_BODY.unpack_from(
        view, start
    )
    path = _dec_ids(view, start + _RESP_BODY.size, end, count, "dht-response path")
    return DhtResponse(
        responder=responder,
        origin=origin,
        target_key=key,
        segment_id=segment_id,
        has_data=bool(flags & 1),
        rate=rate,
        path=path,
    )


def _dec_ping(view: memoryview, start: int, end: int) -> Ping:
    if end - start != _PINGPONG_BODY.size:
        raise WireError("ping/pong body size mismatch")
    sender, nonce = _PINGPONG_BODY.unpack_from(view, start)
    return Ping(sender=sender, nonce=nonce)


def _dec_pong(view: memoryview, start: int, end: int) -> Pong:
    if end - start != _PINGPONG_BODY.size:
        raise WireError("ping/pong body size mismatch")
    sender, nonce = _PINGPONG_BODY.unpack_from(view, start)
    return Pong(sender=sender, nonce=nonce)


def _dec_handover(view: memoryview, start: int, end: int) -> Handover:
    if end - start < _HANDOVER_BODY.size:
        raise WireError("handover body too short")
    sender, segment_bits, count = _HANDOVER_BODY.unpack_from(view, start)
    ids = _dec_ids(view, start + _HANDOVER_BODY.size, end, count, "handover ids")
    return Handover(sender=sender, segment_bits=segment_bits, segment_ids=ids)


def _dec_credit(view: memoryview, start: int, end: int) -> CreditGrant:
    if end - start != _CREDIT_BODY.size:
        raise WireError("credit-grant body size mismatch")
    sender, credits = _CREDIT_BODY.unpack_from(view, start)
    if credits < 1:
        raise WireError("credit grant must carry >= 1 credit")
    return CreditGrant(sender=sender, credits=credits)


def _dec_hello(view: memoryview, start: int, end: int) -> ShardHello:
    if end - start != _HELLO_BODY.size:
        raise WireError("shard-hello body size mismatch")
    shard_index, num_shards, token, ring_size = _HELLO_BODY.unpack_from(view, start)
    if num_shards < 1:
        raise WireError("num_shards must be >= 1")
    return ShardHello(
        shard_index=shard_index,
        num_shards=num_shards,
        token=token,
        ring_size=ring_size,
    )


def _dec_route(view: memoryview, start: int, end: int) -> RoutedFrame:
    if end - start < 5:
        raise WireError("routed-frame body too short")
    flags = view[start]
    if flags & _RF_SRC_ELIDED:
        (dst,) = _U32.unpack_from(view, start + 1)
        payload_start = start + 5
        if end - payload_start < 9:
            raise WireError("src-elided routed frame needs >= 9 payload bytes")
        (src,) = _U32.unpack_from(view, payload_start + 5)
    else:
        if end - start < 9:
            raise WireError("routed-frame body too short")
        src, dst = _ROUTE_IDS.unpack_from(view, start + 1)
        payload_start = start + 9
    return RoutedFrame(
        src=src,
        dst=dst,
        payload=bytes(view[payload_start:end]),
        data=bool(flags & _RF_DATA),
    )


def _dec_batch(view: memoryview, start: int, end: int) -> FrameBatch:
    if end - start < 2:
        raise WireError("frame-batch body too short")
    (count,) = _U16.unpack_from(view, start)
    if count < 1:
        raise WireError("a frame batch must hold at least one frame")
    pos = start + 2
    frames: List[bytes] = []
    pack_len = _LEN.pack
    for _ in range(count):
        if end - pos < 2:
            raise WireError("frame-batch entry header truncated")
        (entry_len,) = _U16.unpack_from(view, pos)
        pos += 2
        if entry_len < 1:
            raise WireError("frame-batch entry must hold a kind byte")
        if end - pos < entry_len:
            raise WireError("frame-batch entry truncated")
        if view[pos] == WireKind.BATCH:
            raise WireError("frame batches must not nest")
        frames.append(pack_len(entry_len) + bytes(view[pos : pos + entry_len]))
        pos += entry_len
    if pos != end:
        raise WireError("frame batch has trailing bytes")
    return FrameBatch(frames=tuple(frames))


def _dec_telemetry(view: memoryview, start: int, end: int) -> TelemetryFrame:
    if end - start < _TELEM_BODY.size:
        raise WireError("telemetry body too short")
    shard, period = _TELEM_BODY.unpack_from(view, start)
    return TelemetryFrame(
        shard=shard,
        period=period,
        payload=bytes(view[start + _TELEM_BODY.size : end]),
    )


_DECODERS: Dict[int, Callable[[memoryview, int, int], WireMessage]] = {
    WireKind.BUFFER_MAP: _dec_buffer_map,
    WireKind.SEGMENT_REQUEST: _dec_request,
    WireKind.SEGMENT_DATA: _dec_data,
    WireKind.DHT_LOOKUP: _dec_lookup,
    WireKind.DHT_RESPONSE: _dec_response,
    WireKind.PING: _dec_ping,
    WireKind.PONG: _dec_pong,
    WireKind.HANDOVER: _dec_handover,
    WireKind.SEGMENT_NACK: _dec_nack,
    WireKind.CREDIT: _dec_credit,
    WireKind.SHARD_HELLO: _dec_hello,
    WireKind.ROUTE: _dec_route,
    WireKind.BATCH: _dec_batch,
    WireKind.MAP_DELTA: _dec_map_delta,
    WireKind.TELEMETRY: _dec_telemetry,
}
_DECODERS = {int(kind): fn for kind, fn in _DECODERS.items()}


def decode(
    buffer: Union[bytes, bytearray, memoryview], offset: int = 0
) -> Tuple[WireMessage, int]:
    """Decode one frame starting at ``offset``.

    Returns ``(message, next_offset)``.  Operates on a ``memoryview`` of
    ``buffer``: fixed fields are unpacked in place and only final field
    values (a bitmap, a routed payload) are materialised as ``bytes``.

    Raises:
        TruncatedFrameError: the buffer ends mid-frame (feed more bytes).
        WireError: the frame is malformed (unknown kind, bad sizes).
    """
    view = buffer if type(buffer) is memoryview else memoryview(buffer)
    total = len(view)
    if total - offset < _LEN.size:
        raise TruncatedFrameError("incomplete length prefix")
    (length,) = _LEN.unpack_from(view, offset)
    if length < 1:
        raise WireError("frame payload must hold at least the kind byte")
    if length > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload too large: {length}")
    start = offset + _LEN.size
    if total - start < length:
        raise TruncatedFrameError(
            f"frame needs {length} payload bytes, have {total - start}"
        )
    decoder = _DECODERS.get(view[start])
    if decoder is None:
        raise WireError(f"unknown wire kind {view[start]}")
    return decoder(view, start + 1, start + length), start + length


def _decode_body(kind: WireKind, body: bytes) -> WireMessage:
    """Decode a bare body for a known ``kind`` (test/back-compat shim)."""
    decoder = _DECODERS.get(int(kind))
    if decoder is None:
        raise WireError(f"unhandled wire kind {kind!r}")
    view = memoryview(body)
    return decoder(view, 0, len(view))


class FrameDecoder:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed arbitrary chunks (frames may arrive split or coalesced, exactly as
    on a TCP stream); complete messages come back in order, partial bytes
    are buffered until the rest arrives.  A malformed frame raises
    :class:`WireError` and poisons the stream (a real transport would close
    the connection).

    Consumed bytes are tracked as an *offset* into the receive buffer and
    the buffer is compacted only when the dead prefix passes
    ``_COMPACT_AT`` (or everything was consumed) — feeding a fragmented
    stream is linear, not quadratic in the number of chunks.
    """

    #: Dead-prefix size that triggers compaction of the receive buffer.
    _COMPACT_AT = 1 << 16

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer) - self._offset

    def feed(self, chunk: bytes) -> List[WireMessage]:
        """Absorb ``chunk`` and return every now-complete message."""
        buffer = self._buffer
        buffer += chunk
        offset = self._offset
        available = len(buffer)
        messages: List[WireMessage] = []
        # Peek the length prefix so the common "buffer drained" exit is a
        # cheap comparison rather than a raised TruncatedFrameError.
        while available - offset >= _LEN.size:
            (length,) = _LEN.unpack_from(buffer, offset)
            if length <= MAX_FRAME_PAYLOAD and available - offset - _LEN.size < length:
                break
            msg, offset = decode(buffer, offset)
            messages.append(msg)
        if offset == available:
            del buffer[:]
            offset = 0
        elif offset >= self._COMPACT_AT:
            del buffer[:offset]
            offset = 0
        self._offset = offset
        return messages


# ================================================================== accounting
def ledger_entry(msg: WireMessage) -> Optional[Tuple[MessageKind, float]]:
    """The ``(kind, bits)`` a :class:`MessageLedger` must record for ``msg``.

    Sizes reconcile against :mod:`repro.net.message` / Section 5.4 of the
    paper — NOT against the physical frame length:

    * buffer map — ``capacity + 20`` anchor bits (:func:`buffer_map_bits`),
      **whether shipped full or as a delta**: the paper's accounting knows
      one buffer-map exchange cost, so a :class:`BufferMapDelta` charges
      exactly what the full map it replaces would have (the physical
      savings surface in the transport's ``bytes_on_wire`` counters, not in
      the overhead metrics);
    * data segment — the declared payload size (``segment_bits``), under
      ``DATA_PREFETCH`` or ``DATA_SCHEDULED`` per the delivery path;
    * DHT lookup hop / response — ``ROUTING_MESSAGE_BITS`` (80) each;
    * PING / PONG / handover notice — ``PING_MESSAGE_BITS`` (80) each,
      under ``MEMBERSHIP``.

    Returns ``None`` for messages the paper's overhead metrics do not
    count (pull requests and transport-level credit grants are treated as
    free control signalling — the simulator has no analogue of either and
    the paper's Section 5.4 accounting does not define them).  Cluster
    transport frames (shard handshakes and routed-frame envelopes) are
    likewise uncharged, and so is a :class:`FrameBatch` envelope: the
    *inner* frames were each charged once, at their originating peer,
    exactly as on the loopback transport.  An 8-byte observability trace
    tail (:mod:`repro.obs`) on a segment frame is physical-only too: a
    traced :class:`SegmentData` still charges its declared ``size_bits``,
    and a :class:`TelemetryFrame` — pure observability, no protocol
    effect — is never charged at all.
    """
    if isinstance(msg, BufferMapMsg):
        return (MessageKind.BUFFER_MAP, float(buffer_map_bits(msg.capacity)))
    if isinstance(msg, BufferMapDelta):
        return (MessageKind.BUFFER_MAP, float(buffer_map_bits(msg.capacity)))
    if isinstance(msg, SegmentData):
        kind = MessageKind.DATA_PREFETCH if msg.prefetch else MessageKind.DATA_SCHEDULED
        return (kind, float(msg.size_bits))
    if isinstance(msg, (DhtLookup, DhtResponse)):
        return (MessageKind.DHT_ROUTING, float(ROUTING_MESSAGE_BITS))
    if isinstance(msg, (Ping, Pong, Handover)):
        return (MessageKind.MEMBERSHIP, float(PING_MESSAGE_BITS))
    if isinstance(
        msg,
        (
            SegmentRequest,
            SegmentNack,
            CreditGrant,
            ShardHello,
            RoutedFrame,
            FrameBatch,
            TelemetryFrame,
        ),
    ):
        return None
    raise WireError(f"no ledger rule for {type(msg).__name__}")
