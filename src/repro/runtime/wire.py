"""The live runtime's length-prefixed binary wire protocol.

Every message the simulated protocol vocabulary knows — buffer-map
exchanges, segment transfers, DHT routing/lookup traffic, membership
PING/PONG and the graceful-leave backup handover — has a binary frame:

``[u32 length][u8 kind][body]``

with the 4-byte big-endian ``length`` covering the kind byte and the body.
Peers exchange these frames over in-process loopback transports (see
:mod:`repro.runtime.swarm`); nothing in the codec assumes loopback, so the
same frames can later travel over real sockets.

Two sizes exist per message and must not be confused:

* the **physical frame size** (``len(encode(msg))``) — an implementation
  detail of this codec, used only to move bytes;
* the **accounted size** (:func:`ledger_entry`) — the paper's Section 5.4
  costs from :mod:`repro.net.message` (a buffer map costs ``B`` bits plus
  the 20-bit anchor, a DHT routing message 80 bits, a PING 80 bits, a data
  segment its payload bits), which is what the
  :class:`~repro.net.message.MessageLedger` records so the control- and
  pre-fetch-overhead metrics stay exactly as defined.

Segment payloads are synthetic (the reproduction never ships real media),
so a :class:`SegmentData` frame carries the declared payload size instead
of the payload bytes; the ledger charges the declared size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple, Union

from repro.net.message import (
    PING_MESSAGE_BITS,
    ROUTING_MESSAGE_BITS,
    MessageKind,
)
from repro.streaming.buffermap import BufferMap, buffer_map_bits

#: Upper bound on one frame's payload (kind byte + body).  Generously above
#: the largest legal message (a full 600-slot buffer map is ~90 bytes); a
#: bigger length prefix means a corrupt or hostile stream.
MAX_FRAME_PAYLOAD = 1 << 16

#: Struct of the frame header: payload length (kind byte + body).
_LEN = struct.Struct(">I")

_U32_MAX = 0xFFFF_FFFF
_U16_MAX = 0xFFFF


class WireError(ValueError):
    """Malformed frame: unknown kind, bad length, out-of-range field."""


class TruncatedFrameError(WireError):
    """The buffer ends before the frame does (wait for more bytes)."""


class WireKind(IntEnum):
    """On-the-wire message kinds (the u8 tag after the length prefix)."""

    BUFFER_MAP = 1
    SEGMENT_REQUEST = 2
    SEGMENT_DATA = 3
    DHT_LOOKUP = 4
    DHT_RESPONSE = 5
    PING = 6
    PONG = 7
    HANDOVER = 8
    SEGMENT_NACK = 9
    CREDIT = 10
    SHARD_HELLO = 11
    ROUTE = 12


# ===================================================================== messages
@dataclass(frozen=True)
class BufferMapMsg:
    """Periodic buffer-map gossip: window anchor + packed availability bits.

    ``newest_id`` piggybacks the sender's view of the stream's live edge, so
    knowledge of the newest generated segment diffuses with the gossip
    instead of needing a global oracle (``-1`` = no segment seen yet).
    """

    sender: int
    newest_id: int
    head_id: int
    capacity: int
    bitmap: bytes

    def buffer_map(self) -> BufferMap:
        """Decode the packed bits back into a :class:`BufferMap` snapshot."""
        return BufferMap.from_bytes(self.head_id, self.capacity, self.bitmap)

    @classmethod
    def from_buffer_map(
        cls, sender: int, newest_id: int, bm: BufferMap
    ) -> "BufferMapMsg":
        return cls(
            sender=sender,
            newest_id=newest_id,
            head_id=bm.head_id,
            capacity=bm.capacity,
            bitmap=bm.to_bytes(),
        )


@dataclass(frozen=True)
class SegmentRequest:
    """Pull request for one segment (``prefetch`` = on-demand path)."""

    sender: int
    segment_id: int
    prefetch: bool = False


@dataclass(frozen=True)
class SegmentData:
    """One delivered segment; the payload is represented by its size."""

    sender: int
    segment_id: int
    size_bits: int
    prefetch: bool = False


@dataclass(frozen=True)
class SegmentNack:
    """Refusal of a :class:`SegmentRequest` (uplink saturated or no data).

    Lets the requester retry with a fallback supplier inside the same
    period — the wire analogue of the simulator's within-round rerouting
    when the chosen uplink's per-period budget is spent.
    """

    sender: int
    segment_id: int
    prefetch: bool = False


@dataclass(frozen=True)
class DhtLookup:
    """A DHT routing message walking greedily towards ``target_key``.

    ``path`` accumulates the nodes visited so far (the origin first), which
    both terminates routing loops and feeds the overhearing-based peer-table
    maintenance at every hop.
    """

    origin: int
    target_key: int
    segment_id: int
    path: Tuple[int, ...]


@dataclass(frozen=True)
class DhtResponse:
    """The terminal node's reply, sent directly back to the lookup origin."""

    responder: int
    origin: int
    target_key: int
    segment_id: int
    has_data: bool
    rate: float
    path: Tuple[int, ...]


@dataclass(frozen=True)
class Ping:
    """Membership probe (join-time neighbour contact)."""

    sender: int
    nonce: int = 0


@dataclass(frozen=True)
class Pong:
    """Reply to a :class:`Ping` (echoes the nonce)."""

    sender: int
    nonce: int = 0


@dataclass(frozen=True)
class Handover:
    """Graceful-leave handover of a VoD backup store to the successor."""

    sender: int
    segment_bits: int
    segment_ids: Tuple[int, ...]


@dataclass(frozen=True)
class CreditGrant:
    """Flow-control credit return: the receiver has consumed ``credits``
    data frames from this link, the sender may put that many more in
    flight (see :mod:`repro.runtime.transport`).

    Rides the control lane so a saturated data path can never starve the
    very frames that would un-saturate it.
    """

    sender: int
    credits: int


@dataclass(frozen=True)
class ShardHello:
    """Shard-to-shard handshake, the first frame on a cluster TCP stream.

    Identifies the dialing (and, in the reply, the accepting) shard and
    carries enough shared-construction facts — shard count, ring size and
    the coordinator's per-run ``token`` — for the acceptor to reject a
    stream from a different run or a differently built cluster before any
    peer traffic flows (see :mod:`repro.runtime.cluster`).
    """

    shard_index: int
    num_shards: int
    token: int
    ring_size: int


@dataclass(frozen=True)
class RoutedFrame:
    """One peer-to-peer frame in transit between shards.

    ``payload`` is the complete encoded inner frame (length prefix
    included), opaque to the carrying link: the receiving shard drops it
    straight into the destination peer's inbox, so a peer never knows
    whether its partner's frame crossed a socket or stayed in-process.
    ``data`` tags the inbox lane exactly like the loopback transport's
    ``data`` flag (segment data vs control priority).
    """

    src: int
    dst: int
    payload: bytes
    data: bool = False


WireMessage = Union[
    BufferMapMsg,
    SegmentRequest,
    SegmentData,
    SegmentNack,
    DhtLookup,
    DhtResponse,
    Ping,
    Pong,
    Handover,
    CreditGrant,
    ShardHello,
    RoutedFrame,
]


# ====================================================================== encoding
def _check_u32(value: int, name: str) -> int:
    if not (0 <= value <= _U32_MAX):
        raise WireError(f"{name} out of u32 range: {value}")
    return value


def _check_u16(value: int, name: str) -> int:
    if not (0 <= value <= _U16_MAX):
        raise WireError(f"{name} out of u16 range: {value}")
    return value


_BM_HEAD = struct.Struct(">IiIH")  # sender, newest (signed), head, capacity
_REQ = struct.Struct(">IIB")
_DATA = struct.Struct(">IIIB")
_LOOKUP_HEAD = struct.Struct(">IIIH")
_RESP_HEAD = struct.Struct(">IIIIBfH")
_PINGPONG = struct.Struct(">II")
_HANDOVER_HEAD = struct.Struct(">IIH")
_CREDIT = struct.Struct(">IH")
_SHARD_HELLO = struct.Struct(">HHII")
_ROUTE_HEAD = struct.Struct(">IIB")


def _encode_path(path: Tuple[int, ...]) -> bytes:
    _check_u16(len(path), "path length")
    for node in path:
        _check_u32(node, "path node id")
    return struct.pack(f">{len(path)}I", *path)


def _decode_ids(body: bytes, offset: int, count: int, what: str) -> Tuple[int, ...]:
    need = 4 * count
    if len(body) - offset != need:
        raise WireError(
            f"{what}: expected {need} bytes of ids, got {len(body) - offset}"
        )
    return struct.unpack_from(f">{count}I", body, offset)


def encode(msg: WireMessage) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    if isinstance(msg, BufferMapMsg):
        if not (-1 <= msg.newest_id <= 0x7FFF_FFFF):
            raise WireError(f"newest_id out of range: {msg.newest_id}")
        _check_u32(msg.sender, "sender")
        _check_u32(msg.head_id, "head_id")
        _check_u16(msg.capacity, "capacity")
        if msg.capacity < 1:
            raise WireError("capacity must be >= 1")
        if len(msg.bitmap) != (msg.capacity + 7) // 8:
            raise WireError(
                f"bitmap of capacity {msg.capacity} needs "
                f"{(msg.capacity + 7) // 8} bytes, got {len(msg.bitmap)}"
            )
        payload = (
            bytes([WireKind.BUFFER_MAP])
            + _BM_HEAD.pack(msg.sender, msg.newest_id, msg.head_id, msg.capacity)
            + msg.bitmap
        )
    elif isinstance(msg, SegmentRequest):
        payload = bytes([WireKind.SEGMENT_REQUEST]) + _REQ.pack(
            _check_u32(msg.sender, "sender"),
            _check_u32(msg.segment_id, "segment_id"),
            1 if msg.prefetch else 0,
        )
    elif isinstance(msg, SegmentNack):
        payload = bytes([WireKind.SEGMENT_NACK]) + _REQ.pack(
            _check_u32(msg.sender, "sender"),
            _check_u32(msg.segment_id, "segment_id"),
            1 if msg.prefetch else 0,
        )
    elif isinstance(msg, SegmentData):
        payload = bytes([WireKind.SEGMENT_DATA]) + _DATA.pack(
            _check_u32(msg.sender, "sender"),
            _check_u32(msg.segment_id, "segment_id"),
            _check_u32(msg.size_bits, "size_bits"),
            1 if msg.prefetch else 0,
        )
    elif isinstance(msg, DhtLookup):
        payload = (
            bytes([WireKind.DHT_LOOKUP])
            + _LOOKUP_HEAD.pack(
                _check_u32(msg.origin, "origin"),
                _check_u32(msg.target_key, "target_key"),
                _check_u32(msg.segment_id, "segment_id"),
                len(msg.path),
            )
            + _encode_path(msg.path)
        )
    elif isinstance(msg, DhtResponse):
        payload = (
            bytes([WireKind.DHT_RESPONSE])
            + _RESP_HEAD.pack(
                _check_u32(msg.responder, "responder"),
                _check_u32(msg.origin, "origin"),
                _check_u32(msg.target_key, "target_key"),
                _check_u32(msg.segment_id, "segment_id"),
                1 if msg.has_data else 0,
                float(msg.rate),
                len(msg.path),
            )
            + _encode_path(msg.path)
        )
    elif isinstance(msg, Ping):
        payload = bytes([WireKind.PING]) + _PINGPONG.pack(
            _check_u32(msg.sender, "sender"), _check_u32(msg.nonce, "nonce")
        )
    elif isinstance(msg, Pong):
        payload = bytes([WireKind.PONG]) + _PINGPONG.pack(
            _check_u32(msg.sender, "sender"), _check_u32(msg.nonce, "nonce")
        )
    elif isinstance(msg, Handover):
        payload = (
            bytes([WireKind.HANDOVER])
            + _HANDOVER_HEAD.pack(
                _check_u32(msg.sender, "sender"),
                _check_u32(msg.segment_bits, "segment_bits"),
                _check_u16(len(msg.segment_ids), "segment count"),
            )
            + struct.pack(
                f">{len(msg.segment_ids)}I",
                *(_check_u32(s, "segment_id") for s in msg.segment_ids),
            )
        )
    elif isinstance(msg, CreditGrant):
        if msg.credits < 1:
            raise WireError(f"credit grant must carry >= 1 credit, got {msg.credits}")
        payload = bytes([WireKind.CREDIT]) + _CREDIT.pack(
            _check_u32(msg.sender, "sender"),
            _check_u16(msg.credits, "credits"),
        )
    elif isinstance(msg, ShardHello):
        if msg.num_shards < 1:
            raise WireError(f"num_shards must be >= 1, got {msg.num_shards}")
        payload = bytes([WireKind.SHARD_HELLO]) + _SHARD_HELLO.pack(
            _check_u16(msg.shard_index, "shard_index"),
            _check_u16(msg.num_shards, "num_shards"),
            _check_u32(msg.token, "token"),
            _check_u32(msg.ring_size, "ring_size"),
        )
    elif isinstance(msg, RoutedFrame):
        payload = (
            bytes([WireKind.ROUTE])
            + _ROUTE_HEAD.pack(
                _check_u32(msg.src, "src"),
                _check_u32(msg.dst, "dst"),
                1 if msg.data else 0,
            )
            + msg.payload
        )
    else:
        raise WireError(f"cannot encode {type(msg).__name__}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload too large: {len(payload)}")
    return _LEN.pack(len(payload)) + payload


def decode(buffer: Union[bytes, bytearray, memoryview], offset: int = 0) -> Tuple[WireMessage, int]:
    """Decode one frame starting at ``offset``.

    Returns ``(message, next_offset)``.

    Raises:
        TruncatedFrameError: the buffer ends mid-frame (feed more bytes).
        WireError: the frame is malformed (unknown kind, bad sizes).
    """
    view = memoryview(buffer)
    if len(view) - offset < _LEN.size:
        raise TruncatedFrameError("incomplete length prefix")
    (length,) = _LEN.unpack_from(view, offset)
    if length < 1:
        raise WireError("frame payload must hold at least the kind byte")
    if length > MAX_FRAME_PAYLOAD:
        raise WireError(f"frame payload too large: {length}")
    start = offset + _LEN.size
    if len(view) - start < length:
        raise TruncatedFrameError(
            f"frame needs {length} payload bytes, have {len(view) - start}"
        )
    payload = bytes(view[start : start + length])
    kind_byte, body = payload[0], payload[1:]
    try:
        kind = WireKind(kind_byte)
    except ValueError as exc:
        raise WireError(f"unknown wire kind {kind_byte}") from exc
    msg = _decode_body(kind, body)
    return msg, start + length


def _decode_body(kind: WireKind, body: bytes) -> WireMessage:
    if kind is WireKind.BUFFER_MAP:
        if len(body) < _BM_HEAD.size:
            raise WireError("buffer-map body too short")
        sender, newest, head, capacity = _BM_HEAD.unpack_from(body, 0)
        bitmap = body[_BM_HEAD.size :]
        if capacity < 1:
            raise WireError("capacity must be >= 1")
        if len(bitmap) != (capacity + 7) // 8:
            raise WireError(
                f"bitmap of capacity {capacity} needs {(capacity + 7) // 8} "
                f"bytes, got {len(bitmap)}"
            )
        return BufferMapMsg(
            sender=sender, newest_id=newest, head_id=head, capacity=capacity,
            bitmap=bitmap,
        )
    if kind is WireKind.SEGMENT_REQUEST:
        if len(body) != _REQ.size:
            raise WireError("segment-request body size mismatch")
        sender, segment_id, flags = _REQ.unpack(body)
        return SegmentRequest(sender=sender, segment_id=segment_id, prefetch=bool(flags & 1))
    if kind is WireKind.SEGMENT_NACK:
        if len(body) != _REQ.size:
            raise WireError("segment-nack body size mismatch")
        sender, segment_id, flags = _REQ.unpack(body)
        return SegmentNack(sender=sender, segment_id=segment_id, prefetch=bool(flags & 1))
    if kind is WireKind.SEGMENT_DATA:
        if len(body) != _DATA.size:
            raise WireError("segment-data body size mismatch")
        sender, segment_id, size_bits, flags = _DATA.unpack(body)
        return SegmentData(
            sender=sender, segment_id=segment_id, size_bits=size_bits,
            prefetch=bool(flags & 1),
        )
    if kind is WireKind.DHT_LOOKUP:
        if len(body) < _LOOKUP_HEAD.size:
            raise WireError("dht-lookup body too short")
        origin, key, segment_id, count = _LOOKUP_HEAD.unpack_from(body, 0)
        path = _decode_ids(body, _LOOKUP_HEAD.size, count, "dht-lookup path")
        return DhtLookup(origin=origin, target_key=key, segment_id=segment_id, path=path)
    if kind is WireKind.DHT_RESPONSE:
        if len(body) < _RESP_HEAD.size:
            raise WireError("dht-response body too short")
        responder, origin, key, segment_id, flags, rate, count = _RESP_HEAD.unpack_from(
            body, 0
        )
        path = _decode_ids(body, _RESP_HEAD.size, count, "dht-response path")
        return DhtResponse(
            responder=responder, origin=origin, target_key=key,
            segment_id=segment_id, has_data=bool(flags & 1), rate=rate, path=path,
        )
    if kind is WireKind.PING or kind is WireKind.PONG:
        if len(body) != _PINGPONG.size:
            raise WireError("ping/pong body size mismatch")
        sender, nonce = _PINGPONG.unpack(body)
        cls = Ping if kind is WireKind.PING else Pong
        return cls(sender=sender, nonce=nonce)
    if kind is WireKind.HANDOVER:
        if len(body) < _HANDOVER_HEAD.size:
            raise WireError("handover body too short")
        sender, segment_bits, count = _HANDOVER_HEAD.unpack_from(body, 0)
        ids = _decode_ids(body, _HANDOVER_HEAD.size, count, "handover ids")
        return Handover(sender=sender, segment_bits=segment_bits, segment_ids=ids)
    if kind is WireKind.CREDIT:
        if len(body) != _CREDIT.size:
            raise WireError("credit-grant body size mismatch")
        sender, credits = _CREDIT.unpack(body)
        if credits < 1:
            raise WireError("credit grant must carry >= 1 credit")
        return CreditGrant(sender=sender, credits=credits)
    if kind is WireKind.SHARD_HELLO:
        if len(body) != _SHARD_HELLO.size:
            raise WireError("shard-hello body size mismatch")
        shard_index, num_shards, token, ring_size = _SHARD_HELLO.unpack(body)
        if num_shards < 1:
            raise WireError("num_shards must be >= 1")
        return ShardHello(
            shard_index=shard_index, num_shards=num_shards, token=token,
            ring_size=ring_size,
        )
    if kind is WireKind.ROUTE:
        if len(body) < _ROUTE_HEAD.size:
            raise WireError("routed-frame body too short")
        src, dst, flags = _ROUTE_HEAD.unpack_from(body, 0)
        return RoutedFrame(
            src=src, dst=dst, payload=body[_ROUTE_HEAD.size :],
            data=bool(flags & 1),
        )
    raise WireError(f"unhandled wire kind {kind!r}")  # pragma: no cover


class FrameDecoder:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed arbitrary chunks (frames may arrive split or coalesced, exactly as
    on a TCP stream); complete messages come back in order, partial bytes
    are buffered until the rest arrives.  A malformed frame raises
    :class:`WireError` and poisons the stream (a real transport would close
    the connection).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[WireMessage]:
        """Absorb ``chunk`` and return every now-complete message."""
        self._buffer.extend(chunk)
        messages: List[WireMessage] = []
        offset = 0
        buffer = self._buffer
        available = len(buffer)
        # Peek the length prefix so the common "buffer drained" exit is a
        # cheap comparison rather than a raised TruncatedFrameError.
        while available - offset >= _LEN.size:
            (length,) = _LEN.unpack_from(buffer, offset)
            if length <= MAX_FRAME_PAYLOAD and available - offset - _LEN.size < length:
                break
            msg, offset = decode(buffer, offset)
            messages.append(msg)
        if offset:
            del buffer[:offset]
        return messages


# ================================================================== accounting
def ledger_entry(msg: WireMessage) -> Optional[Tuple[MessageKind, float]]:
    """The ``(kind, bits)`` a :class:`MessageLedger` must record for ``msg``.

    Sizes reconcile against :mod:`repro.net.message` / Section 5.4 of the
    paper — NOT against the physical frame length:

    * buffer map — ``capacity + 20`` anchor bits (:func:`buffer_map_bits`);
    * data segment — the declared payload size (``segment_bits``), under
      ``DATA_PREFETCH`` or ``DATA_SCHEDULED`` per the delivery path;
    * DHT lookup hop / response — ``ROUTING_MESSAGE_BITS`` (80) each;
    * PING / PONG / handover notice — ``PING_MESSAGE_BITS`` (80) each,
      under ``MEMBERSHIP``.

    Returns ``None`` for messages the paper's overhead metrics do not
    count (pull requests and transport-level credit grants are treated as
    free control signalling — the simulator has no analogue of either and
    the paper's Section 5.4 accounting does not define them).  Cluster
    transport frames (shard handshakes and routed-frame envelopes) are
    likewise uncharged: the *inner* frame of a routed envelope is charged
    once, at its originating peer, exactly as on the loopback transport.
    """
    if isinstance(msg, BufferMapMsg):
        return (MessageKind.BUFFER_MAP, float(buffer_map_bits(msg.capacity)))
    if isinstance(msg, SegmentData):
        kind = MessageKind.DATA_PREFETCH if msg.prefetch else MessageKind.DATA_SCHEDULED
        return (kind, float(msg.size_bits))
    if isinstance(msg, (DhtLookup, DhtResponse)):
        return (MessageKind.DHT_ROUTING, float(ROUTING_MESSAGE_BITS))
    if isinstance(msg, (Ping, Pong, Handover)):
        return (MessageKind.MEMBERSHIP, float(PING_MESSAGE_BITS))
    if isinstance(msg, (SegmentRequest, SegmentNack, CreditGrant, ShardHello, RoutedFrame)):
        return None
    raise WireError(f"no ledger rule for {type(msg).__name__}")
