"""Sim-vs-runtime parity harness.

The live runtime reuses the simulator's node logic, overlay construction
and message accounting — so on the same scenario both should converge to
the same stable playback continuity, even though the runtime replaces the
lock-step round barrier with real concurrent tasks, wire frames and link
latency.  This harness runs both on one scenario and reports the deltas;
``docs/runtime.md`` documents the expected agreement (stable continuity
within 0.02 on the ``static`` scenario at 200 nodes, the acceptance bar
the CI parity test enforces).

The simulator side is deterministic; the runtime side carries wall-clock
noise, which is exactly why the comparison targets the *stable-phase mean*
rather than any individual round sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.system import SimulationResult
from repro.runtime.swarm import DEFAULT_TIME_SCALE, LiveSwarm, RuntimeResult
from repro.scenarios.spec import ScenarioSpec, load_scenarios


@dataclass(frozen=True)
class ParityReport:
    """Side-by-side stable metrics of one simulator run and one swarm run."""

    scenario: str
    num_nodes: int
    rounds: int
    sim_stable_continuity: float
    runtime_stable_continuity: float
    sim_prefetch_overhead: float
    runtime_prefetch_overhead: float
    sim_result: SimulationResult
    runtime_result: RuntimeResult

    @property
    def continuity_delta(self) -> float:
        """|runtime − sim| stable continuity (the acceptance metric)."""
        return abs(self.runtime_stable_continuity - self.sim_stable_continuity)

    def formatted(self) -> str:
        """Human-readable two-line comparison."""
        return (
            f"parity {self.scenario} n={self.num_nodes} rounds={self.rounds}:\n"
            f"  simulator: stable continuity {self.sim_stable_continuity:.4f}, "
            f"prefetch overhead {self.sim_prefetch_overhead:.4f}\n"
            f"  runtime:   stable continuity {self.runtime_stable_continuity:.4f}, "
            f"prefetch overhead {self.runtime_prefetch_overhead:.4f}\n"
            f"  |Δ continuity| = {self.continuity_delta:.4f}"
        )


def run_parity(
    scenario: Union[str, ScenarioSpec] = "static",
    num_nodes: int = 200,
    rounds: int = 40,
    seed: int = 0,
    time_scale: float = DEFAULT_TIME_SCALE,
) -> ParityReport:
    """Run one scenario through the simulator and the live runtime.

    Args:
        scenario: built-in scenario name, spec file path, or spec object.
        num_nodes: overlay size for both runs.
        rounds: scheduling periods for both runs.
        seed: root seed (identical construction on both sides).
        time_scale: wall seconds per simulated second for the swarm side.
    """
    (spec,) = load_scenarios([scenario]) if not isinstance(scenario, ScenarioSpec) else (scenario,)
    spec = spec.scaled(num_nodes=num_nodes, rounds=rounds, seed=seed)
    sim_result = spec.run()
    runtime_result = LiveSwarm(spec, time_scale=time_scale).run()
    return ParityReport(
        scenario=spec.name,
        num_nodes=num_nodes,
        rounds=rounds,
        sim_stable_continuity=float(sim_result.stable_continuity()),
        runtime_stable_continuity=float(runtime_result.stable_continuity()),
        sim_prefetch_overhead=float(sim_result.prefetch_overhead()),
        runtime_prefetch_overhead=float(runtime_result.prefetch_overhead()),
        sim_result=sim_result,
        runtime_result=runtime_result,
    )
