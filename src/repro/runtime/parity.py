"""Sim-vs-runtime parity harness.

The live runtime reuses the simulator's node logic, overlay construction
and message accounting — so on the same scenario both should converge to
the same stable playback continuity, even though the runtime replaces the
lock-step round barrier with real concurrent tasks, wire frames and link
latency.  This harness runs both on one scenario and reports the deltas;
``docs/runtime.md`` documents the expected agreement (stable continuity
within 0.02 on the ``static`` scenario at 200 nodes, the acceptance bar
the CI parity test enforces).

The simulator side is deterministic; the runtime side carries wall-clock
noise, which is exactly why the comparison targets the *stable-phase mean*
rather than any individual round sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.system import SimulationResult
from repro.runtime.swarm import DEFAULT_TIME_SCALE, LiveSwarm, RuntimeResult
from repro.scenarios.spec import ScenarioSpec, load_scenarios

#: The |Δ stable continuity| bar the full-matrix parity acceptance uses:
#: every built-in scenario — churn spikes, blackouts and lossy swarms
#: included — must agree between the engines within three points.
PARITY_TOLERANCE = 0.03

#: Live engines the harness can put on the runtime side of a comparison:
#: the single-process swarm or the sharded multi-process cluster.
PARITY_BACKENDS = ("runtime", "cluster")


@dataclass(frozen=True)
class ParityReport:
    """Side-by-side stable metrics of one simulator run and one swarm run."""

    scenario: str
    num_nodes: int
    rounds: int
    sim_stable_continuity: float
    runtime_stable_continuity: float
    sim_prefetch_overhead: float
    runtime_prefetch_overhead: float
    sim_result: SimulationResult
    runtime_result: RuntimeResult
    #: The live engine on the runtime side (``"runtime"`` or ``"cluster"``).
    backend: str = "runtime"

    @property
    def continuity_delta(self) -> float:
        """|runtime − sim| stable continuity (the acceptance metric)."""
        return abs(self.runtime_stable_continuity - self.sim_stable_continuity)

    def formatted(self) -> str:
        """Human-readable two-line comparison."""
        return (
            f"parity {self.scenario} n={self.num_nodes} rounds={self.rounds} "
            f"[{self.backend}]:\n"
            f"  simulator: stable continuity {self.sim_stable_continuity:.4f}, "
            f"prefetch overhead {self.sim_prefetch_overhead:.4f}\n"
            f"  {self.backend:<9}: stable continuity "
            f"{self.runtime_stable_continuity:.4f}, "
            f"prefetch overhead {self.runtime_prefetch_overhead:.4f}\n"
            f"  |Δ continuity| = {self.continuity_delta:.4f}"
        )


def run_parity(
    scenario: Union[str, ScenarioSpec] = "static",
    num_nodes: int = 200,
    rounds: int = 40,
    seed: int = 0,
    time_scale: float = DEFAULT_TIME_SCALE,
    clock: str = "wall",
    backend: str = "runtime",
    shards: int = 2,
) -> ParityReport:
    """Run one scenario through the simulator and a live engine.

    Args:
        scenario: built-in scenario name, spec file path, or spec object.
        num_nodes: overlay size for both runs.
        rounds: scheduling periods for both runs.
        seed: root seed (identical construction on both sides).
        time_scale: wall seconds per simulated second for the swarm side.
        clock: the swarm's clock — ``"wall"`` for real time, ``"virtual"``
            for the deterministic virtual clock (fast, machine-independent;
            what the matrix acceptance runs on).  The cluster backend
            always runs on the wall clock (sockets are real I/O).
        backend: the live side — ``"runtime"`` (single-process swarm) or
            ``"cluster"`` (``shards`` worker processes over TCP, the
            small-scale cluster-vs-sim parity check).
        shards: worker processes for the cluster backend.
    """
    if backend not in PARITY_BACKENDS:
        raise ValueError(f"backend must be one of {PARITY_BACKENDS}, got {backend!r}")
    (spec,) = load_scenarios([scenario]) if not isinstance(scenario, ScenarioSpec) else (scenario,)
    spec = spec.scaled(num_nodes=num_nodes, rounds=rounds, seed=seed)
    sim_result = spec.run()
    if backend == "cluster":
        from repro.runtime.cluster import run_cluster

        runtime_result = run_cluster(spec, shards=shards, time_scale=time_scale)
    else:
        runtime_result = LiveSwarm(spec, time_scale=time_scale, clock=clock).run()
    return ParityReport(
        scenario=spec.name,
        num_nodes=num_nodes,
        rounds=rounds,
        backend=backend,
        sim_stable_continuity=float(sim_result.stable_continuity()),
        runtime_stable_continuity=float(runtime_result.stable_continuity()),
        sim_prefetch_overhead=float(sim_result.prefetch_overhead()),
        runtime_prefetch_overhead=float(runtime_result.prefetch_overhead()),
        sim_result=sim_result,
        runtime_result=runtime_result,
    )


@dataclass(frozen=True)
class ParityMatrix:
    """Parity reports across a set of scenarios (one grid acceptance)."""

    reports: Tuple[ParityReport, ...]

    @property
    def max_delta(self) -> float:
        """The worst |Δ stable continuity| across the matrix."""
        return max((r.continuity_delta for r in self.reports), default=0.0)

    def failures(self, tolerance: float = PARITY_TOLERANCE) -> List[ParityReport]:
        """The reports whose continuity delta exceeds ``tolerance``."""
        return [r for r in self.reports if r.continuity_delta > tolerance]

    def formatted(self, tolerance: float = PARITY_TOLERANCE) -> str:
        """One table row per scenario plus a verdict line."""
        lines = [
            f"{'scenario':<14} {'sim':>8} {'runtime':>8} {'|Δ|':>8}  verdict"
        ]
        for r in self.reports:
            verdict = "ok" if r.continuity_delta <= tolerance else "FAIL"
            lines.append(
                f"{r.scenario:<14} {r.sim_stable_continuity:>8.4f} "
                f"{r.runtime_stable_continuity:>8.4f} "
                f"{r.continuity_delta:>8.4f}  {verdict}"
            )
        lines.append(
            f"max |Δ stable continuity| = {self.max_delta:.4f} "
            f"(tolerance {tolerance})"
        )
        return "\n".join(lines)


def run_parity_matrix(
    scenarios: Optional[Sequence[Union[str, ScenarioSpec]]] = None,
    num_nodes: int = 120,
    rounds: int = 40,
    seed: int = 0,
    time_scale: float = DEFAULT_TIME_SCALE,
    clock: str = "virtual",
    backend: str = "runtime",
    shards: int = 2,
) -> ParityMatrix:
    """Run the sim-vs-live parity harness across several scenarios.

    ``scenarios=None`` covers every built-in scenario — the full matrix
    the nightly CI job runs at |Δ| ≤ :data:`PARITY_TOLERANCE`.  Defaults
    to the **virtual clock**, which makes the matrix deterministic and
    wall-wait-free (runtime cost is CPU only), so the acceptance bar does
    not depend on how loaded the machine is.  ``backend="cluster"`` puts
    sharded multi-process swarms on the live side instead (wall clock,
    real sockets — slower and noisier, which is exactly what the optional
    cluster axis of ``runtime --parity-matrix`` is for).
    """
    if scenarios is None:
        from repro.scenarios.library import builtin_names

        scenarios = list(builtin_names())
    reports = tuple(
        run_parity(
            scenario,
            num_nodes=num_nodes,
            rounds=rounds,
            seed=seed,
            time_scale=time_scale,
            clock=clock,
            backend=backend,
            shards=shards,
        )
        for scenario in scenarios
    )
    return ParityMatrix(reports=reports)
