"""A virtual-clock asyncio event loop for deterministic runtime runs.

The live runtime normally runs on the wall clock: peers sleep real
(scaled) seconds between scheduling periods and frames spend real wall
time "in flight".  That realism is what the throughput benchmark needs —
and exactly what campaigns and regression tests do *not* want, because
wall-clock scheduling makes every run a different interleaving.

:class:`VirtualClockEventLoop` removes the wall clock from the picture:

* ``loop.time()`` returns a **virtual** timestamp;
* whenever the loop would block in ``select()`` waiting for the next
  timer, the virtual clock instead jumps straight to that timer's due
  time and the select returns immediately.

Every ``asyncio.sleep``, ``call_later`` and timeout therefore fires in
exact due-time order with zero wall waiting, and — because the runtime
does no real I/O (loopback transports are ``call_later`` deliveries) —
the whole swarm executes as one deterministic callback sequence: same
spec, same seed ⇒ same messages, same drops, same metrics, bit for bit.
Callbacks consume no virtual time, so a virtual-clock swarm can never
overload its own schedule; overload physics (and the throughput ceiling)
only exist on the wall clock.

This is how ``campaign --backend runtime`` fans scenario grids over live
swarms while keeping the campaign contract that results depend only on
cell coordinates, never on machine speed (see ``docs/runtime.md``).
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any

#: Consecutive zero-timeout selector polls with no ready callbacks and no
#: scheduled timers before the loop declares the program wedged.  A pure
#: loopback workload always has either ready callbacks or timers pending;
#: hitting this means every task is awaiting an event nobody will set.
_STALL_LIMIT = 10_000


class _VirtualSelector:
    """Selector proxy that converts blocking waits into clock jumps.

    The base event loop computes ``timeout = next_timer_due - loop.time()``
    and hands it to ``selector.select``.  Instead of sleeping, this proxy
    advances the owning loop's virtual clock by that timeout and polls the
    real selector non-blockingly (the self-pipe that wakes the loop still
    works), so timers fire "on time" without wall waiting.
    """

    def __init__(self, wrapped: selectors.BaseSelector, loop: "VirtualClockEventLoop") -> None:
        self._wrapped = wrapped
        self._loop = loop
        self._stalled_polls = 0

    def select(self, timeout: Any = None) -> Any:
        if timeout is not None and timeout > 0:
            self._loop._virtual_now += timeout
            self._stalled_polls = 0
        elif timeout is None:
            # No ready callbacks and no timers: nothing can ever advance
            # the virtual clock.  Poll a bounded number of times (events
            # may still arrive through the self-pipe, e.g. loop.stop())
            # before treating it as a deadlock instead of spinning forever.
            self._stalled_polls += 1
            if self._stalled_polls > _STALL_LIMIT:
                raise RuntimeError(
                    "virtual clock stalled: no scheduled timers and no ready "
                    "callbacks — every task is waiting on an event that "
                    "nothing will set"
                )
        else:
            self._stalled_polls = 0
        return self._wrapped.select(0)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wrapped, name)


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """An event loop whose clock is virtual time, not the wall."""

    def __init__(self) -> None:
        super().__init__(selectors.DefaultSelector())
        self._virtual_now = 0.0
        self._selector = _VirtualSelector(self._selector, self)

    def time(self) -> float:
        """Current virtual time in seconds (starts at 0.0)."""
        return self._virtual_now


def run_on_virtual_clock(coro) -> Any:
    """Run ``coro`` to completion on a fresh virtual-clock event loop.

    The deterministic sibling of :func:`asyncio.run`: timers fire in
    due-time order with zero wall waiting.  The loop is closed (and the
    thread's event-loop slot cleared) afterwards, so repeated calls are
    independent.
    """
    loop = VirtualClockEventLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()
