"""The live peer actor: one asyncio task per overlay node.

A :class:`LivePeer` adapts the passive :class:`~repro.core.node.StreamingNode`
state machine (and its ContinuStreaming specialisation) to an event-driven
life: instead of a global round barrier, each peer owns

* a **bounded inbox** (:class:`~repro.runtime.transport.BoundedInbox`) of
  raw wire frames — control frames on a priority lane ahead of segment
  data — drained by a reader task that decodes frames in place (links
  deliver complete frames, so no stream reassembly happens here; a
  :class:`~repro.runtime.wire.FrameBatch` entry is unwrapped and each
  inner frame dispatched and credit-accounted individually);
* a **credit-gated send window per link**
  (:class:`~repro.runtime.transport.SendWindowSet`): at most
  ``data_window`` unconsumed segments in flight towards any one receiver;
  further segments wait in a bounded pending queue until the receiver
  returns credits with :class:`~repro.runtime.wire.CreditGrant` control
  frames (batched as it consumes data, flushed at period boundaries);
* a **period loop** that fires every scheduling period ``τ`` on the peer's
  *own* clock (scaled by the swarm's time factor) and performs the same
  work the round pipeline's phases do for it in the simulator — playback,
  buffer-map gossip, data scheduling, urgent-line prediction — except that
  everything leaves the peer as serialized wire messages and everything
  arrives asynchronously whenever the (latency-delayed) transport delivers
  it;
* a **send budget**: a per-period token bucket refilled to
  ``outbound_rate · τ``, which paces segment uploads exactly like the
  simulator's per-period outbound budgets;
* a private :class:`~repro.net.message.MessageLedger` charged via
  :func:`~repro.runtime.wire.ledger_entry`, merged swarm-wide only after
  shutdown (no shared mutable state between peers).

The peer reuses the node's decision logic verbatim: ``plan_requests`` runs
the paper's Algorithm 1 over the *received* buffer-map messages (which are
genuine snapshots — a segment delivered mid-period only becomes visible to
neighbours in the next gossip), and ``predict_missed`` runs the urgent-line
prediction whose missed segments the peer then locates by routing real
DHT lookup frames hop by hop through the other peers.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.net.message import MessageLedger
from repro.runtime import wire
from repro.runtime.transport import (
    BoundedInbox,
    CreditLedger,
    SendWindowSet,
    TransportStats,
)
from repro.streaming.buffermap import BufferMap
from repro.streaming.segment import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.swarm import LiveSwarm

#: Kind bytes (right after the 4-byte length prefix) of the control
#: frames that carry one-shot state and therefore must survive an inbox
#: shed: credit grants (window state the granting side already reset),
#: graceful-leave handovers (the sender dies right after sending), and
#: full buffer maps — under delta gossip a full map is no longer
#: repeated every period but the *anchor* every subsequent delta is
#: decoded against, so losing one breaks the chain until a desync
#: round-trip completes.  Deltas ride along: an absorbed in-sequence
#: delta applies normally, an out-of-sequence one triggers the usual
#: PING resync — whereas silently dropping it would leave this peer's
#: view of the sender a full desync round-trip staler than the old
#: repeat-every-period full maps ever were.
_UNSHEDDABLE_KIND_BYTES = (
    bytes([wire.WireKind.CREDIT]),
    bytes([wire.WireKind.HANDOVER]),
    bytes([wire.WireKind.BUFFER_MAP]),
    bytes([wire.WireKind.MAP_DELTA]),
)


@dataclass
class _PendingLookup:
    """Bookkeeping for one segment's in-flight DHT location step."""

    segment_id: int
    expected: int
    started_tick: int
    responses: List[wire.DhtResponse] = field(default_factory=list)
    decided: bool = False


@dataclass
class PlaybackSample:
    """What one peer's playback did during one global period."""

    started: bool
    continuous: bool


class LivePeer:
    """One concurrently running overlay peer.

    Args:
        node: the protocol node (built by the
            :class:`~repro.core.overlay.OverlayManager`, so topology,
            bandwidth and peer tables match the simulator's construction).
        swarm: the orchestrator, providing transport, clocking and the
            shared latency/overhearing services.
        first_tick: global period index at which this peer starts living
            (0 for the boot population, the join period for churned-in
            peers) — playback samples are keyed by global tick so the
            swarm can aggregate continuity per period.
    """

    def __init__(self, node: StreamingNode, swarm: "LiveSwarm", first_tick: int = 0) -> None:
        self.node = node
        self.swarm = swarm
        self.config = swarm.config
        self.first_tick = int(first_tick)
        self.ledger = MessageLedger()
        transport = swarm.transport
        self.transport_stats = TransportStats()
        self.inbox = BoundedInbox(transport.inbox_watermark, self.transport_stats)
        self.send_windows = SendWindowSet(transport, self.transport_stats)
        self._credit_ledger = CreditLedger(transport.credit_batch)
        self.neighbor_maps: Dict[int, BufferMap] = {}
        #: Gossip sequence number of each partner's stored map — a
        #: :class:`~repro.runtime.wire.BufferMapDelta` with ``seq = s``
        #: only applies when the stored map is at ``s - 1``.
        self._neighbor_map_seq: Dict[int, int] = {}
        #: Monotone counter over this peer's own gossip snapshots.
        self._gossip_seq = 0
        #: The last gossiped ``(seq, snapshot)`` — the base the next
        #: period's delta is diffed against (``None`` before first gossip).
        self._last_gossip: Optional[Tuple[int, BufferMap]] = None
        #: Per-partner last snapshot seq we shipped them (full or via an
        #: unbroken delta chain); a partner not at ``seq - 1`` gets a full
        #: map instead of a delta.
        self._map_synced: Dict[int, int] = {}
        #: Partners whose buffer map arrived since this period's boundary —
        #: the readiness signal the adaptive mid-period phasing waits on.
        self._maps_this_period: set = set()
        self.known_newest: int = -1
        period = self.config.scheduling_period
        self.outbound_tokens: float = node.outbound_rate * period
        self.playback_log: Dict[int, PlaybackSample] = {}
        #: The period currently open (set at each boundary); deferred
        #: mid-period/rescue callbacks from an earlier period abandon
        #: themselves when a newer boundary has passed.
        self._current_tick = -1
        #: Wall length of the currently open period — normally the scaled
        #: scheduling period, but shorter when the boundary ran late (a
        #: joiner admitted mid-period, an overloaded loop): the intra-
        #: period chain compresses into what actually remains.
        self._period_span = self.config.scheduling_period * swarm.time_scale
        self._delivered: Dict[int, int] = {}
        self._requested: set = set()
        self._nack_tried: Dict[int, set] = {}
        self._dht_pending: Dict[int, _PendingLookup] = {}
        self._prefetch_deadlines: Dict[int, float] = {}
        self._ping_nonce = itertools.count(1)
        self._tasks: List[asyncio.Task] = []
        self.ticks_run = 0
        self.stopped = False
        #: The swarm's observability plane (the no-op ``NULL_OBS`` when
        #: disabled — every instrumented site guards on ``obs.enabled`` /
        #: ``obs.tracing`` so the disabled cost is one attribute read).
        self.obs = swarm.obs
        #: Requester-side journey state of sampled traces, keyed by
        #: segment id: resolved to play/miss at the period boundary.
        self._trace_live: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ identity
    @property
    def peer_id(self) -> int:
        return self.node.node_id

    @property
    def is_source(self) -> bool:
        return self.node.is_source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "source" if self.is_source else "peer"
        return f"<LivePeer {role} id={self.peer_id} ticks={self.ticks_run}>"

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the reader and period-loop tasks on the running loop."""
        self._tasks = [
            asyncio.create_task(self._read_loop(), name=f"peer-{self.peer_id}-read"),
            asyncio.create_task(self._period_loop(), name=f"peer-{self.peer_id}-tick"),
        ]

    async def stop(self) -> None:
        """Cancel both tasks and wait for them to unwind."""
        self.stopped = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    def announce_join(self) -> None:
        """Membership traffic of a newly joined peer: PING every neighbour."""
        for nbr in self.node.neighbors:
            self._send(nbr, wire.Ping(sender=self.peer_id, nonce=next(self._ping_nonce)))

    def send_handover(self) -> None:
        """Graceful leave: ship the VoD backup to the successor over the wire."""
        if not isinstance(self.node, ContinuStreamingNode):
            return
        successor = self.swarm.successor_of(self.peer_id)
        if successor is None:
            return
        segments = self.node.handover_backup()
        self._send(
            successor,
            wire.Handover(
                sender=self.peer_id,
                segment_bits=self.config.segment_bits,
                segment_ids=tuple(seg.segment_id for seg in segments),
            ),
        )

    # ------------------------------------------------------------------- sending
    def _send(self, dst: int, msg: wire.WireMessage) -> None:
        """Encode and ship one message, respecting the link's flow control.

        Control frames ship immediately (and are charged to the ledger);
        segment data must hold a link credit first — without one it waits
        in the bounded pending queue and is only charged when it actually
        leaves (:meth:`_on_credit` releases it), so shed segments never
        distort the overhead metrics.
        """
        entry = wire.ledger_entry(msg)
        frame = wire.encode(msg)
        if isinstance(msg, wire.SegmentData):
            if not self.send_windows.acquire(dst, (frame, entry)):
                if msg.trace_id and self.obs.tracing:
                    # Credit-starved: parked in the pending queue; the
                    # deliver span's gap attributes the wait.
                    self.obs.span(
                        "queue", msg.trace_id, self.peer_id, msg.segment_id, dst=dst
                    )
                return
            if msg.trace_id and self.obs.tracing:
                via = self.swarm.hop_of(dst)
                if via is None:
                    self.obs.span(
                        "ship", msg.trace_id, self.peer_id, msg.segment_id, dst=dst
                    )
                else:
                    self.obs.span(
                        "ship", msg.trace_id, self.peer_id, msg.segment_id,
                        dst=dst, via_shard=via,
                    )
            self._ship(dst, frame, entry, data=True)
            return
        self._ship(dst, frame, entry, data=False)

    def _ship(self, dst, frame, entry, data: bool) -> None:
        if data:
            # The uplink budget is spent when a segment actually leaves —
            # a frame parked in the pending queue (and possibly shed
            # there) must not burn this period's tokens, or the supplier
            # under-counts its own capacity and NACKs requests it could
            # in fact serve (the simulator charges the serving round's
            # budget the same way).
            self.outbound_tokens -= 1.0
        if entry is not None:
            self.ledger.record(entry[0], entry[1])
        self.swarm.deliver(self.peer_id, dst, frame, data=data)

    def _broadcast(self, dsts, msg: wire.WireMessage) -> None:
        """Send one control message to many peers, encoding it only once."""
        entry = wire.ledger_entry(msg)
        frame = wire.encode(msg)
        for dst in dsts:
            self._ship(dst, frame, entry, data=False)

    # ------------------------------------------------------------------ receiving
    async def _read_loop(self) -> None:
        # Inbox entries are complete frames (the links guarantee it), so
        # they decode directly — no stream reassembly buffer on this path.
        decode = wire.decode
        batch_kind = wire.WireKind.BATCH
        while True:
            for src, chunk, was_control in await self.inbox.get_batch():
                if chunk[4] == batch_kind:
                    for frame in decode(chunk)[0].frames:
                        self._dispatch(decode(frame)[0])
                        if not was_control:
                            self._consume_data_credit(src)
                else:
                    self._dispatch(decode(chunk)[0])
                    if not was_control:
                        # One data frame consumed: owe its sender a credit
                        # and return a batch once enough have accumulated.
                        self._consume_data_credit(src)

    def _consume_data_credit(self, src: int) -> None:
        if self._credit_ledger.consume(src):
            self._grant_credits(src)

    def note_shed_data(self, src: int, count: int = 1) -> None:
        """The transport shed ``count`` data frames bound for this peer.

        The credits the sender spent on them must still flow back, or the
        link would wedge with the window permanently short; a shed frame
        counts exactly like a consumed one for flow control.  A shed
        :class:`~repro.runtime.wire.FrameBatch` refunds every inner data
        frame's credit (``count`` > 1).
        """
        for _ in range(count):
            self._consume_data_credit(src)

    def refund_data_credit(self, dst: int) -> None:
        """A data frame towards ``dst`` died before any receiver saw it.

        The cluster transport calls this when a socket link sheds or
        drops an outbound segment (full queue, dead shard): the receiver
        that would normally count the frame as consumed and grant the
        credit back no longer exists for it, so the sender refunds
        itself.  Applied as a self-granted credit, which also releases
        the next pending segment (that one may meet the same fate — the
        chain terminates because every step permanently drains the
        bounded pending queue).
        """
        self._on_credit(wire.CreditGrant(sender=dst, credits=1))

    def reset_partner_link(self, dst: int) -> None:
        """Forget all per-link state towards ``dst`` (departure or drop).

        Resets the credit window (refunding in-flight credits, counted in
        ``link_resets``) *and* the delta-gossip sync mark: whatever map
        snapshot ``dst`` held is gone or stale, so the next gossip towards
        that ring id must ship a full map, not a delta.
        """
        self.send_windows.reset(dst)
        self._map_synced.pop(dst, None)

    def absorb_shed_control(self, frame: bytes) -> None:
        """A control frame bound for this peer was shed at the inbox.

        Requests and probes are safe to lose (they repeat), but some
        frames carry state that exists nowhere else: a :class:`~repro.
        runtime.wire.CreditGrant` (the granting side already reset its
        owed balance, so losing it would shrink this peer's send window
        to that receiver forever), a :class:`~repro.runtime.wire.
        Handover` (the gracefully leaving sender stops right after
        shipping its backup store), and the buffer-map gossip family
        (under delta encoding gossip is *stateful*: full maps are the
        chain anchors, deltas the links — see ``_UNSHEDDABLE_KIND_BYTES``).
        Those are applied as if delivered (the loopback stand-in for a
        real transport's reliable control channel); everything else just
        stays dropped.  A shed :class:`~repro.runtime.wire.FrameBatch`
        is unwrapped so any one-shot frames *inside* it survive too.
        """
        if frame[4] == wire.WireKind.BATCH:
            for inner in wire.decode(frame)[0].frames:
                self.absorb_shed_control(inner)
            return
        if frame[4:5] in _UNSHEDDABLE_KIND_BYTES:
            msg, _ = wire.decode(frame)
            if isinstance(msg, wire.CreditGrant):
                self._on_credit(msg)
            elif isinstance(msg, wire.BufferMapMsg):
                self._on_buffer_map(msg)
            elif isinstance(msg, wire.BufferMapDelta):
                self._on_map_delta(msg)
            else:
                self._on_handover(msg)

    def _grant_credits(self, src: int) -> None:
        self._emit_grant(src, self._credit_ledger.take(src))

    def _emit_grant(self, src: int, owed: int) -> None:
        if owed > 0:
            self.transport_stats.credits_granted += 1
            self._send(src, wire.CreditGrant(sender=self.peer_id, credits=owed))

    def _flush_credits(self) -> None:
        """Period-boundary flush of sub-batch credit balances.

        Without it, a sender whose last few segments were consumed just
        under the batch threshold would wait for credits that never come.
        """
        for src, owed in self._credit_ledger.drain().items():
            self._emit_grant(src, owed)

    def _dispatch(self, msg: wire.WireMessage) -> None:
        if not self.node.alive:
            return
        handler = _DISPATCH.get(type(msg))
        if handler is not None:
            handler(self, msg)
        # Anything unhandled (PONG liveness confirmations) is ignored.

    def _on_ping(self, msg: wire.Ping) -> None:
        self._send(msg.sender, wire.Pong(sender=self.peer_id, nonce=msg.nonce))
        if msg.sender not in self.node.neighbors:
            return
        # A PING from a partner is a joiner announcing itself (see
        # announce_join) or a delta receiver asking for a resync: reply
        # with a full buffer map so the partner can schedule within this
        # period — the live analogue of the simulator's joiners seeing
        # all partner snapshots in their first round.
        if self.swarm.delta_maps and self._last_gossip is not None:
            # Ship the *gossiped snapshot* (not the live buffer): the
            # next periodic delta is diffed against that snapshot, so
            # anchoring the partner anywhere else would break its chain.
            seq, snapshot = self._last_gossip
            reply = wire.BufferMapMsg.from_buffer_map(
                self.peer_id, self.known_newest, snapshot, seq=seq
            )
            self._map_synced[msg.sender] = seq
        else:
            reply = wire.BufferMapMsg.from_buffer_map(
                self.peer_id, self.known_newest, self.node.buffer_map()
            )
        frame_len = len(wire.encode(reply))
        stats = self.transport_stats
        stats.map_fulls_sent += 1
        stats.gossip_bytes += frame_len
        stats.gossip_bytes_full += frame_len
        self._send(msg.sender, reply)

    def _on_credit(self, msg: wire.CreditGrant) -> None:
        """Returned link credits: ship the pending segments they unblock."""
        for frame, entry in self.send_windows.grant(msg.sender, msg.credits):
            self._ship(msg.sender, frame, entry, data=True)

    def _on_buffer_map(self, msg: wire.BufferMapMsg) -> None:
        self.neighbor_maps[msg.sender] = msg.buffer_map()
        self._neighbor_map_seq[msg.sender] = msg.seq
        self._maps_this_period.add(msg.sender)
        if msg.newest_id > self.known_newest:
            self.known_newest = msg.newest_id

    def _on_map_delta(self, msg: wire.BufferMapDelta) -> None:
        base = self.neighbor_maps.get(msg.sender)
        if base is None or self._neighbor_map_seq.get(msg.sender) != msg.seq - 1:
            # Out of sync: the base snapshot this delta chains off is not
            # the one we hold (a shed gossip frame, a link reset, or we
            # only just met).  Drop the delta and PING the sender — its
            # PING handler replies with a full map that re-anchors the
            # chain within the period.
            self.transport_stats.map_desyncs += 1
            self._send(
                msg.sender, wire.Ping(sender=self.peer_id, nonce=next(self._ping_nonce))
            )
            return
        self.neighbor_maps[msg.sender] = msg.apply(base)
        self._neighbor_map_seq[msg.sender] = msg.seq
        self._maps_this_period.add(msg.sender)
        if msg.newest_id > self.known_newest:
            self.known_newest = msg.newest_id

    def _on_segment_request(self, msg: wire.SegmentRequest) -> None:
        node = self.node
        if msg.trace_id and self.obs.tracing:
            self.obs.span(
                "recv_request", msg.trace_id, self.peer_id, msg.segment_id,
                requester=msg.sender,
            )
        if msg.prefetch and isinstance(node, ContinuStreamingNode):
            available = node.serves_segment(msg.segment_id)
        else:
            available = node.has_segment(msg.segment_id)
        if not available or self.outbound_tokens < 1.0:
            # Saturated uplink (or stale advertisement): refuse explicitly
            # so the requester can reroute within the period, like the
            # simulator's fallback-supplier pass.  A traced request's id
            # rides the refusal back so the journey records the cause.
            self._send(
                msg.sender,
                wire.SegmentNack(
                    sender=self.peer_id,
                    segment_id=msg.segment_id,
                    prefetch=msg.prefetch,
                    trace_id=msg.trace_id,
                ),
            )
            return
        self._send(
            msg.sender,
            wire.SegmentData(
                sender=self.peer_id,
                segment_id=msg.segment_id,
                size_bits=self.config.segment_bits,
                prefetch=msg.prefetch,
                trace_id=msg.trace_id,
            ),
        )

    def _on_segment_data(self, msg: wire.SegmentData) -> None:
        node = self.node
        now = self.swarm.sim_now()
        if msg.trace_id and self.obs.tracing:
            self.obs.span(
                "deliver", msg.trace_id, self.peer_id, msg.segment_id,
                supplier=msg.sender,
            )
            state = self._trace_live.get(msg.segment_id)
            if state is not None and state["tid"] == msg.trace_id:
                state["state"] = "delivered"
                state["t_deliver"] = now
        accepted = node.receive_segment(msg.segment_id, prefetched=msg.prefetch)
        if msg.prefetch and isinstance(node, ContinuStreamingNode):
            deadline = self._prefetch_deadlines.pop(
                msg.segment_id, now + self.config.scheduling_period
            )
            node.record_prefetch(msg.segment_id, arrival_time=now, deadline=deadline)
        elif not msg.prefetch:
            self._delivered[msg.sender] = self._delivered.get(msg.sender, 0) + 1
        if accepted and isinstance(node, ContinuStreamingNode):
            node.consider_backup(self.swarm.segment_payload(msg.segment_id))

    def _on_segment_nack(self, msg: wire.SegmentNack) -> None:
        """Reroute a refused pull to the best untried partner advertising it."""
        node = self.node
        sid = msg.segment_id
        if msg.trace_id and self.obs.tracing:
            self.obs.span("nack", msg.trace_id, self.peer_id, sid, supplier=msg.sender)
            state = self._trace_live.get(sid)
            if state is not None and state["tid"] == msg.trace_id:
                state["state"] = "nacked"
                state["nacks"] = state.get("nacks", 0) + 1
        if msg.prefetch:
            # The located holder refused (budget spent); the next period's
            # prediction re-triggers the lookup if the segment still matters.
            self._prefetch_deadlines.pop(sid, None)
            return
        if node.has_segment(sid):
            return
        tried = self._nack_tried.setdefault(sid, set())
        tried.add(msg.sender)
        partners = set(node.neighbors)
        fallback = None
        best_rate = -1.0
        for nbr, neighbor_map in self.neighbor_maps.items():
            if nbr in tried or nbr not in partners or sid not in neighbor_map.present:
                continue
            rate = node.rate_controller.rate_of(nbr)
            if rate > best_rate:
                best_rate, fallback = rate, nbr
        if fallback is None:
            return
        # The reroute keeps the original journey's trace id, so the whole
        # request → nack → retry → deliver chain reads as one trace.
        if msg.trace_id and self.obs.tracing:
            self.obs.span("reroute", msg.trace_id, self.peer_id, sid, dst=fallback)
        self._send(
            fallback,
            wire.SegmentRequest(
                sender=self.peer_id, segment_id=sid, trace_id=msg.trace_id
            ),
        )

    def _on_handover(self, msg: wire.Handover) -> None:
        node = self.node
        if not isinstance(node, ContinuStreamingNode):
            return
        node.absorb_handover(
            [
                Segment(segment_id=sid, size_bits=msg.segment_bits)
                for sid in msg.segment_ids
            ]
        )

    # --------------------------------------------------------------- DHT routing
    def _closer_hop(self, target_key: int, exclude: Tuple[int, ...]) -> Optional[int]:
        """The routing candidate clockwise-closest to ``target_key``.

        Greedy rule of :class:`~repro.dht.routing.GreedyRouter`: forward only
        to a peer strictly closer than this node; ``None`` means the walk
        terminates here.  Dead peers are skipped — the stand-in for the probe
        a real node would fail.
        """
        size = self.swarm.ring.size
        target = target_key % size
        current_dist = (target - self.peer_id) % size
        if current_dist == 0:
            return None
        best: Optional[int] = None
        best_dist = current_dist
        excluded = set(exclude)
        is_alive = self.swarm.is_alive
        for peer in self.node.peer_table.routing_candidates():
            if peer in excluded or not is_alive(peer):
                continue
            dist = (target - peer) % size
            if dist < best_dist:
                best, best_dist = peer, dist
        return best

    def _on_dht_lookup(self, msg: wire.DhtLookup) -> None:
        self.swarm.overhear(self.node.peer_table, msg.path)
        nxt = self._closer_hop(msg.target_key, msg.path)
        if nxt is not None:
            self._send(
                nxt,
                wire.DhtLookup(
                    origin=msg.origin,
                    target_key=msg.target_key,
                    segment_id=msg.segment_id,
                    path=msg.path + (self.peer_id,),
                ),
            )
            return
        # Terminal node: this peer is responsible for the key — answer the
        # origin directly with whether it can serve the segment and at what
        # rate (the requester picks the fastest holder, Algorithm 2).
        node = self.node
        if isinstance(node, ContinuStreamingNode):
            has_data = node.serves_segment(msg.segment_id)
        else:
            has_data = node.has_segment(msg.segment_id)
        self._send(
            msg.origin,
            wire.DhtResponse(
                responder=self.peer_id,
                origin=msg.origin,
                target_key=msg.target_key,
                segment_id=msg.segment_id,
                has_data=has_data,
                rate=max(0.0, min(node.outbound_rate, self.outbound_tokens)),
                path=msg.path + (self.peer_id,),
            ),
        )

    def _on_dht_response(self, msg: wire.DhtResponse) -> None:
        self.swarm.overhear(self.node.peer_table, msg.path)
        pending = self._dht_pending.get(msg.segment_id)
        if pending is None or pending.decided:
            return
        pending.responses.append(msg)
        if len(pending.responses) >= pending.expected:
            self._decide_lookup(pending)

    def _start_lookup(self, segment_id: int) -> None:
        if segment_id in self._dht_pending or self.node.has_segment(segment_id):
            return
        from repro.dht.hashing import backup_keys

        keys = backup_keys(segment_id, self.config.backup_replicas, self.swarm.id_space)
        pending = _PendingLookup(
            segment_id=segment_id, expected=0, started_tick=self.ticks_run
        )
        launched = 0
        for key in keys:
            nxt = self._closer_hop(key, (self.peer_id,))
            if nxt is None:
                continue  # this peer is itself responsible — nobody to ask
            launched += 1
            self._send(
                nxt,
                wire.DhtLookup(
                    origin=self.peer_id,
                    target_key=key,
                    segment_id=segment_id,
                    path=(self.peer_id,),
                ),
            )
        if launched == 0:
            return
        pending.expected = launched
        self._dht_pending[segment_id] = pending

    def _decide_lookup(self, pending: _PendingLookup) -> None:
        """Pick the fastest responding holder and request the download."""
        pending.decided = True
        self._dht_pending.pop(pending.segment_id, None)
        node = self.node
        if not isinstance(node, ContinuStreamingNode):
            return
        if node.has_segment(pending.segment_id):
            # Delivered by gossip while the lookup was in flight — the
            # paper's "repeated data" case; the urgent ratio shrinks.
            node.stats.prefetch_repeated += 1
            node.urgent_line.record_repeated(1)
            return
        holders = {}
        for resp in pending.responses:
            if resp.has_data and resp.rate > 0.0:
                prev = holders.get(resp.responder)
                if prev is None or resp.rate > prev:
                    holders[resp.responder] = resp.rate
        if not holders:
            return
        supplier = max(holders, key=lambda h: (holders[h], -h))
        now = self.swarm.sim_now()
        self._prefetch_deadlines[pending.segment_id] = node.deadline_of(
            pending.segment_id, now=now
        )
        self._traced_request(supplier, pending.segment_id, "prefetch", prefetch=True)

    def _sweep_lookups(self) -> None:
        """Decide stale lookups with whatever responses arrived (timeout)."""
        for pending in list(self._dht_pending.values()):
            if self.ticks_run - pending.started_tick >= 1:
                self._decide_lookup(pending)

    # ------------------------------------------------------------ the period loop
    #: Fraction of a period after which scheduling runs, leaving link
    #: latency enough headroom for the boundary's buffer-map gossip to
    #: arrive first — the live analogue of the simulator's "scheduler sees
    #: this round's snapshots" (one dissemination hop per period, not two).
    SCHEDULE_PHASE = 0.4

    #: Fraction of a period after which the deadline-rescue pass runs:
    #: segments the player needs within the next two periods that are
    #: advertised by a partner but still missing get re-requested.  The
    #: simulator's synchronous rounds deliver every granted request within
    #: its own round; live transfers land mid-period with jitter, and this
    #: pass is what keeps the tail of that distribution from turning into
    #: deadline misses.
    RESCUE_PHASE = 0.8

    #: Fraction of this peer's partners whose fresh buffer map must have
    #: arrived before the mid-period scheduling pass runs.  On a healthy
    #: swarm the maps cross well before the 40% mark and the pass runs at
    #: its nominal phase; on an overloaded event loop — where all peers'
    #: boundary timers fire spread across real time and gossip drains
    #: slowly — the pass defers (re-checking each :data:`RECHECK_PHASE`)
    #: until the snapshots actually arrived, instead of scheduling
    #: against last period's stale maps.  This arrival-conditioned
    #: phasing is half of the 200-peer bench-anomaly fix (the other half
    #: is the swarm's coherent clock dilation).
    MAP_QUORUM = 0.8

    #: Re-check interval (fraction of a period) while waiting for the map
    #: quorum, and the deferral ceiling in re-checks.  The ceiling keeps
    #: the whole chain inside its own period (0.4 + 5 × 0.1 = 90% of a
    #: period): when the quorum still isn't met there, scheduling runs
    #: with whatever maps arrived — late scheduling beats none, and a
    #: chain that outlives its period is abandoned (a stale chain
    #: double-running against the next period's would double-spend
    #: requests and supplier credits).
    RECHECK_PHASE = 0.1
    MAX_RECHECKS = 5

    async def _period_loop(self) -> None:
        scaled = self.config.scheduling_period * self.swarm.time_scale
        loop = asyncio.get_running_loop()
        tick = self.first_tick
        while not self.stopped:
            # Deadlines come from the swarm's shared clock every
            # iteration, so when the swarm dilates time under overload
            # every peer shifts by the same amount and the overlay stays
            # phase-aligned — drifting apart (each peer re-anchoring its
            # own clock) is what used to collapse continuity at
            # aggressive time scales.
            deadline = self.swarm.wall_deadline_of(tick)
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
                if self.swarm.wall_deadline_of(tick) - loop.time() > 1e-9:
                    # The swarm dilated its schedule while we slept;
                    # re-align to the shifted boundary before ticking.
                    continue
            else:
                self.swarm.note_lateness(-delay)
            if tick > self.first_tick:
                self._period_end(tick - 1)
            self._period_start(tick)
            tick += 1
            self.ticks_run += 1
            # Guarantee a sliver of wall time before the next boundary so
            # an overrunning peer still interleaves with frame delivery
            # instead of ticking back-to-back.
            next_deadline = self.swarm.wall_deadline_of(tick)
            if next_deadline - loop.time() <= 0:
                await asyncio.sleep(0.05 * scaled)

    def _period_end(self, tick: int) -> None:
        """Boundary work closing period ``tick``: playback and feedback."""
        if self.is_source:
            return
        node = self.node
        cfg = self.config
        now = self.swarm.sim_now()
        if isinstance(node, ContinuStreamingNode):
            node.settle_prefetches(now)
        if not node.playback.started:
            node.maybe_start_playback(
                cfg.startup_segments, newest_available_id=self._newest_or_none()
            )
        continuous = node.playback.started and node.can_play_round()
        node.play_round(newest_available_id=self._newest_or_none())
        self.playback_log[tick] = PlaybackSample(
            started=node.playback.started, continuous=continuous
        )
        node.observe_deliveries(self._delivered)
        self._delivered = {}
        if self._trace_live and self.obs.tracing:
            self._settle_traces(now)

    def _settle_traces(self, now: float) -> None:
        """Resolve sampled journeys the playback pointer has passed.

        A traced segment behind ``play_id`` either played (delivered in
        time) or missed its deadline; a miss carries the requester-side
        attribution the journey's spans support: ``credit_starvation``
        (the supplier NACKed and no retry landed), ``delivered_late``
        (the data arrived after the deadline — queueing), or
        ``lost_or_queued`` (requested, never answered: the frame or its
        reply died on the wire or sat in a queue past the period).
        """
        node = self.node
        if not node.playback.started:
            return
        play_id = node.playback.play_id
        obs = self.obs
        for sid in [s for s in self._trace_live if s < play_id]:
            state = self._trace_live.pop(sid)
            tid = state["tid"]
            if state["state"] == "delivered":
                deadline = state.get("deadline")
                t_deliver = state.get("t_deliver", now)
                if deadline is not None and t_deliver > deadline:
                    obs.span(
                        "miss", tid, self.peer_id, sid,
                        cause="delivered_late", late_s=round(t_deliver - deadline, 4),
                    )
                else:
                    obs.span("play", tid, self.peer_id, sid)
            elif state["state"] == "nacked":
                obs.span("miss", tid, self.peer_id, sid, cause="credit_starvation")
            else:
                obs.span("miss", tid, self.peer_id, sid, cause="lost_or_queued")

    def _period_start(self, tick: int) -> None:
        """Boundary work opening period ``tick``: budgets and gossip.

        Data scheduling and urgent-line prediction run a fraction of a
        period later (:meth:`_mid_period`), once the neighbours' boundary
        buffer maps have crossed the wire.
        """
        node = self.node
        cfg = self.config
        self._current_tick = tick
        self._flush_credits()
        if self.is_source:
            for segment in self.swarm.source.generate_until(
                (tick + 1) * cfg.scheduling_period
            ):
                node.buffer.add(segment.segment_id)
            self.known_newest = max(
                self.known_newest, self.swarm.source.newest_segment_id
            )
            self.outbound_tokens = node.outbound_rate * cfg.scheduling_period
            self._timed_gossip()
            return
        node.begin_round()
        self._nack_tried = {}
        self._requested = set()
        self._maps_this_period = set()
        self.outbound_tokens = node.outbound_rate * cfg.scheduling_period
        self._timed_gossip()
        loop = asyncio.get_running_loop()
        scaled = cfg.scheduling_period * self.swarm.time_scale
        remaining = self.swarm.wall_deadline_of(tick + 1) - loop.time()
        self._period_span = max(min(scaled, remaining), 0.05 * scaled)
        loop.call_later(
            self.SCHEDULE_PHASE * self._period_span,
            self._mid_period_when_ready,
            tick,
            0,
        )

    def _map_quorum_met(self) -> bool:
        """Have enough partners' fresh buffer maps arrived to schedule on?"""
        partners = [n for n in self.node.neighbors if self.swarm.is_alive(n)]
        if not partners:
            return True
        fresh = sum(1 for n in partners if n in self._maps_this_period)
        return fresh >= self.MAP_QUORUM * len(partners)

    def _mid_period_when_ready(self, tick: int, rechecks: int) -> None:
        """Run the mid-period pass once this period's gossip has arrived.

        Defers (bounded) while the fresh-map quorum is missing, so an
        overloaded event loop schedules against this period's snapshots
        late rather than against last period's snapshots on time.  The
        rescue pass is chained relative to when scheduling actually ran,
        preserving the schedule → transfer → rescue ordering.  A chain
        whose period has already closed (``tick`` is stale) abandons
        itself — the newer boundary scheduled its own chain, and running
        both would double-spend requests and supplier credits.
        """
        if self.stopped or not self.node.alive or tick != self._current_tick:
            return
        span = self._period_span
        loop = asyncio.get_running_loop()
        if rechecks < self.MAX_RECHECKS and not self._map_quorum_met():
            loop.call_later(
                self.RECHECK_PHASE * span,
                self._mid_period_when_ready,
                tick,
                rechecks + 1,
            )
            return
        self._mid_period()
        loop.call_later(
            (self.RESCUE_PHASE - self.SCHEDULE_PHASE) * span,
            self._rescue_pass,
            tick,
        )

    def _timed_gossip(self) -> None:
        """Boundary gossip, with the phase timed when obs is enabled."""
        obs = self.obs
        if not obs.enabled:
            self._gossip_buffer_map()
            return
        t0 = time.perf_counter()
        self._gossip_buffer_map()
        obs.observe("phase_gossip_s", time.perf_counter() - t0)

    def _mid_period(self) -> None:
        """Mid-period work: Algorithm 1 scheduling + urgent-line lookups."""
        node = self.node
        if self.stopped or not node.alive:
            return
        obs = self.obs
        if obs.enabled:
            t0 = time.perf_counter()
            self._schedule_requests()
            obs.observe("phase_schedule_s", time.perf_counter() - t0)
        else:
            self._schedule_requests()
        self._sweep_lookups()
        if self.swarm.prediction_enabled and isinstance(node, ContinuStreamingNode):
            if self.known_newest >= 0:
                prediction = node.predict_missed(self.known_newest)
                if prediction.triggered:
                    for sid in prediction.missed_segment_ids:
                        self._start_lookup(sid)

    def _rescue_pass(self, tick: int) -> None:
        """Late-period rescue, with the phase timed when obs is enabled."""
        obs = self.obs
        if not obs.enabled:
            self._rescue_body(tick)
            return
        t0 = time.perf_counter()
        self._rescue_body(tick)
        obs.observe("phase_rescue_s", time.perf_counter() - t0)

    def _rescue_body(self, tick: int) -> None:
        """Late-period rescue of imminently needed, partner-held segments."""
        node = self.node
        if self.stopped or not node.alive or not node.playback.started:
            return
        if tick != self._current_tick:
            return  # the period this rescue belonged to has closed
        if self.known_newest < 0:
            return
        spr = node.playback.segments_per_round(self.config.scheduling_period)
        lo = node.playback.play_id
        hi = min(lo + 2 * spr - 1, self.known_newest)
        partners = set(node.neighbors)
        for sid in range(lo, hi + 1):
            if sid in node.buffer or sid in self._requested:
                continue
            best = None
            best_rate = -1.0
            for nbr, neighbor_map in self.neighbor_maps.items():
                if nbr not in partners or sid not in neighbor_map.present:
                    continue
                rate = node.rate_controller.rate_of(nbr)
                if rate > best_rate:
                    best_rate, best = rate, nbr
            if best is None:
                continue
            self._requested.add(sid)
            self._traced_request(best, sid, "rescue")

    def _newest_or_none(self) -> Optional[int]:
        return self.known_newest if self.known_newest >= 0 else None

    def _gossip_buffer_map(self) -> None:
        """Boundary gossip: advertise this peer's buffer map to partners.

        With delta encoding on, partners whose stored snapshot is in sync
        (they received the previous gossip, full or via an unbroken delta
        chain) get a :class:`~repro.runtime.wire.BufferMapDelta` — the
        changed-bit runs against the previous snapshot — while everyone
        else (first contact, reset link, missed gossip) gets the full
        map.  A delta that would not beat the full encoding falls back to
        the full map for every partner.  Either form is ledger-charged as
        a full ``capacity + 20``-bit map (the paper's Section 5.4 cost);
        the physical savings show up in the ``gossip_bytes`` counters.
        """
        targets = self.node.neighbors
        bm = self.node.buffer_map()
        stats = self.transport_stats
        if not self.swarm.delta_maps:
            msg = wire.BufferMapMsg.from_buffer_map(
                self.peer_id, self.known_newest, bm
            )
            frame_len = len(wire.encode(msg))
            count = len(targets)
            stats.map_fulls_sent += count
            stats.gossip_bytes += count * frame_len
            stats.gossip_bytes_full += count * frame_len
            self._broadcast(targets, msg)
            return
        seq = self._gossip_seq = self._gossip_seq + 1
        prev = self._last_gossip
        self._last_gossip = (seq, bm)
        full_msg = wire.BufferMapMsg.from_buffer_map(
            self.peer_id, self.known_newest, bm, seq=seq
        )
        entry = wire.ledger_entry(full_msg)
        full_frame = wire.encode(full_msg)
        delta_frame = None
        prev_seq = -1
        if prev is not None:
            prev_seq, prev_map = prev
            candidate = wire.encode(
                wire.BufferMapDelta.from_maps(
                    self.peer_id, seq, self.known_newest, bm, prev_map
                )
            )
            if len(candidate) < len(full_frame):
                delta_frame = candidate
        synced = self._map_synced
        for dst in targets:
            if delta_frame is not None and synced.get(dst) == prev_seq:
                frame = delta_frame
                stats.map_deltas_sent += 1
            else:
                frame = full_frame
                stats.map_fulls_sent += 1
            stats.gossip_bytes += len(frame)
            stats.gossip_bytes_full += len(full_frame)
            synced[dst] = seq
            self._ship(dst, frame, entry, data=False)

    def _schedule_requests(self) -> None:
        node = self.node
        if self.known_newest < 0:
            return
        partners = set(node.neighbors)
        maps = {
            nbr: bm for nbr, bm in self.neighbor_maps.items() if nbr in partners
        }
        if not maps:
            return
        requests = node.plan_requests(
            maps, self.known_newest, self.config.scheduling_window
        )
        for request in requests:
            self._delivered.setdefault(request.supplier_id, 0)
            self._requested.add(request.segment_id)
            self._traced_request(request.supplier_id, request.segment_id, "schedule")

    def _traced_request(
        self, dst: int, sid: int, cause: str, prefetch: bool = False
    ) -> None:
        """Originate one segment request, sampling it into the trace plane.

        A sampled request opens a journey: the trace id rides the frame
        (and the supplier's reply), the requester tracks the journey's
        state, and the period boundary resolves it to play/miss with a
        cause (:meth:`_settle_traces`).  Sampling is counter-based — no
        RNG draw — so traced runs stay deterministic on the virtual clock.
        """
        tid = 0
        obs = self.obs
        if obs.tracing:
            tid = obs.sample_trace(self.peer_id)
            if tid:
                node = self.node
                deadline = (
                    node.deadline_of(sid, now=self.swarm.sim_now())
                    if isinstance(node, ContinuStreamingNode)
                    else None
                )
                live = self._trace_live
                live[sid] = {"tid": tid, "state": "requested", "deadline": deadline}
                if len(live) > 512:
                    live.pop(min(live))
                obs.span(
                    "request", tid, self.peer_id, sid,
                    dst=dst, cause=cause, deadline=deadline,
                )
        self._send(
            dst,
            wire.SegmentRequest(
                sender=self.peer_id, segment_id=sid, prefetch=prefetch, trace_id=tid
            ),
        )


#: Reader-loop dispatch table, keyed by decoded message type.  PONG is
#: deliberately absent — liveness confirmations need no handling — and
#: FrameBatch never reaches here (the read loop unwraps envelopes).
_DISPATCH = {
    wire.BufferMapMsg: LivePeer._on_buffer_map,
    wire.BufferMapDelta: LivePeer._on_map_delta,
    wire.SegmentRequest: LivePeer._on_segment_request,
    wire.SegmentData: LivePeer._on_segment_data,
    wire.SegmentNack: LivePeer._on_segment_nack,
    wire.DhtLookup: LivePeer._on_dht_lookup,
    wire.DhtResponse: LivePeer._on_dht_response,
    wire.Ping: LivePeer._on_ping,
    wire.Handover: LivePeer._on_handover,
    wire.CreditGrant: LivePeer._on_credit,
}
