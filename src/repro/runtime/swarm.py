"""The live swarm orchestrator: boot, clock, churn, collect, shut down.

:class:`LiveSwarm` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a running swarm of
:class:`~repro.runtime.peer.LivePeer` tasks:

* **construction reuse** — the spec builds the exact same
  :class:`~repro.core.system.StreamingSystem` the simulator would run, so
  topology, bandwidth assignment, latency model, peer tables and DHT
  fingers are identical to the simulated overlay before the first frame
  flies; the swarm then wraps every node in a live peer instead of
  clocking rounds;
* **bounded loopback transport** — frames travel through per-peer
  *bounded* two-lane inboxes (control priority ahead of segment data, see
  :mod:`repro.runtime.transport`) with the pairwise one-way latency of
  :class:`~repro.net.latency.LatencyModel` injected per link (scaled by
  ``time_scale``); segment data is credit-gated per link, a scenario
  ``loss_rate`` drops frames at the transport, and every queue has a
  configurable watermark — no load can grow memory without bound.  The
  delivery path itself is a :class:`~repro.runtime.cluster.links.
  LoopbackLink` — the same ``Link`` protocol the cluster runtime
  implements over TCP sockets, so the swarm's peers cannot tell an
  in-process partner from a remote one (:mod:`repro.runtime.cluster`);
* **live churn** — the scenario's churn schedule runs against the real
  swarm: departing peers are cancelled mid-flight (gracefully leaving ones
  ship their VoD backup over the wire first), joining peers are admitted
  through the Rendezvous Point and boot as new tasks announcing themselves
  with PING/PONG membership traffic;
* **metrics** — per-peer playback samples aggregate into the standard
  :class:`~repro.streaming.playback.ContinuityTracker` and per-peer
  :class:`~repro.net.message.MessageLedger` objects merge into a swarm
  ledger after shutdown, so continuity and overhead come out in exactly
  the simulator's units.

On the wall clock the runtime trades the simulator's determinism for real
concurrency: two runs interleave differently, so results carry wall-clock
noise — the parity harness (:mod:`repro.runtime.parity`) quantifies how
close the two stay on the paper's metrics.  On the **virtual clock**
(``clock="virtual"``, the campaign backend) the same swarm executes as a
deterministic timer sequence with zero wall waiting: identical spec and
seed reproduce identical results, bit for bit.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.net.message import MessageKind, MessageLedger
from repro.obs import NULL_OBS, ObsConfig, ObsRecorder, SloViolation
from repro.runtime.clock import run_on_virtual_clock
from repro.runtime.cluster.links import Link, LoopbackLink
from repro.runtime.peer import LivePeer
from repro.runtime.transport import TransportConfig, TransportSummary
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.playback import ContinuityTracker
from repro.streaming.segment import Segment

#: Default wall seconds per simulated second.  0.1 compresses the paper's
#: 1-second scheduling period to 100 ms — enough headroom for a few
#: hundred peers' worth of frames per period on one event loop.
DEFAULT_TIME_SCALE = 0.1

#: The swarm's clock sources: ``"wall"`` runs on real time (overload and
#: throughput are physical), ``"virtual"`` on the deterministic
#: :class:`~repro.runtime.clock.VirtualClockEventLoop` (campaigns, parity
#: matrices and regression tests — same seed, same result, no waiting).
CLOCKS = ("wall", "virtual")


@dataclass
class RuntimeResult:
    """Everything a live swarm run produces.

    Mirrors :class:`~repro.core.system.SimulationResult` where the metrics
    overlap (continuity, overheads) and adds runtime-only facts (wall time,
    message throughput).
    """

    system: str
    config: SystemConfig
    rounds: int
    time_scale: float
    tracker: ContinuityTracker
    ledger: MessageLedger
    per_peer_ledgers: Dict[int, MessageLedger] = field(default_factory=dict)
    messages_sent: int = 0
    messages_dropped: int = 0
    peers_joined: int = 0
    peers_left: int = 0
    wall_time_s: float = 0.0
    #: Flow-control facts: queue high-watermarks, send stalls, shed frames.
    transport: TransportSummary = field(default_factory=TransportSummary)
    #: Which clock drove the run (``"wall"`` or ``"virtual"``).
    clock: str = "wall"
    #: Wall seconds the swarm stretched its schedule by under overload
    #: (0.0 on the virtual clock — virtual time cannot be overloaded).
    clock_dilation_s: float = 0.0
    #: Number of period boundaries at which the schedule was dilated.
    clock_dilations: int = 0
    #: Worker processes that hosted the swarm (1 = the single-process
    #: runtime; >1 = the cluster runtime, see ``docs/cluster.md``).
    shards: int = 1
    #: Cluster-run facts (socket traffic, per-shard rows, lost shards);
    #: ``None`` for single-process runs.  Plain dict so the result stays
    #: picklable across the campaign's worker processes.
    cluster: Optional[Dict[str, Any]] = None
    #: Physical bytes handed to links (post-batching, post-delta) — the
    #: fast path's savings show up here, never in the paper ledger.
    bytes_on_wire: int = 0
    #: Observability export (metrics series, trace spans, flight-recorder
    #: postmortems — see ``docs/observability.md``); ``None`` unless the
    #: run was started with an :class:`~repro.obs.ObsConfig`.  Plain dict
    #: so the result stays picklable.
    obs: Optional[Dict[str, Any]] = None
    #: Hybrid-fidelity facts (``mode``, ``core_peers``, ``slim_peers``,
    #: ``slim_memory_bytes``, ... — see :mod:`repro.runtime.slim`);
    #: ``None`` for full-fidelity runs.  Plain dict: picklable.
    fidelity: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ metrics
    def continuity_series(self) -> List[float]:
        """Playback continuity per period (the simulator's Figure 5 metric)."""
        return list(self.tracker.continuity)

    def stable_continuity(self, skip_rounds: Optional[int] = None) -> float:
        """Stable-phase playback continuity (mean over the trailing third)."""
        return self.tracker.stable_phase_continuity(skip_rounds)

    def control_overhead(self) -> float:
        """Buffer-map bits / scheduled-data bits, swarm-wide."""
        return self.ledger.control_overhead()

    def prefetch_overhead(self) -> float:
        """(DHT routing + pre-fetched data) / scheduled data, swarm-wide."""
        return self.ledger.prefetch_overhead()

    def segments_delivered(self) -> int:
        """Data segments delivered over the wire (both paths)."""
        return self.ledger.count_of(MessageKind.DATA_SCHEDULED) + self.ledger.count_of(
            MessageKind.DATA_PREFETCH
        )

    def messages_per_wall_second(self) -> float:
        """Wire messages sent per wall-clock second (throughput)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.messages_sent / self.wall_time_s

    def segments_per_wall_second(self) -> float:
        """Data segments delivered per wall-clock second (goodput)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.segments_delivered() / self.wall_time_s


class LiveSwarm:
    """Runs one scenario as a swarm of concurrent asyncio peers.

    Args:
        spec: the declarative workload (size, churn, bandwidth mix, loss).
        rounds: scheduling periods to run; ``None`` uses the spec's.
        time_scale: wall seconds per simulated second.  Smaller runs
            faster but leaves less wall time per period for the event loop
            to move every frame; an overloaded wall-clock swarm now
            *dilates* its schedule coherently instead of letting peers
            drift apart (see :meth:`note_lateness`).
        transport: flow-control knobs (inbox watermark, credit window);
            ``None`` uses the :class:`~repro.runtime.transport.
            TransportConfig` defaults.
        clock: ``"wall"`` (real time) or ``"virtual"`` (deterministic
            virtual time, no wall waiting — the campaign/parity backend).
        obs: observability plane config (:class:`~repro.obs.ObsConfig`);
            ``None`` (the default) installs the no-op recorder, leaves
            ``RuntimeResult.obs`` as ``None`` and keeps the run
            bit-identical to an uninstrumented build.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        rounds: Optional[int] = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        transport: Optional[TransportConfig] = None,
        clock: str = "wall",
        batching: bool = True,
        delta_maps: bool = True,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if clock not in CLOCKS:
            raise ValueError(f"clock must be one of {CLOCKS}, got {clock!r}")
        self.spec = spec
        #: Wire fast-path switches (``--no-batch`` / ``--no-delta``):
        #: coalesce same-turn frames into FrameBatch envelopes, and gossip
        #: buffer maps as changed-bit deltas against the last-acked map.
        self.batching = bool(batching)
        self.delta_maps = bool(delta_maps)
        self.rounds = int(spec.rounds if rounds is None else rounds)
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.time_scale = float(time_scale)
        self.transport = transport if transport is not None else TransportConfig()
        self.clock = clock
        self.system = spec.build_system()
        self.config: SystemConfig = self.system.config
        self.manager = self.system.manager
        self.source = self.system.source
        pipeline_names = {phase.name for phase in self.system.pipeline}
        #: urgent-line prediction + on-demand retrieval run only when the
        #: registered pipeline contains them (protocol-faithful adaptation).
        self.prediction_enabled = "urgent-line-prediction" in pipeline_names
        self.peers: Dict[int, LivePeer] = {}
        self.retired_peers: List[LivePeer] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Physical bytes shipped over links (post-batch/delta encoding).
        self.bytes_on_wire = 0
        self.peers_joined = 0
        self.peers_left = 0
        #: Random stream deciding data-frame loss (``None`` = lossless).
        self.loss_rng: Optional[np.random.Generator] = None
        #: The in-process delivery path (cluster shards add socket links
        #: beside it — see :meth:`link_for`).
        self.loopback = LoopbackLink(self)
        #: Wall/loop time the schedule is anchored at; ``None`` anchors at
        #: :meth:`run_async` entry (the cluster coordinator instead hands
        #: every shard the same agreed start instant).
        self.start_at: Optional[float] = None
        self._start_wall = 0.0
        self._built = False
        #: Coherent overload dilation: wall seconds added to every future
        #: period deadline (swarm-wide, so peers stay phase-aligned).
        self._wall_offset = 0.0
        #: Worst period-boundary lateness peers reported since the last
        #: churn-controller boundary (the dilation signal).
        self._worst_lateness = 0.0
        #: Monotonicity floor for :meth:`sim_now` across dilation steps.
        self._sim_floor = 0.0
        #: Adaptive wall-seconds-per-period multiple (AIMD-controlled).
        self._stretch = 1.0
        self.clock_dilation_s = 0.0
        self.clock_dilations = 0
        #: The observability plane (:mod:`repro.obs`): the no-op
        #: :data:`~repro.obs.NULL_OBS` unless an ``ObsConfig`` was given,
        #: so disabled instrumentation costs one attribute read per site.
        self.obs = ObsRecorder(obs) if obs is not None else NULL_OBS
        self.obs.bind_clock(self.sim_now)
        #: Cached flow matrix (``None`` when flows are off) so the
        #: ``deliver``/link hot paths pay one load + ``is not None`` test.
        self._flows = self.obs.flows
        self._stall_dumped = False
        #: Live telemetry (``docs/observability.md`` → *Live telemetry &
        #: SLOs*): when obs is on and a sink is attached — the cluster
        #: control pipe, a ``--telemetry-out`` writer, a ``HealthEngine``
        #: — :meth:`_emit_telemetry` pushes one frame body per period.
        #: No sink attached ⇒ the telemetry path costs nothing.
        self.telemetry_sink: Optional[Callable[[Dict[str, Any]], None]] = None
        self._telemetry_on = bool(obs is not None and obs.metrics and obs.telemetry)
        self._telemetry_every = obs.telemetry_every if obs is not None else 1
        self._telem_counters: Dict[str, float] = {}
        self._telem_miss_causes: Dict[str, int] = {}
        self._telem_flight_seen = 0

    # ======================================================================= build
    def build(self) -> "LiveSwarm":
        """Construct the overlay (identically to the simulator).  Idempotent."""
        if self._built:
            return self
        self.system.build()
        if self.spec.loss_rate > 0.0:
            self.loss_rng = self.system.streams.get("runtime-loss")
        for node_id, node in self.manager.nodes.items():
            if self.hosts(node_id):
                self.peers[node_id] = LivePeer(node, self, first_tick=0)
        self._built = True
        return self

    def hosts(self, ring_id: int) -> bool:
        """Whether this process runs the live peer for ``ring_id``.

        A single-process swarm hosts everyone; a cluster shard hosts its
        ring-id range and routes the rest over socket links.
        """
        return True

    # ============================================================ peer services
    @property
    def ring(self):
        """The DHT identifier ring (greedy routing distance metric)."""
        return self.manager.ring

    @property
    def id_space(self) -> int:
        """Ring size ``N`` (for the backup-key hashes)."""
        return self.manager.ring.size

    def is_alive(self, node_id: int) -> bool:
        """Liveness oracle peers use in place of a failed-probe timeout."""
        return self.manager.is_alive(node_id)

    def successor_of(self, node_id: int) -> Optional[int]:
        """The counter-clockwise closest alive node (handover target)."""
        return self.manager.counter_clockwise_closest(node_id)

    def overhear(self, peer_table, path) -> None:
        """Every node on a routing path overhears the others on it."""
        self.manager.overhearing.overhear_path(peer_table, path, now=self.sim_now())

    def segment_payload(self, segment_id: int) -> Segment:
        """The segment object offered to a VoD backup store (eq. (5))."""
        segment = self.source.store.get(segment_id)
        if segment is None:
            segment = Segment(segment_id=segment_id, size_bits=self.config.segment_bits)
        return segment

    # ----------------------------------------------------------------- clocking
    def sim_now(self) -> float:
        """Current simulated time in seconds (dilation-adjusted wall time,
        un-scaled; monotone even across dilation steps)."""
        now = (
            asyncio.get_running_loop().time() - self._start_wall - self._wall_offset
        ) / self.time_scale
        if now > self._sim_floor:
            self._sim_floor = now
        return max(0.0, self._sim_floor)

    def wall_deadline_of(self, tick: int) -> float:
        """Wall-clock loop time of period boundary ``tick`` (incl. dilation)."""
        return (
            self._start_wall
            + self._wall_offset
            + tick * self.config.scheduling_period * self.time_scale
        )

    def note_lateness(self, seconds: float) -> None:
        """A peer hit a period boundary ``seconds`` late.

        The worst lateness in each controller period becomes a *coherent*
        schedule dilation: every future deadline (all peers, the churn
        driver, the source) shifts by the same amount, so an overloaded
        event loop stretches wall time uniformly instead of letting peers'
        period clocks drift apart — the drift is what used to collapse
        continuity at aggressive ``time_scale`` settings (the 200-peer
        ``BENCH_runtime.json`` anomaly).
        """
        if seconds > self._worst_lateness:
            self._worst_lateness = seconds

    #: Bounds of the adaptive schedule stretch (wall seconds per nominal
    #: period, as a multiple).  The ceiling caps how slow an overloaded
    #: swarm is allowed to run; past it the run is simply degraded (and
    #: says so in the stall metrics) rather than stretching forever.
    MAX_STRETCH = 16.0

    def _maybe_dilate(self, own_lateness: float) -> None:
        """Adapt the per-period schedule stretch to the observed lateness.

        AIMD on a *persistent* stretch factor: lateness pushes the factor
        up by the missed fraction of a period, slack decays it
        multiplicatively back towards 1.  A one-off offset per late round
        would limit-cycle (stretch, on-time round, no stretch, late
        round, ...); a converged persistent stretch keeps the event loop
        below saturation so message legs stay fast relative to the
        effective period and the within-period request → NACK → reroute
        dynamics complete, like they do on an unloaded clock.
        """
        scaled = self.config.scheduling_period * self.time_scale
        worst = max(self._worst_lateness, own_lateness)
        self._worst_lateness = 0.0
        if worst > 0.1 * scaled:
            # Half-gain additive increase: converges on the minimal
            # sustainable stretch instead of overshooting to a crawl
            # (empirically ~2× better throughput at equal continuity
            # than full-gain, see docs/runtime.md).
            self._stretch = min(self.MAX_STRETCH, self._stretch + 0.5 * worst / scaled)
        else:
            self._stretch = max(1.0, 0.85 * self._stretch)
        extra = (self._stretch - 1.0) * scaled
        if extra > 0.0:
            self._wall_offset += extra
            self.clock_dilation_s += extra
            self.clock_dilations += 1
            obs = self.obs
            if obs.enabled:
                obs.flight(
                    "dilate", stretch=round(self._stretch, 3), added_s=round(extra, 4)
                )
                if self._stretch >= self.MAX_STRETCH and not self._stall_dumped:
                    # Stall detection: the AIMD controller pinned at its
                    # ceiling means the loop cannot keep the schedule.
                    self._stall_dumped = True
                    obs.postmortem(
                        f"schedule stretch hit MAX_STRETCH={self.MAX_STRETCH} "
                        "(overload stall)"
                    )

    # ---------------------------------------------------------------- transport
    def deliver(self, src: int, dst: int, frame: bytes, data: bool = False) -> None:
        """Ship one encoded frame from ``src`` to ``dst`` over its link.

        Frames to departed or unknown peers vanish (the network does not
        know who died); a configured ``loss_rate`` drops *data* frames at
        random — the live analogue of the scenario engine's lossy-network
        model, which throttles data throughput and never loses control
        traffic (:class:`~repro.scenarios.phases.LossyNetworkPhase`), so
        the two engines stay parity-comparable on lossy scenarios.
        ``data`` selects the receiver's inbox lane: segment data queues
        behind the bounded data lane, everything else rides the control
        priority lane (see :mod:`repro.runtime.transport`).  Delay/loss
        injection lives in :class:`~repro.runtime.cluster.links.
        LoopbackLink`; a cluster shard substitutes a socket link for
        destinations hosted elsewhere.
        """
        flows = self._flows
        if flows is not None:
            flows.record(src, dst, len(frame), data)
        self.messages_sent += 1
        self.link_for(dst).send(src, dst, frame, data)

    def link_for(self, dst: int) -> Link:
        """The link that carries frames towards ``dst`` (loopback here)."""
        return self.loopback

    def shard_of(self, ring_id: int) -> int:
        """Which shard hosts ``ring_id`` (a single-process swarm is shard 0).

        Flow-matrix accounting keys the physical shard-pair matrix on
        this; ``ShardSwarm`` overrides it with the real ring partition.
        """
        return 0

    def hop_of(self, dst: int) -> Optional[int]:
        """Remote shard a frame towards ``dst`` routes through, or ``None``.

        Observability-only (the ``via_shard`` tag on trace ship spans);
        single-process swarms deliver everything locally.
        """
        return None

    # ======================================================================== run
    def run(self) -> RuntimeResult:
        """Build, run to completion and return the collected result.

        On the ``"virtual"`` clock the run executes on a deterministic
        virtual-time event loop — no wall waiting, bit-identical results
        for identical specs and seeds.
        """
        if self.clock == "virtual":
            return run_on_virtual_clock(self.run_async())
        return asyncio.run(self.run_async())

    async def run_async(self) -> RuntimeResult:
        """Boot every peer, drive churn, stop after ``rounds`` periods."""
        self.build()
        loop = asyncio.get_running_loop()
        wall_start = time.perf_counter()
        self._start_wall = loop.time() if self.start_at is None else self.start_at
        for peer in self.peers.values():
            peer.start()
        # The lag probe only makes sense on the wall clock (virtual time
        # cannot lag), and its extra timers would perturb the virtual
        # loop's deterministic callback order — obs-enabled virtual runs
        # must stay identical to disabled ones.
        probe = (
            loop.create_task(self._obs_lag_probe())
            if self.obs.enabled and self.clock != "virtual"
            else None
        )
        try:
            await self._churn_loop()
        except SloViolation as exc:
            # The HealthEngine already recorded the breach postmortem;
            # attach this swarm's obs export so the CLI can print it.
            if exc.obs is None:
                exc.obs = self.obs.export()
            raise
        except Exception as exc:
            # Crash postmortem: dump the flight ring before unwinding.
            self.obs.postmortem(f"unhandled exception: {exc!r}")
            raise
        finally:
            if probe is not None:
                probe.cancel()
                try:
                    await probe
                except asyncio.CancelledError:
                    pass
            await self._shutdown()
        wall_time = time.perf_counter() - wall_start
        return self._collect(wall_time)

    async def _obs_lag_probe(self) -> None:
        """Sample event-loop lag: how late a twice-per-period timer fires."""
        loop = asyncio.get_running_loop()
        interval = 0.5 * self.config.scheduling_period * self.time_scale
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag = loop.time() - before - interval
            self.obs.observe("event_loop_lag_s", max(0.0, lag))

    async def _churn_loop(self) -> None:
        """Fire the churn schedule at every period boundary, then stop.

        Runs slightly after each boundary (half a period, scaled) so the
        peers' own period ticks — playback, gossip — happen first, matching
        the simulator's end-of-period churn phase ordering.
        """
        scaled = self.config.scheduling_period * self.time_scale
        churn = self.manager.churn
        rng = self.system.streams.get("runtime-churn")
        for round_index in range(self.rounds):
            deadline = self.wall_deadline_of(round_index + 1) + 0.5 * scaled
            delay = deadline - asyncio.get_running_loop().time()
            if delay > 0:
                await asyncio.sleep(delay)
            # A busy loop wakes the controller late; fold the worst
            # observed lateness (peers' and our own) into a coherent
            # schedule dilation before driving this boundary's churn.  A
            # cluster shard first exchanges its lateness with the other
            # shards so the dilation stays coherent *across* processes.
            await self._boundary_sync(
                round_index, max(0.0, asyncio.get_running_loop().time() - deadline)
            )
            if self.obs.enabled:
                self._obs_snapshot(round_index)
                if (
                    self.telemetry_sink is not None
                    and self._telemetry_on
                    and round_index % self._telemetry_every == 0
                ):
                    self._emit_telemetry(round_index)
            if churn.is_static or round_index == self.rounds - 1:
                continue
            event = churn.step(
                round_index, self.manager.alive_node_ids(), self.system.streams.get("churn")
            )
            for node_id in event.leaving:
                await self._retire_peer(node_id, rng)
            for _ in event.joining:
                self._admit_peer(rng, round_index + 1)
            if event.leaving or event.joining:
                self.manager.repair_neighbors()
        await self._await_completion(scaled)

    async def _await_completion(self, scaled: float) -> None:
        """Wait for every live peer to finish its ``rounds`` periods.

        Peers read deadlines from the swarm's shared (possibly dilated)
        clock, but a peer that woke just before a dilation step can trail
        the controller by up to a period; shutting down on the
        controller's schedule alone would truncate its samples.  Bounded
        by twice the *dilated* run length so a wedged peer cannot hang
        the swarm.
        """
        budget = 2.0 * (self.rounds * scaled + self.clock_dilation_s)
        waited = 0.0
        step = max(0.25 * scaled, 0.001)
        while waited < budget:
            lagging = [
                peer
                for peer in self.peers.values()
                if peer.node.alive and peer.first_tick + peer.ticks_run <= self.rounds
            ]
            if not lagging:
                return
            await asyncio.sleep(step)
            waited += step

    def _obs_snapshot(self, round_index: int) -> None:
        """Sample swarm-wide gauges into the per-period metric series."""
        inbox_total = inbox_max = credit_pending = 0
        for peer in self.peers.values():
            depth = len(peer.inbox)
            inbox_total += depth
            if depth > inbox_max:
                inbox_max = depth
            credit_pending += peer.send_windows.pending_count()
        metrics = self.obs.metrics
        metrics.set_gauge("inbox_depth_total", inbox_total)
        metrics.set_gauge("inbox_depth_max", inbox_max)
        metrics.set_gauge("credit_pending_total", credit_pending)
        metrics.set_gauge("dilation_stretch", self._stretch)
        metrics.set_gauge("clock_dilation_s", self.clock_dilation_s)
        metrics.set_gauge("peers_live", self._peers_live())
        metrics.set_gauge("messages_sent", self.messages_sent)
        metrics.set_gauge("bytes_on_wire", self.bytes_on_wire)
        topo = self.obs.topo
        if topo is not None:
            snap = topo.observe(self, round_index)
            # Additive pieces ride the gauge series (gauges sum across
            # shards in merge_metrics, so only counts go in — ratios are
            # recomputed wherever they are displayed).
            metrics.set_gauge("topo_partner_pairs", snap["partner_pairs"])
            metrics.set_gauge("topo_covered_pairs", snap["covered_pairs"])
            metrics.set_gauge("topo_finger_alive", snap["finger_alive"])
            metrics.set_gauge("topo_finger_total", snap["finger_total"])
        self.obs.snapshot(round_index)

    def _emit_telemetry(self, round_index: int) -> None:
        """Build one telemetry frame body and hand it to the attached sink.

        The body is the :class:`~repro.runtime.wire.TelemetryFrame`
        payload schema: this period's continuity sample over hosted
        peers, current gauge levels, counter *deltas* since the last
        frame, new miss causes and new flight-recorder events.  Pure
        observation — nothing here touches protocol state, so an
        obs-enabled virtual run with a sink attached stays deterministic.
        """
        playing, total = self._period_playback_counts(round_index)
        metrics = self.obs.metrics
        counters: Dict[str, float] = {}
        for name, value in metrics.counters.items():
            delta = value - self._telem_counters.get(name, 0.0)
            if delta:
                counters[name] = delta
            self._telem_counters[name] = value
        miss_causes: Dict[str, int] = {}
        for cause, count in self.obs.miss_causes.items():
            delta = count - self._telem_miss_causes.get(cause, 0)
            if delta:
                miss_causes[cause] = delta
            self._telem_miss_causes[cause] = count
        self._telem_flight_seen, flight = self.obs.flight_since(self._telem_flight_seen)
        body: Dict[str, Any] = {
            # Single-process swarms never bind a shard id; they report as
            # shard 0 so the HealthEngine (which rejects id-less frames,
            # see repro.obs.health) still accepts their frames.
            "shard": 0 if self.obs.shard is None else self.obs.shard,
            "period": round_index,
            "t": self.sim_now(),
            "playing": playing,
            "total": total,
            "continuity": (playing / total) if total else 1.0,
            "peers_live": self._peers_live(),
            "gauges": dict(metrics.gauges),
            "counters": counters,
            "miss_causes": miss_causes,
            "flight": flight,
        }
        flows = self._flows
        if flows is not None:
            pair_delta = flows.pair_delta()
            if pair_delta:
                body["flows"] = pair_delta
        topo = self.obs.topo
        if topo is not None:
            topo_summary = topo.telemetry()
            if topo_summary is not None:
                body["topo"] = topo_summary
        extras = self._telemetry_extras()
        if extras:
            body.update(extras)
        self.telemetry_sink(body)

    def _telemetry_extras(self) -> Dict[str, Any]:
        """Extra telemetry body fields: cluster shards add socket stats."""
        return {}

    async def _boundary_sync(self, round_index: int, own_lateness: float) -> None:
        """Fold this boundary's lateness into the schedule dilation.

        The single-process swarm dilates on its own observations; a
        cluster shard overrides this to exchange lateness with the other
        shards through the coordinator first, so every shard applies the
        same (maximal) dilation at the same boundary and the overlay stays
        phase-aligned across processes.
        """
        self._maybe_dilate(own_lateness)

    async def _retire_peer(self, node_id: int, rng: np.random.Generator) -> None:
        node = self.manager.nodes.get(node_id)
        if node is None or not node.alive:
            return
        # The graceful/abrupt draw happens on every shard (the churn
        # streams must stay aligned across the cluster's replicated churn
        # drivers) even though only the hosting shard acts on the peer.
        graceful = rng.random() >= self.config.abrupt_leave_fraction
        peer = self.peers.get(node_id)
        if peer is not None and graceful:
            peer.send_handover()
        # The wire handover above replaces the manager's in-memory one.
        self.manager.remove_node(node_id, rng, graceful=graceful, handover=False)
        if peer is not None:
            await peer.stop()
            self.retired_peers.append(self.peers.pop(node_id))
            self.peers_left += 1
            self.obs.flight("peer_left", peer=node_id, graceful=graceful)
        # Dead links keep no flow-control state: credits in flight to the
        # departed peer are unrecoverable, and a joiner admitted later
        # under a recycled ring id must start with a full window.
        for survivor in self.peers.values():
            survivor.reset_partner_link(node_id)

    def _admit_peer(self, rng: np.random.Generator, first_tick: int) -> None:
        ring_id = self.manager.admit_node(rng, now=self.sim_now())
        if not self.hosts(ring_id):
            return
        peer = LivePeer(self.manager.nodes[ring_id], self, first_tick=first_tick)
        self.peers[ring_id] = peer
        peer.start()
        peer.announce_join()
        self.peers_joined += 1
        self.obs.flight("peer_joined", peer=ring_id)

    async def _shutdown(self) -> None:
        """Graceful shutdown: stop every task and wait for it to unwind."""
        await asyncio.gather(*(peer.stop() for peer in self.peers.values()))

    # ================================================================== collect
    def _period_playback_counts(self, tick: int) -> Tuple[int, int]:
        """``(playing, total)`` for one period over every hosted peer.

        The single aggregation point telemetry frames, playback samples
        and the merged tracker all flow through — a hybrid swarm overrides
        this to fold its slim tier in, so every consumer (health engine,
        cockpit, campaign stores) sees one population.
        """
        playing = total = 0
        for peer in list(self.peers.values()) + self.retired_peers:
            if peer.is_source:
                continue
            sample = peer.playback_log.get(tick)
            if sample is None:
                continue
            total += 1
            if sample.started and sample.continuous:
                playing += 1
        return playing, total

    def _peers_live(self) -> int:
        """Currently-live peer count (hybrid swarms add their slim tier)."""
        return len(self.peers)

    def _fidelity_export(self) -> Optional[Dict[str, Any]]:
        """Hybrid-tier facts for ``RuntimeResult.fidelity`` (``None`` here)."""
        return None

    def playback_samples(self) -> List[Tuple[int, int, int]]:
        """Per-tick ``(tick, playing, total)`` over every hosted peer.

        Untrimmed (every tick of the run appears): the cluster coordinator
        sums these across shards before applying the trailing-empty trim,
        so a shard that finished early cannot truncate the merged series.
        """
        return [
            (tick, *self._period_playback_counts(tick)) for tick in range(self.rounds)
        ]

    def _collect(self, wall_time: float) -> RuntimeResult:
        everyone = list(self.peers.values()) + self.retired_peers
        tracker = ContinuityTracker(round_duration=self.config.scheduling_period)
        samples = self.playback_samples()
        # Trailing ticks nobody sampled (a timed-out shutdown cut them off)
        # are dropped rather than recorded as vacuous perfect rounds.
        while samples and samples[-1][2] == 0 and len(samples) > 1:
            samples.pop()
        for tick, playing, total in samples:
            tracker.record_round(
                (tick + 1) * self.config.scheduling_period, playing, total
            )
        per_peer = {peer.peer_id: peer.ledger.snapshot() for peer in everyone}
        ledger = MessageLedger.merged(list(per_peer.values()))
        transport = TransportSummary.aggregate(
            peer.transport_stats for peer in everyone
        )
        return RuntimeResult(
            system=self.spec.system,
            config=self.config,
            rounds=self.rounds,
            time_scale=self.time_scale,
            tracker=tracker,
            ledger=ledger,
            per_peer_ledgers=per_peer,
            messages_sent=self.messages_sent,
            messages_dropped=self.messages_dropped,
            peers_joined=self.peers_joined,
            peers_left=self.peers_left,
            wall_time_s=wall_time,
            transport=transport,
            clock=self.clock,
            clock_dilation_s=self.clock_dilation_s,
            clock_dilations=self.clock_dilations,
            bytes_on_wire=self.bytes_on_wire,
            obs=self.obs.export(),
            fidelity=self._fidelity_export(),
        )


def run_swarm(
    spec: ScenarioSpec,
    rounds: Optional[int] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    transport: Optional[TransportConfig] = None,
    clock: str = "wall",
    batching: bool = True,
    delta_maps: bool = True,
    obs: Optional[ObsConfig] = None,
    telemetry_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> RuntimeResult:
    """Convenience wrapper: build and run one live swarm to completion.

    ``telemetry_sink`` receives one frame body per period when obs is on
    (see :meth:`LiveSwarm._emit_telemetry`); a sink that raises
    :class:`~repro.obs.SloViolation` aborts the run early.
    """
    swarm = LiveSwarm(
        spec,
        rounds=rounds,
        time_scale=time_scale,
        transport=transport,
        clock=clock,
        batching=batching,
        delta_maps=delta_maps,
        obs=obs,
    )
    if telemetry_sink is not None:
        swarm.telemetry_sink = telemetry_sink
    return swarm.run()
