"""The live swarm orchestrator: boot, clock, churn, collect, shut down.

:class:`LiveSwarm` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a running swarm of
:class:`~repro.runtime.peer.LivePeer` tasks:

* **construction reuse** — the spec builds the exact same
  :class:`~repro.core.system.StreamingSystem` the simulator would run, so
  topology, bandwidth assignment, latency model, peer tables and DHT
  fingers are identical to the simulated overlay before the first frame
  flies; the swarm then wraps every node in a live peer instead of
  clocking rounds;
* **loopback transport** — frames travel through per-peer inboxes with the
  pairwise one-way latency of :class:`~repro.net.latency.LatencyModel`
  injected per link (scaled by ``time_scale``, which compresses simulated
  seconds into wall seconds); a scenario ``loss_rate`` drops frames at the
  transport, the live analogue of the simulator's throughput loss model;
* **live churn** — the scenario's churn schedule runs against the real
  swarm: departing peers are cancelled mid-flight (gracefully leaving ones
  ship their VoD backup over the wire first), joining peers are admitted
  through the Rendezvous Point and boot as new tasks announcing themselves
  with PING/PONG membership traffic;
* **metrics** — per-peer playback samples aggregate into the standard
  :class:`~repro.streaming.playback.ContinuityTracker` and per-peer
  :class:`~repro.net.message.MessageLedger` objects merge into a swarm
  ledger after shutdown, so continuity and overhead come out in exactly
  the simulator's units.

The runtime trades the simulator's determinism for real concurrency: two
runs interleave differently, so results carry wall-clock noise — the
parity harness (:mod:`repro.runtime.parity`) quantifies how close the two
stay on the paper's metrics.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.net.message import MessageKind, MessageLedger
from repro.runtime.peer import LivePeer
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.playback import ContinuityTracker
from repro.streaming.segment import Segment

#: Default wall seconds per simulated second.  0.1 compresses the paper's
#: 1-second scheduling period to 100 ms — enough headroom for a few
#: hundred peers' worth of frames per period on one event loop.
DEFAULT_TIME_SCALE = 0.1


@dataclass
class RuntimeResult:
    """Everything a live swarm run produces.

    Mirrors :class:`~repro.core.system.SimulationResult` where the metrics
    overlap (continuity, overheads) and adds runtime-only facts (wall time,
    message throughput).
    """

    system: str
    config: SystemConfig
    rounds: int
    time_scale: float
    tracker: ContinuityTracker
    ledger: MessageLedger
    per_peer_ledgers: Dict[int, MessageLedger] = field(default_factory=dict)
    messages_sent: int = 0
    messages_dropped: int = 0
    peers_joined: int = 0
    peers_left: int = 0
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------ metrics
    def continuity_series(self) -> List[float]:
        """Playback continuity per period (the simulator's Figure 5 metric)."""
        return list(self.tracker.continuity)

    def stable_continuity(self, skip_rounds: Optional[int] = None) -> float:
        """Stable-phase playback continuity (mean over the trailing third)."""
        return self.tracker.stable_phase_continuity(skip_rounds)

    def control_overhead(self) -> float:
        """Buffer-map bits / scheduled-data bits, swarm-wide."""
        return self.ledger.control_overhead()

    def prefetch_overhead(self) -> float:
        """(DHT routing + pre-fetched data) / scheduled data, swarm-wide."""
        return self.ledger.prefetch_overhead()

    def segments_delivered(self) -> int:
        """Data segments delivered over the wire (both paths)."""
        return self.ledger.count_of(MessageKind.DATA_SCHEDULED) + self.ledger.count_of(
            MessageKind.DATA_PREFETCH
        )

    def messages_per_wall_second(self) -> float:
        """Wire messages sent per wall-clock second (throughput)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.messages_sent / self.wall_time_s

    def segments_per_wall_second(self) -> float:
        """Data segments delivered per wall-clock second (goodput)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.segments_delivered() / self.wall_time_s


class LiveSwarm:
    """Runs one scenario as a swarm of concurrent asyncio peers.

    Args:
        spec: the declarative workload (size, churn, bandwidth mix, loss).
        rounds: scheduling periods to run; ``None`` uses the spec's.
        time_scale: wall seconds per simulated second.  Smaller runs
            faster but leaves less wall time per period for the event loop
            to move every frame; raise it if a large swarm's periods
            overrun (continuity degrades when they do).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        rounds: Optional[int] = None,
        time_scale: float = DEFAULT_TIME_SCALE,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.spec = spec
        self.rounds = int(spec.rounds if rounds is None else rounds)
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.time_scale = float(time_scale)
        self.system = spec.build_system()
        self.config: SystemConfig = self.system.config
        self.manager = self.system.manager
        self.source = self.system.source
        pipeline_names = {phase.name for phase in self.system.pipeline}
        #: urgent-line prediction + on-demand retrieval run only when the
        #: registered pipeline contains them (protocol-faithful adaptation).
        self.prediction_enabled = "urgent-line-prediction" in pipeline_names
        self.peers: Dict[int, LivePeer] = {}
        self.retired_peers: List[LivePeer] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        self.peers_joined = 0
        self.peers_left = 0
        self._loss_rng: Optional[np.random.Generator] = None
        self._start_wall = 0.0
        self._built = False

    # ======================================================================= build
    def build(self) -> "LiveSwarm":
        """Construct the overlay (identically to the simulator).  Idempotent."""
        if self._built:
            return self
        self.system.build()
        if self.spec.loss_rate > 0.0:
            self._loss_rng = self.system.streams.get("runtime-loss")
        for node_id, node in self.manager.nodes.items():
            self.peers[node_id] = LivePeer(node, self, first_tick=0)
        self._built = True
        return self

    # ============================================================ peer services
    @property
    def ring(self):
        """The DHT identifier ring (greedy routing distance metric)."""
        return self.manager.ring

    @property
    def id_space(self) -> int:
        """Ring size ``N`` (for the backup-key hashes)."""
        return self.manager.ring.size

    def is_alive(self, node_id: int) -> bool:
        """Liveness oracle peers use in place of a failed-probe timeout."""
        return self.manager.is_alive(node_id)

    def successor_of(self, node_id: int) -> Optional[int]:
        """The counter-clockwise closest alive node (handover target)."""
        return self.manager.counter_clockwise_closest(node_id)

    def overhear(self, peer_table, path) -> None:
        """Every node on a routing path overhears the others on it."""
        self.manager.overhearing.overhear_path(peer_table, path, now=self.sim_now())

    def segment_payload(self, segment_id: int) -> Segment:
        """The segment object offered to a VoD backup store (eq. (5))."""
        segment = self.source.store.get(segment_id)
        if segment is None:
            segment = Segment(segment_id=segment_id, size_bits=self.config.segment_bits)
        return segment

    # ----------------------------------------------------------------- clocking
    def sim_now(self) -> float:
        """Current simulated time in seconds (wall time un-scaled)."""
        return max(0.0, (asyncio.get_running_loop().time() - self._start_wall) / self.time_scale)

    def wall_deadline_of(self, tick: int) -> float:
        """Wall-clock loop time of period boundary ``tick``."""
        return self._start_wall + tick * self.config.scheduling_period * self.time_scale

    # ---------------------------------------------------------------- transport
    def deliver(self, src: int, dst: int, frame: bytes) -> None:
        """Ship one encoded frame from ``src`` to ``dst`` with link latency.

        Frames to departed or unknown peers vanish (the network does not
        know who died); a configured ``loss_rate`` drops frames at random,
        the live analogue of the scenario engine's lossy-network model.
        """
        self.messages_sent += 1
        if self._loss_rng is not None and self._loss_rng.random() < self.spec.loss_rate:
            self.messages_dropped += 1
            return
        peer = self.peers.get(dst)
        if peer is None or peer.stopped or not peer.node.alive:
            self.messages_dropped += 1
            return
        delay = self.manager.latency_ms(src, dst) / 1000.0 * self.time_scale
        loop = asyncio.get_running_loop()
        loop.call_later(delay, self._deliver_now, dst, frame)

    def _deliver_now(self, dst: int, frame: bytes) -> None:
        peer = self.peers.get(dst)
        if peer is None or peer.stopped or not peer.node.alive:
            self.messages_dropped += 1
            return
        peer.inbox.put_nowait(frame)

    # ======================================================================== run
    def run(self) -> RuntimeResult:
        """Build, run to completion and return the collected result."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> RuntimeResult:
        """Boot every peer, drive churn, stop after ``rounds`` periods."""
        self.build()
        loop = asyncio.get_running_loop()
        wall_start = time.perf_counter()
        self._start_wall = loop.time()
        for peer in self.peers.values():
            peer.start()
        try:
            await self._churn_loop()
        finally:
            await self._shutdown()
        wall_time = time.perf_counter() - wall_start
        return self._collect(wall_time)

    async def _churn_loop(self) -> None:
        """Fire the churn schedule at every period boundary, then stop.

        Runs slightly after each boundary (half a period, scaled) so the
        peers' own period ticks — playback, gossip — happen first, matching
        the simulator's end-of-period churn phase ordering.
        """
        scaled = self.config.scheduling_period * self.time_scale
        churn = self.manager.churn
        rng = self.system.streams.get("runtime-churn")
        for round_index in range(self.rounds):
            deadline = self.wall_deadline_of(round_index + 1) + 0.5 * scaled
            delay = deadline - asyncio.get_running_loop().time()
            if delay > 0:
                await asyncio.sleep(delay)
            if churn.is_static or round_index == self.rounds - 1:
                continue
            event = churn.step(
                round_index, self.manager.alive_node_ids(), self.system.streams.get("churn")
            )
            for node_id in event.leaving:
                await self._retire_peer(node_id, rng)
            for _ in event.joining:
                self._admit_peer(rng, round_index + 1)
            if event.leaving or event.joining:
                self.manager.repair_neighbors()
        await self._await_completion(scaled)

    async def _await_completion(self, scaled: float) -> None:
        """Wait for every live peer to finish its ``rounds`` periods.

        Peers that overran re-anchor their period clocks, so they may trail
        the controller's wall schedule; shutting down on wall time alone
        would truncate their samples.  Bounded by twice the nominal run
        length so a wedged peer cannot hang the swarm.
        """
        budget = 2.0 * self.rounds * scaled
        waited = 0.0
        step = max(0.25 * scaled, 0.001)
        while waited < budget:
            lagging = [
                peer
                for peer in self.peers.values()
                if peer.node.alive and peer.first_tick + peer.ticks_run <= self.rounds
            ]
            if not lagging:
                return
            await asyncio.sleep(step)
            waited += step

    async def _retire_peer(self, node_id: int, rng: np.random.Generator) -> None:
        peer = self.peers.get(node_id)
        if peer is None or not peer.node.alive:
            return
        graceful = rng.random() >= self.config.abrupt_leave_fraction
        if graceful:
            peer.send_handover()
        # The wire handover above replaces the manager's in-memory one.
        self.manager.remove_node(node_id, rng, graceful=graceful, handover=False)
        await peer.stop()
        self.retired_peers.append(self.peers.pop(node_id))
        self.peers_left += 1

    def _admit_peer(self, rng: np.random.Generator, first_tick: int) -> None:
        ring_id = self.manager.admit_node(rng, now=self.sim_now())
        peer = LivePeer(self.manager.nodes[ring_id], self, first_tick=first_tick)
        self.peers[ring_id] = peer
        peer.start()
        peer.announce_join()
        self.peers_joined += 1

    async def _shutdown(self) -> None:
        """Graceful shutdown: stop every task and wait for it to unwind."""
        await asyncio.gather(*(peer.stop() for peer in self.peers.values()))

    # ================================================================== collect
    def _collect(self, wall_time: float) -> RuntimeResult:
        everyone = list(self.peers.values()) + self.retired_peers
        tracker = ContinuityTracker(round_duration=self.config.scheduling_period)
        samples: List[tuple] = []
        for tick in range(self.rounds):
            playing = total = 0
            for peer in everyone:
                if peer.is_source:
                    continue
                sample = peer.playback_log.get(tick)
                if sample is None:
                    continue
                total += 1
                if sample.started and sample.continuous:
                    playing += 1
            samples.append((tick, playing, total))
        # Trailing ticks nobody sampled (a timed-out shutdown cut them off)
        # are dropped rather than recorded as vacuous perfect rounds.
        while samples and samples[-1][2] == 0 and len(samples) > 1:
            samples.pop()
        for tick, playing, total in samples:
            tracker.record_round(
                (tick + 1) * self.config.scheduling_period, playing, total
            )
        per_peer = {peer.peer_id: peer.ledger.snapshot() for peer in everyone}
        ledger = MessageLedger.merged(list(per_peer.values()))
        return RuntimeResult(
            system=self.spec.system,
            config=self.config,
            rounds=self.rounds,
            time_scale=self.time_scale,
            tracker=tracker,
            ledger=ledger,
            per_peer_ledgers=per_peer,
            messages_sent=self.messages_sent,
            messages_dropped=self.messages_dropped,
            peers_joined=self.peers_joined,
            peers_left=self.peers_left,
            wall_time_s=wall_time,
        )


def run_swarm(
    spec: ScenarioSpec,
    rounds: Optional[int] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
) -> RuntimeResult:
    """Convenience wrapper: build and run one live swarm to completion."""
    return LiveSwarm(spec, rounds=rounds, time_scale=time_scale).run()
