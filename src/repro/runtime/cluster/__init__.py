"""The cluster runtime: sharded multi-process swarms over real TCP.

One :class:`~repro.runtime.swarm.LiveSwarm`'s peers, hosted as ring-range
shards across worker processes — each shard its own asyncio event loop —
with cross-shard links carried over localhost TCP sockets speaking the
existing length-prefixed :mod:`repro.runtime.wire` codec (plus the
shard-handshake and routed-frame envelopes, kinds 11/12).  A peer never
knows whether its partner is local or remote:

* :mod:`~repro.runtime.cluster.links` — the :class:`Link` protocol with
  its two interchangeable implementations: the in-process
  :class:`LoopbackLink` (the single home of delay/loss injection, used
  by the plain runtime too) and the reconnecting, credit-refunding
  :class:`SocketLink`;
* :mod:`~repro.runtime.cluster.shard` — :class:`ShardSwarm`, a LiveSwarm
  hosting one ring range and routing the rest;
* :mod:`~repro.runtime.cluster.worker` — the shard worker process;
* :mod:`~repro.runtime.cluster.coordinator` —
  :class:`ClusterCoordinator`, the control plane (spawn, start/stop
  barriers, the per-boundary lateness relay for coherent cross-process
  overload dilation, result merging) and the :func:`run_cluster`
  convenience entry point.

See ``docs/cluster.md`` for the shard topology, socket framing, the
coordinator lifecycle and the failure semantics.
"""

from repro.runtime.cluster.links import (
    Link,
    LinkConfig,
    LoopbackLink,
    SocketLink,
    SocketLinkStats,
)

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "Link",
    "LinkConfig",
    "LoopbackLink",
    "ShardResult",
    "ShardSwarm",
    "ShardWorker",
    "SocketLink",
    "SocketLinkStats",
    "adaptive_time_scale",
    "merge_shard_results",
    "run_cluster",
    "shard_of",
]

#: Names resolved lazily: the coordinator/shard modules import the swarm,
#: which imports this package for the links — eager imports here would
#: close that cycle during ``repro.runtime.swarm``'s own import.
_LAZY = {
    "ClusterConfig": "repro.runtime.cluster.coordinator",
    "ClusterCoordinator": "repro.runtime.cluster.coordinator",
    "adaptive_time_scale": "repro.runtime.cluster.coordinator",
    "merge_shard_results": "repro.runtime.cluster.coordinator",
    "run_cluster": "repro.runtime.cluster.coordinator",
    "ShardResult": "repro.runtime.cluster.worker",
    "ShardWorker": "repro.runtime.cluster.worker",
    "ShardSwarm": "repro.runtime.cluster.shard",
    "shard_of": "repro.runtime.cluster.shard",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
