"""The cluster control plane: spawn, barrier, relay, merge.

:class:`ClusterCoordinator` turns one scenario into a multi-process
swarm:

* **spawn** — one worker process per shard
  (:func:`~repro.runtime.cluster.worker.run_shard_worker`), each handed
  the spec, its ring range and the run token over a control pipe;
* **wire** — collects every shard's listening port, broadcasts the port
  map, and waits for the full mesh of handshaken socket links (the
  *start barrier*: no peer frame flies before every link is up);
* **start** — broadcasts one agreed start instant (CLOCK_MONOTONIC, so
  it is comparable across processes on one machine) that anchors every
  shard's period clock; the shard owning the source ring id runs the
  stream origin and the Rendezvous Point state is replicated
  deterministically from the shared seed, so no admission traffic needs
  the coordinator;
* **relay** — per period boundary, collects each shard's worst observed
  lateness and broadcasts the cluster-wide maximum back, which the
  shards feed into the AIMD schedule dilation — overload stretches the
  whole cluster's clock coherently instead of letting shards drift
  apart (churn events replicate deterministically from the shared seed
  and ride the same boundaries);
* **stop** — collects every shard's :class:`~repro.runtime.cluster.
  worker.ShardResult`, broadcasts the close barrier (links are only torn
  down once every shard has finished), and merges samples, ledgers and
  transport stats into one standard
  :class:`~repro.runtime.swarm.RuntimeResult`.

A worker that dies mid-run (crash, kill -9) is detected through its
control pipe, dropped from every barrier, and reported as a lost shard;
the survivors' socket links refund their in-flight credits and presume
the shard's peers dead (see ``docs/cluster.md`` on failure semantics).
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import sys
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import (
    HealthEngine,
    ObsConfig,
    ObsRecorder,
    SloSpec,
    SloViolation,
    TelemetryWriter,
    merge_obs,
)
from repro.runtime import wire
from repro.runtime.cluster.links import LinkConfig
from repro.runtime.cluster.worker import ShardResult, run_shard_worker
from repro.runtime.swarm import DEFAULT_TIME_SCALE, RuntimeResult
from repro.runtime.transport import TransportConfig, TransportSummary
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.playback import ContinuityTracker


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def adaptive_time_scale(num_nodes: int, shards: int) -> float:
    """A wall-clock compression that gives each shard's loop headroom.

    ~2.5 ms of wall time per peer per simulated second, divided by the
    *effective* parallelism — ``min(shards, cpus)``, because four shard
    processes time-slicing one core buy zero wall headroom: at 1000
    peers over 4 shards on 4 cores the paper's 1 s scheduling period
    runs in ~0.6 s, while the same swarm on a 1-core box gets a 2.5 s
    period instead of a schedule it cannot possibly keep.  Still
    optimistic by design — the coherent cluster-wide dilation stretches
    the schedule to the sustainable rate when a machine can't keep up,
    which beats hard-coding everyone to the slowest box.
    """
    parallelism = max(1, min(shards, _available_cpus()))
    return max(DEFAULT_TIME_SCALE, 0.0025 * num_nodes / parallelism)


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of a cluster run.

    Attributes:
        shards: worker processes to spawn (>= 1).
        time_scale: wall seconds per simulated second; ``None`` picks
            :func:`adaptive_time_scale` from the swarm size.
        transport: per-peer flow-control knobs (shared by every shard).
        link: TCP link knobs (queue bound, reconnect budget).
        start_margin_s: how far in the future the agreed start instant
            lies (covers the broadcast latency to every worker).
        setup_timeout_s: budget for spawn → listen → mesh → ready.
        mp_context: ``multiprocessing`` start method (``"spawn"`` keeps
            workers independent of the parent's threads and event loops).
    """

    shards: int = 2
    time_scale: Optional[float] = None
    transport: Optional[TransportConfig] = None
    link: LinkConfig = field(default_factory=LinkConfig)
    start_margin_s: float = 0.5
    setup_timeout_s: float = 90.0
    mp_context: str = "spawn"
    #: Wire fast-path switches, broadcast to every shard (see
    #: :class:`~repro.runtime.swarm.LiveSwarm`).
    batching: bool = True
    delta_maps: bool = True
    #: Observability plane (:mod:`repro.obs`), broadcast to every shard;
    #: ``None`` keeps the zero-overhead no-op recorder.
    obs: Optional[ObsConfig] = None
    #: Abort the run early once this SLO's error budget burns too fast
    #: (:mod:`repro.obs.health`); requires telemetry (``obs`` with
    #: ``metrics`` and ``telemetry`` on).
    slo: Optional[SloSpec] = None
    #: Stream decoded telemetry frames and alerts to this JSONL path (a
    #: Prometheus text exposition file appears next to it as
    #: ``<path>.prom``); requires telemetry.
    telemetry_out: Optional[str] = None
    #: ``"full"`` runs every peer as a live task; ``"hybrid"`` hosts a
    #: full-fidelity core of ``core_peers`` live peers plus an
    #: array-backed slim tier for the rest (:mod:`repro.runtime.slim`).
    fidelity: str = "full"
    #: Live-core size for hybrid runs; ``None`` picks
    #: :func:`~repro.runtime.slim.default_core_peers`.
    core_peers: Optional[int] = None

    @property
    def telemetry_on(self) -> bool:
        """Whether shards stream :class:`~repro.runtime.wire.TelemetryFrame`s."""
        return self.obs is not None and self.obs.metrics and self.obs.telemetry

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.time_scale is not None and self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if (self.slo is not None or self.telemetry_out is not None) and not self.telemetry_on:
            raise ValueError(
                "slo/telemetry_out need the telemetry stream: pass an ObsConfig "
                "with metrics=True and telemetry=True"
            )
        if self.fidelity not in ("full", "hybrid"):
            raise ValueError(f"fidelity must be 'full' or 'hybrid', got {self.fidelity!r}")
        if self.core_peers is not None and self.fidelity != "hybrid":
            raise ValueError("core_peers only applies to fidelity='hybrid'")


class _Channel:
    """The coordinator's view of one worker: pipe, process, buffers."""

    def __init__(self, shard: int, conn, process) -> None:
        self.shard = shard
        self.conn = conn
        self.process = process
        self.alive = True
        self.buffers: Dict[str, List[Tuple]] = {}
        self.error: Optional[str] = None

    def take(self, tag: str) -> Optional[Tuple]:
        buffered = self.buffers.get(tag)
        if buffered:
            return buffered.pop(0)
        return None


class ClusterCoordinator:
    """Runs one scenario as a sharded multi-process swarm.

    Args:
        spec: the workload (identical spec goes to every shard).
        rounds: scheduling periods; ``None`` uses the spec's.
        config: cluster knobs; ``config.shards`` picks the process count.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        rounds: Optional[int] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self.spec = spec
        self.config = config if config is not None else ClusterConfig()
        self.rounds = int(spec.rounds if rounds is None else rounds)
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        #: Hybrid runs only spawn live tasks for the core, so the adaptive
        #: clock (and nothing else) sizes by the core, not the population.
        self.core_peers: Optional[int] = None
        if self.config.fidelity == "hybrid":
            from repro.runtime.slim import default_core_peers

            self.core_peers = (
                self.config.core_peers
                if self.config.core_peers is not None
                else default_core_peers(spec.num_nodes)
            )
        live_nodes = spec.num_nodes if self.core_peers is None else self.core_peers
        self.time_scale = (
            self.config.time_scale
            if self.config.time_scale is not None
            else adaptive_time_scale(live_nodes, self.config.shards)
        )
        self.token = secrets.randbits(32)
        #: Live phase marker: ``"init" → "setup" → "running" → "done"``
        #: (tests and progress displays poll it).
        self.phase = "init"
        self.channels: List[_Channel] = []
        #: Per-shard facts reported at listen time (port, hosted peers,
        #: whether the shard hosts the source).
        self.shard_infos: Dict[int, Dict[str, Any]] = {}
        #: Decoded telemetry frame bodies in arrival order (bounded ring;
        #: the cockpit and tests read this).
        self.telemetry_frames: List[Dict[str, Any]] = []
        self.health: Optional[HealthEngine] = None
        self._health_obs: Optional[ObsRecorder] = None
        self._writer: Optional[TelemetryWriter] = None
        self._aborted = False
        cfg = self.config
        if cfg.telemetry_on:
            self._health_obs = ObsRecorder(cfg.obs)
            grace = (
                cfg.slo.grace
                if cfg.slo is not None and cfg.slo.grace is not None
                else max(2, self.rounds // 3)
            )
            self.health = HealthEngine(
                slo=cfg.slo,
                recorder=self._health_obs,
                grace=grace,
                expected_shards=cfg.shards,
            )
            # Alert flight events inherit the newest telemetry sim-time
            # stamp, so coordinator-side obs merges on the shards' clock.
            self._health_obs.bind_clock(lambda: self.health._last_t)

    # ----------------------------------------------------------------- messaging
    def _broadcast(self, msg: Tuple) -> None:
        for channel in self.channels:
            if not channel.alive:
                continue
            try:
                channel.conn.send(msg)
            except (BrokenPipeError, OSError):
                self._mark_dead(channel)

    def _mark_dead(self, channel: _Channel) -> None:
        if channel.alive:
            channel.alive = False
            if self.health is not None and self.phase == "running":
                self.health.mark_shard_dead(channel.shard)
                self._flush_alerts()

    def _live(self) -> List[_Channel]:
        return [c for c in self.channels if c.alive]

    def _pump(self, timeout: float) -> None:
        """Drain every readable control pipe into the per-tag buffers."""
        live = self._live()
        if not live:
            return
        ready = connection_wait([c.conn for c in live], timeout=timeout)
        by_conn = {c.conn: c for c in live}
        for conn in ready:
            channel = by_conn[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._mark_dead(channel)
                continue
            tag = msg[0]
            if tag == "error":
                channel.error = msg[2]
                self._mark_dead(channel)
                continue
            if tag == "telemetry":
                # Handled inline rather than buffered: the health plane
                # must see frames even while a barrier wait is draining
                # some other tag.
                self._on_telemetry(msg)
                continue
            channel.buffers.setdefault(tag, []).append(msg)
        # A worker that died without an EOF reaching us yet (kill -9 is
        # detected via EOF, but be defensive about half-dead processes).
        for channel in live:
            if channel.alive and not channel.process.is_alive() and not any(
                channel.buffers.values()
            ):
                self._mark_dead(channel)

    # ------------------------------------------------------------- telemetry
    #: retained decoded frames; a run is shards × rounds frames, this
    #: caps pathological cases (tiny telemetry_every, huge round counts).
    TELEMETRY_RETAIN = 4096

    def _on_telemetry(self, msg: Tuple) -> None:
        """Decode one shard's wire-encoded frame and feed the health plane."""
        try:
            frame, _ = wire.decode(msg[2])
            body = frame.body()
        except (wire.WireError, ValueError, AttributeError):
            return  # a malformed frame must never take down the control loop
        body["shard"] = frame.shard
        self.telemetry_frames.append(body)
        if len(self.telemetry_frames) > self.TELEMETRY_RETAIN:
            del self.telemetry_frames[0]
        if self.health is not None:
            self.health.observe_frame(body)
        if self._writer is not None:
            self._writer.frame(body)
        self._flush_alerts()

    def _flush_alerts(self) -> None:
        """Drain newly emitted alerts into the streaming writer."""
        if self.health is None:
            return
        for alert in self.health.drain_alerts():
            if self._writer is not None:
                self._writer.alert(alert)

    def _check_slo(self) -> None:
        """Abort (raise :class:`SloViolation`) once the SLO budget breaches."""
        if self.config.slo is None or self.health is None:
            return
        breach = self.health.breach
        if breach is None:
            return
        obs = self._health_obs.export() if self._health_obs is not None else None
        raise SloViolation(breach, obs=obs)

    def _collect_tag(self, tag: str, timeout: float) -> Dict[int, Tuple]:
        """One ``tag`` message from every live worker (or fewer, if some
        die while we wait)."""
        deadline = time.monotonic() + timeout
        collected: Dict[int, Tuple] = {}
        while True:
            for channel in self._live():
                if channel.shard in collected:
                    continue
                msg = channel.take(tag)
                if msg is not None:
                    collected[channel.shard] = msg
            missing = [c for c in self._live() if c.shard not in collected]
            if not missing:
                return collected
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for channel in missing:
                    self._mark_dead(channel)
                return collected
            self._pump(min(0.25, remaining))

    # ----------------------------------------------------------------------- run
    def run(self) -> RuntimeResult:
        """Spawn the shards, drive the run, merge and return the result."""
        cfg = self.config
        ctx = multiprocessing.get_context(cfg.mp_context)
        self.phase = "setup"
        base_payload = {
            "spec": self.spec.to_dict(),
            "num_shards": cfg.shards,
            "rounds": self.rounds,
            "time_scale": self.time_scale,
            "transport": cfg.transport,
            "link_config": cfg.link,
            "token": self.token,
            "batching": cfg.batching,
            "delta_maps": cfg.delta_maps,
            "obs": cfg.obs,
            "fidelity": cfg.fidelity,
            "core_peers": self.core_peers,
        }
        if cfg.telemetry_out:
            self._writer = TelemetryWriter(cfg.telemetry_out)
        try:
            for shard in range(cfg.shards):
                parent_conn, child_conn = ctx.Pipe()
                payload = dict(base_payload, shard_index=shard)
                process = ctx.Process(
                    target=run_shard_worker,
                    args=(child_conn, payload),
                    name=f"continustreaming-shard-{shard}",
                )
                process.start()
                child_conn.close()
                self.channels.append(_Channel(shard, parent_conn, process))
            self._setup_barrier()
            start_at = time.monotonic() + cfg.start_margin_s
            self._broadcast(("start", start_at))
            self.phase = "running"
            self._relay_lateness()
            results = self._collect_results()
            self._check_slo()
        except SloViolation:
            # An SLO abort should not sit out the workers' remaining
            # rounds: shut them down on the short clock.
            self._aborted = True
            raise
        finally:
            self.phase = "done"
            self._broadcast(("close",))
            self._shutdown_processes()
            self._flush_alerts()
            if self._writer is not None:
                self._writer.close()
        if not results:
            errors = [c.error for c in self.channels if c.error]
            detail = f":\n{errors[0]}" if errors else ""
            raise RuntimeError(f"every cluster shard failed{detail}")
        lost = sorted(c.shard for c in self.channels if c.shard not in results)
        fidelity = None
        if self.config.fidelity == "hybrid":
            rows = list(results.values())
            fidelity = {
                "mode": "hybrid",
                "core_peers": self.core_peers,
                "slim_peers": sum(r.slim_peers for r in rows),
                "slim_memory_bytes": sum(r.slim_memory_bytes for r in rows),
                "total_peers": int(self.spec.num_nodes),
            }
        return merge_shard_results(
            list(results.values()),
            self.spec,
            self.config.shards,
            lost,
            extra_obs=self._health_obs.export() if self._health_obs is not None else None,
            health=self.health.snapshot() if self.health is not None else None,
            fidelity=fidelity,
        )

    def _setup_barrier(self) -> None:
        cfg = self.config
        listening = self._collect_tag("listening", cfg.setup_timeout_s)
        if len(listening) < cfg.shards:
            raise RuntimeError(self._setup_failure("start listening", listening))
        self.shard_infos = {shard: msg[2] for shard, msg in listening.items()}
        ports = {shard: info["port"] for shard, info in self.shard_infos.items()}
        self._broadcast(("peers", ports))
        ready = self._collect_tag("ready", cfg.setup_timeout_s)
        if len(ready) < cfg.shards:
            raise RuntimeError(self._setup_failure("establish links", ready))

    def _setup_failure(self, what: str, got: Dict[int, Tuple]) -> str:
        missing = sorted(set(range(self.config.shards)) - set(got))
        errors = "\n".join(
            f"shard {c.shard}: {c.error}" for c in self.channels if c.error
        )
        return (
            f"cluster setup failed: shards {missing} did not {what} within "
            f"{self.config.setup_timeout_s}s" + (f"\n{errors}" if errors else "")
        )

    def _relay_lateness(self) -> None:
        """The per-boundary lateness exchange (see module docstring).

        Each round, every live shard reports its worst lateness; the
        maximum is broadcast back and every shard folds it into the same
        AIMD dilation step — the cross-process version of the coherent
        overload dilation.  A shard that dies mid-run simply drops out
        of the barrier; the survivors' reports keep the relay going.
        """
        scaled = max(1e-6, self._scaled_period())
        round_timeout = max(20.0, 40.0 * scaled)
        for round_index in range(self.rounds):
            if not self._live():
                return
            reports = self._collect_round_lateness(round_index, round_timeout)
            worst = max(reports.values(), default=0.0)
            self._broadcast(("dilate", round_index, worst))
            self._check_slo()

    def _scaled_period(self) -> float:
        return self.spec.to_config().scheduling_period * self.time_scale

    def _collect_round_lateness(
        self, round_index: int, timeout: float
    ) -> Dict[int, float]:
        deadline = time.monotonic() + timeout
        reports: Dict[int, float] = {}
        while True:
            for channel in self._live():
                if channel.shard in reports:
                    continue
                while True:
                    msg = channel.take("lateness")
                    if msg is None:
                        break
                    _, _, rnd, worst = msg
                    if rnd >= round_index:
                        reports[channel.shard] = float(worst)
                        break
                    # stale report from a round we already broadcast
            if all(c.shard in reports for c in self._live()):
                return reports
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for channel in self._live():
                    if channel.shard not in reports:
                        self._mark_dead(channel)
                return reports
            self._pump(min(0.25, remaining))

    def _collect_results(self) -> Dict[int, ShardResult]:
        # Generous: the shards already ran their rounds during the relay
        # phase; what remains is the completion wait and shutdown.
        timeout = max(120.0, 4.0 * self.rounds * self._scaled_period() + 60.0)
        collected = self._collect_tag("result", timeout)
        return {shard: msg[2] for shard, msg in collected.items()}

    def _shutdown_processes(self) -> None:
        join_s = 1.0 if self._aborted else 10.0
        for channel in self.channels:
            channel.process.join(timeout=join_s)
        for channel in self.channels:
            if channel.process.is_alive():
                channel.process.terminate()
                channel.process.join(timeout=5.0)
            channel.conn.close()
        for channel in self.channels:
            if channel.error:
                print(
                    f"[cluster] shard {channel.shard} failed:\n{channel.error}",
                    file=sys.stderr,
                )


# ======================================================================== merge
def merge_shard_results(
    results: List[ShardResult],
    spec: ScenarioSpec,
    shards: int,
    lost_shards: List[int],
    extra_obs: Optional[Dict[str, Any]] = None,
    health: Optional[Dict[str, Any]] = None,
    fidelity: Optional[Dict[str, Any]] = None,
) -> RuntimeResult:
    """Fold per-shard results into one :class:`RuntimeResult`.

    Playback samples are summed per tick *before* the trailing-empty trim
    (a shard that stopped sampling early must not truncate the merged
    series), ledgers merge like any concurrent accumulation, transport
    summaries aggregate with the standard sum/max rules, and the
    cluster-only facts (socket traffic, lost shards, per-shard rows) ride
    in ``RuntimeResult.cluster``.  ``extra_obs`` joins the obs merge (the
    coordinator's own recorder: alert flight events, the SLO breach
    postmortem) and ``health`` — a
    :meth:`~repro.obs.health.HealthEngine.snapshot` — lands in
    ``cluster["health"]``.
    """
    if not results:
        raise ValueError("merge_shard_results needs at least one shard result")
    results = sorted(results, key=lambda r: r.shard_index)
    first = results[0]
    per_tick: Dict[int, List[int]] = {}
    for shard in results:
        for tick, playing, total in shard.samples:
            bucket = per_tick.setdefault(tick, [0, 0])
            bucket[0] += playing
            bucket[1] += total
    samples = [(tick, *per_tick[tick]) for tick in sorted(per_tick)]
    while samples and samples[-1][2] == 0 and len(samples) > 1:
        samples.pop()
    tracker = ContinuityTracker(round_duration=first.config.scheduling_period)
    for tick, playing, total in samples:
        tracker.record_round((tick + 1) * first.config.scheduling_period, playing, total)
    per_peer = {}
    for shard in results:
        per_peer.update(shard.per_peer_ledgers)
    from repro.net.message import MessageLedger

    ledger = MessageLedger.merged(list(per_peer.values()))
    transport = TransportSummary.aggregate(r.transport for r in results)
    socket_totals: Dict[str, int] = {}
    for shard in results:
        for key, value in shard.socket.items():
            socket_totals[key] = socket_totals.get(key, 0) + int(value)
    cluster = {
        "shards": shards,
        "shards_lost": len(lost_shards),
        "lost_shards": list(lost_shards),
        "socket": socket_totals,
        "worst_lateness_s": max(r.worst_lateness_s for r in results),
        "per_shard": [
            {
                "shard": r.shard_index,
                "hosted_peers": r.hosted_peers,
                "hosts_source": r.hosts_source,
                "messages_sent": r.messages_sent,
                "messages_dropped": r.messages_dropped,
                "wall_time_s": round(r.wall_time_s, 4),
                "clock_dilations": r.clock_dilations,
                "socket": dict(r.socket),
            }
            for r in results
        ],
    }
    if health is not None:
        cluster["health"] = health
    if fidelity is not None:
        cluster["fidelity"] = fidelity
    obs = merge_obs([r.obs for r in results] + ([extra_obs] if extra_obs else []))
    return RuntimeResult(
        system=spec.system,
        config=first.config,
        rounds=first.rounds,
        time_scale=first.time_scale,
        tracker=tracker,
        ledger=ledger,
        per_peer_ledgers=per_peer,
        messages_sent=sum(r.messages_sent for r in results),
        messages_dropped=sum(r.messages_dropped for r in results),
        bytes_on_wire=sum(r.bytes_on_wire for r in results),
        peers_joined=sum(r.peers_joined for r in results),
        peers_left=sum(r.peers_left for r in results),
        wall_time_s=max(r.wall_time_s for r in results),
        transport=transport,
        clock="wall",
        clock_dilation_s=max(r.clock_dilation_s for r in results),
        clock_dilations=max(r.clock_dilations for r in results),
        shards=shards,
        cluster=cluster,
        obs=obs,
        fidelity=fidelity,
    )


def run_cluster(
    spec: ScenarioSpec,
    shards: int = 2,
    rounds: Optional[int] = None,
    time_scale: Optional[float] = None,
    transport: Optional[TransportConfig] = None,
    link: Optional[LinkConfig] = None,
    batching: bool = True,
    delta_maps: bool = True,
    obs: Optional[ObsConfig] = None,
    slo: Optional[SloSpec] = None,
    telemetry_out: Optional[str] = None,
    fidelity: str = "full",
    core_peers: Optional[int] = None,
) -> RuntimeResult:
    """Convenience wrapper: run ``spec`` as a ``shards``-process cluster."""
    config = ClusterConfig(
        shards=shards,
        time_scale=time_scale,
        transport=transport,
        link=link if link is not None else LinkConfig(),
        batching=batching,
        delta_maps=delta_maps,
        obs=obs,
        slo=slo,
        telemetry_out=telemetry_out,
        fidelity=fidelity,
        core_peers=core_peers,
    )
    return ClusterCoordinator(spec, rounds=rounds, config=config).run()
