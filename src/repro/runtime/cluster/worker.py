"""The shard worker process: one event loop, one ring-range of peers.

Spawned by the :class:`~repro.runtime.cluster.coordinator.
ClusterCoordinator`, a worker

1. builds the full overlay from the scenario spec (deterministic — every
   shard builds the same one) and instantiates live peers for its own
   ring range (:class:`~repro.runtime.cluster.shard.ShardSwarm`);
2. listens on an ephemeral localhost TCP port, reports it, receives the
   cluster's port map and establishes one handshaken
   :class:`~repro.runtime.cluster.links.SocketLink` per peer shard
   (higher shard index dials lower, so each pair shares one stream);
3. waits for the coordinator's agreed start instant, runs the swarm, and
   exchanges per-boundary lateness reports with the coordinator so the
   overload dilation stays coherent across every shard;
4. ships its :class:`ShardResult` back over the control pipe and holds
   its links open until the coordinator's ``close`` barrier — a shard
   that finished early must not tear down streams its slower peers are
   still delivering on.

The control pipe is a ``multiprocessing`` connection; a tiny mailbox
pumps it into per-tag asyncio queues so the worker's event loop never
blocks on it.
"""

from __future__ import annotations

import asyncio
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.net.message import MessageLedger
from repro.runtime import wire
from repro.runtime.cluster.links import (
    LinkConfig,
    SocketLink,
    dial_shard,
    read_handshake,
    validate_hello,
)
from repro.runtime.cluster.shard import ShardSwarm
from repro.runtime.transport import TransportConfig, TransportSummary
from repro.scenarios.spec import ScenarioSpec

#: Budget for each setup step (listen → ports → links → start).
SETUP_TIMEOUT_S = 60.0

#: How long a finished worker waits for the coordinator's close barrier
#: before tearing its links down anyway.
CLOSE_TIMEOUT_S = 30.0


@dataclass
class ShardResult:
    """Everything one shard contributes to the merged cluster result."""

    shard_index: int
    hosted_peers: int
    hosts_source: bool
    config: SystemConfig
    rounds: int
    time_scale: float
    #: Untrimmed per-tick ``(tick, playing, total)`` over hosted peers.
    samples: List[Tuple[int, int, int]]
    per_peer_ledgers: Dict[int, MessageLedger]
    transport: TransportSummary
    messages_sent: int
    messages_dropped: int
    peers_joined: int
    peers_left: int
    wall_time_s: float
    clock_dilation_s: float
    clock_dilations: int
    worst_lateness_s: float
    socket: Dict[str, int] = field(default_factory=dict)
    lost_shards: List[int] = field(default_factory=list)
    #: Physical bytes this shard's loopback tail delivered (post-batch).
    bytes_on_wire: int = 0
    #: This shard's exported observability plane (``None`` when disabled).
    obs: Optional[Dict[str, Any]] = None
    #: Hybrid-fidelity facts: slim peers this shard modeled and the bytes
    #: their array state held (0 for full-fidelity shards).
    slim_peers: int = 0
    slim_memory_bytes: int = 0


class _Mailbox:
    """Pumps the control pipe into per-tag asyncio queues."""

    def __init__(self, conn) -> None:
        self.conn = conn
        self.queues: Dict[str, asyncio.Queue] = {}
        self.closed = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def queue(self, tag: str) -> asyncio.Queue:
        queue = self.queues.get(tag)
        if queue is None:
            queue = self.queues[tag] = asyncio.Queue()
        return queue

    def start(self) -> None:
        self._task = asyncio.create_task(self._pump(), name="cluster-mailbox")

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                msg = await loop.run_in_executor(None, self.conn.recv)
            except (EOFError, OSError):
                self.closed.set()
                return
            self.queue(msg[0]).put_nowait(msg)
            if msg[0] == "close":
                # Last message by protocol: stop pumping so no executor
                # thread is left blocked in conn.recv at process exit.
                self.closed.set()
                return

    async def expect(self, tag: str, timeout: Optional[float] = None) -> Tuple:
        """The next message of ``tag`` (raises on timeout / dead pipe)."""
        queue = self.queue(tag)
        getter = asyncio.ensure_future(queue.get())
        closer = asyncio.ensure_future(self.closed.wait())
        try:
            done, _ = await asyncio.wait(
                {getter, closer}, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if getter in done:
                return getter.result()
            if closer in done:
                if not queue.empty():
                    return queue.get_nowait()
                raise ConnectionError("coordinator connection closed")
            raise TimeoutError(f"timed out waiting for {tag!r} from the coordinator")
        finally:
            getter.cancel()
            closer.cancel()

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class ShardWorker:
    """Drives one shard's lifecycle inside its worker process."""

    def __init__(self, conn, payload: Dict[str, Any]) -> None:
        self.conn = conn
        self.payload = payload
        self.shard_index: int = payload["shard_index"]
        self.num_shards: int = payload["num_shards"]
        self.token: int = payload["token"]
        self.link_config: LinkConfig = payload.get("link_config") or LinkConfig()
        self.mail = _Mailbox(conn)
        self.swarm: Optional[ShardSwarm] = None
        self.hello: Optional[wire.ShardHello] = None

    def _send(self, msg: Tuple) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):  # coordinator died; keep running
            pass

    # --------------------------------------------------------------- connections
    def _dials(self, other: int) -> bool:
        """Each shard pair shares one stream: the higher index dials."""
        return self.shard_index > other

    def _create_links(self) -> None:
        """Create every link object before the listening port is public.

        The acceptor must be able to attach an inbound stream the moment
        it arrives — a faster sibling can dial before this worker has
        even processed the coordinator's port map.
        """
        assert self.swarm is not None and self.hello is not None
        for other in range(self.num_shards):
            if other != self.shard_index:
                self.swarm.links[other] = SocketLink(
                    self.swarm, other, config=self.link_config, hello=self.hello
                )

    async def _on_connection(self, reader: asyncio.StreamReader, writer) -> None:
        assert self.hello is not None and self.swarm is not None
        try:
            msg, decoder, extras = await read_handshake(
                reader, self.link_config.handshake_timeout_s
            )
            hello = validate_hello(msg, self.hello)
            if self._dials(hello.shard_index):
                raise wire.WireError(
                    f"shard {hello.shard_index} dialed the wrong direction"
                )
            writer.write(wire.encode(self.hello))
            await writer.drain()
        except (wire.WireError, ConnectionError, OSError, asyncio.TimeoutError):
            writer.close()
            return
        self.swarm.links[hello.shard_index].attach(reader, writer, decoder, tuple(extras))

    async def _connect_links(self, ports: Dict[int, int]) -> None:
        assert self.swarm is not None and self.hello is not None
        for other, link in self.swarm.links.items():
            if self._dials(other):
                link.dial_address = ("127.0.0.1", ports[other])
        for other, link in self.swarm.links.items():
            if link.dial_address is None:
                continue
            last_error: Optional[Exception] = None
            for _ in range(3):
                try:
                    reader, writer, decoder, backlog = await dial_shard(
                        link.dial_address,
                        self.hello,
                        expect_shard=other,
                        timeout=self.link_config.handshake_timeout_s,
                    )
                    link.attach(reader, writer, decoder, tuple(backlog))
                    break
                except (ConnectionError, OSError, wire.WireError, asyncio.TimeoutError) as exc:
                    last_error = exc
                    await asyncio.sleep(0.1)
            else:
                raise RuntimeError(
                    f"shard {self.shard_index} could not reach shard {other}: {last_error}"
                )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + SETUP_TIMEOUT_S
        while any(not link.is_up for link in self.swarm.links.values()):
            if loop.time() > deadline:
                down = [s for s, link in self.swarm.links.items() if not link.is_up]
                raise RuntimeError(f"links to shards {down} failed to establish")
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------- cluster control
    async def exchange_lateness(self, round_index: int, worst: float) -> float:
        """The :class:`~repro.runtime.cluster.shard.ClusterControl` hook.

        Falls back to the shard's own lateness whenever the coordinator
        is unreachable or slow — a missing relay degrades coherence, it
        must never stall the swarm.
        """
        assert self.swarm is not None
        self._send(("lateness", self.shard_index, round_index, worst))
        scaled = self.swarm.config.scheduling_period * self.swarm.time_scale
        timeout = min(60.0, max(10.0, 8.0 * scaled * self.swarm.MAX_STRETCH))
        while True:
            try:
                _, rnd, value = await self.mail.expect("dilate", timeout=timeout)
            except (TimeoutError, ConnectionError):
                return worst
            if rnd >= round_index:
                return float(value)
            # A stale broadcast from an earlier boundary: keep draining.

    # -------------------------------------------------------------- telemetry
    def _ship_telemetry(self, body: Dict[str, Any]) -> None:
        """Push one telemetry frame to the coordinator over the control seam.

        The body is wire-encoded as an (uncharged)
        :class:`~repro.runtime.wire.TelemetryFrame` so the stream speaks
        the cluster's codec — a future multi-host control channel carries
        the same bytes — and decoded coordinator-side into the
        :class:`~repro.obs.health.HealthEngine`.  Best-effort like every
        control send: a dead coordinator must not stall the swarm.
        """
        frame = wire.TelemetryFrame.from_body(
            shard=self.shard_index, period=int(body.get("period", 0)), body=body
        )
        self._send(("telemetry", self.shard_index, wire.encode(frame)))

    # ------------------------------------------------------------------------ run
    async def main(self) -> None:
        payload = self.payload
        spec = ScenarioSpec.from_dict(payload["spec"])
        transport: Optional[TransportConfig] = payload.get("transport")
        swarm_kwargs = dict(
            rounds=payload.get("rounds"),
            time_scale=payload["time_scale"],
            transport=transport,
            link_config=self.link_config,
            batching=payload.get("batching", True),
            delta_maps=payload.get("delta_maps", True),
            obs=payload.get("obs"),
        )
        if payload.get("fidelity", "full") == "hybrid":
            from repro.runtime.slim import HybridShardSwarm

            swarm = self.swarm = HybridShardSwarm(
                spec,
                self.shard_index,
                self.num_shards,
                core_peers=payload.get("core_peers"),
                **swarm_kwargs,
            )
        else:
            swarm = self.swarm = ShardSwarm(
                spec, self.shard_index, self.num_shards, **swarm_kwargs
            )
        swarm.build()
        self.hello = wire.ShardHello(
            shard_index=self.shard_index,
            num_shards=self.num_shards,
            token=self.token,
            ring_size=swarm.id_space,
        )
        self._create_links()
        server = await asyncio.start_server(self._on_connection, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        self.mail.start()
        hosted = len(swarm.peers)
        self._send(
            (
                "listening",
                self.shard_index,
                {
                    "port": port,
                    "hosted_peers": hosted,
                    "hosts_source": swarm.hosts(swarm.manager.source_id),
                },
            )
        )
        _, ports = await self.mail.expect("peers", timeout=SETUP_TIMEOUT_S)
        await self._connect_links(ports)
        self._send(("ready", self.shard_index))
        _, start_at = await self.mail.expect("start", timeout=SETUP_TIMEOUT_S)
        swarm.start_at = float(start_at)
        swarm.control = self
        swarm.telemetry_sink = self._ship_telemetry
        result = await swarm.run_async()
        wall_time = max(0.0, asyncio.get_running_loop().time() - swarm.start_at)
        fid = result.fidelity or {}
        self._send(
            (
                "result",
                self.shard_index,
                ShardResult(
                    shard_index=self.shard_index,
                    hosted_peers=hosted,
                    hosts_source=swarm.hosts(swarm.manager.source_id),
                    config=swarm.config,
                    rounds=swarm.rounds,
                    time_scale=swarm.time_scale,
                    samples=swarm.playback_samples(),
                    per_peer_ledgers=result.per_peer_ledgers,
                    transport=result.transport,
                    messages_sent=result.messages_sent,
                    messages_dropped=result.messages_dropped,
                    peers_joined=result.peers_joined,
                    peers_left=result.peers_left,
                    wall_time_s=wall_time,
                    clock_dilation_s=result.clock_dilation_s,
                    clock_dilations=result.clock_dilations,
                    worst_lateness_s=swarm.worst_lateness_s,
                    socket=swarm.socket_summary(),
                    lost_shards=sorted(swarm.lost_shards),
                    bytes_on_wire=result.bytes_on_wire,
                    obs=result.obs,
                    slim_peers=int(fid.get("slim_peers", 0)),
                    slim_memory_bytes=int(fid.get("slim_memory_bytes", 0)),
                ),
            )
        )
        # Hold the links until every shard has finished (close barrier):
        # peers elsewhere may still be draining frames this shard relays.
        try:
            await self.mail.expect("close", timeout=CLOSE_TIMEOUT_S)
        except (TimeoutError, ConnectionError):
            pass
        self.mail.stop()
        swarm.close_links()
        server.close()
        await server.wait_closed()


def run_shard_worker(conn, payload: Dict[str, Any]) -> None:
    """Process entry point (top-level so ``multiprocessing`` can spawn it)."""
    try:
        asyncio.run(ShardWorker(conn, payload).main())
    except Exception:
        try:
            conn.send(("error", payload.get("shard_index", -1), traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(1)
