"""Interchangeable peer-to-peer links: in-process loopback and real TCP.

Every frame a :class:`~repro.runtime.peer.LivePeer` ships leaves through a
*link* chosen by its swarm — the peer itself never knows (or cares) which
implementation carries the frame:

* :class:`LoopbackLink` — the in-process path, hoisted out of
  ``swarm.py``: model latency injected per pair, scenario ``loss_rate``
  applied to data frames, bounded-inbox delivery with credit refunds for
  shed or lost frames.  :class:`~repro.runtime.swarm.LiveSwarm` uses it
  for every pair; a :class:`~repro.runtime.cluster.shard.ShardSwarm` uses
  it for intra-shard pairs *and* as the local tail of every cross-shard
  delivery, so the delay/loss injection exists exactly once.
* :class:`SocketLink` — one TCP stream to a peer shard, multiplexing
  :class:`~repro.runtime.wire.RoutedFrame` envelopes over the standard
  length-prefixed codec (``asyncio.open_connection`` streams fed through
  :class:`~repro.runtime.wire.FrameDecoder`).  The link is *bounded*
  (an outbound queue past its watermark sheds data frames, refunding
  their credits) and *self-healing*: a dropped connection immediately
  refunds every in-flight DATA credit towards the remote shard
  (``host.on_link_interrupted`` → ``SendWindowSet.reset``), then the
  dialing side redials with backoff while the accepting side waits for
  the redial; a link that stays down past its budget declares the shard
  lost (``host.on_link_lost``) so the survivors reroute around it —
  PR 4's "credits always come home" invariant, extended across a real
  socket drop.

The first frame on every cluster TCP stream is a
:class:`~repro.runtime.wire.ShardHello` carrying the coordinator's run
token and the shared overlay facts; a stream from a different run or a
differently built cluster is rejected before any peer traffic flows.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Protocol, Tuple

from collections import deque

from repro.runtime import wire

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.swarm import LiveSwarm


class Link(Protocol):
    """What a swarm needs from anything that carries frames to a peer."""

    def send(self, src: int, dst: int, frame: bytes, data: bool = False) -> None:
        """Ship one encoded frame from ``src`` towards ``dst``."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Tear the link down (idempotent)."""
        ...  # pragma: no cover - protocol


class _FlushGroup:
    """Frames towards one ``(src, dst, lane)`` awaiting a single flush."""

    __slots__ = ("born", "frames")

    def __init__(self, born: float, frame: bytes) -> None:
        self.born = born
        self.frames = [frame]


class LoopbackLink:
    """Delivers frames to peers hosted in this process.

    The single implementation of the runtime's delay/loss injection: the
    pairwise one-way latency of the scenario's
    :class:`~repro.net.latency.LatencyModel` (scaled by ``time_scale``)
    is applied per frame, a configured ``loss_rate`` drops *data* frames
    at random (control traffic never — matching
    :class:`~repro.scenarios.phases.LossyNetworkPhase` semantics), and
    flow-control state always survives a drop: a lost or shed data
    frame's credit flows back to its sender, a shed one-shot control
    frame is applied as if delivered.

    With the host's ``batching`` flag on, frames towards the same
    ``(src, dst, lane)`` that would flush in the same instant coalesce
    into one :class:`~repro.runtime.wire.FrameBatch` delivery: on the
    virtual clock only frames born at the same loop time join a group
    (the batch's deadline is then bit-identical to every member's
    unbatched deadline, keeping parity runs exact); on the wall clock a
    frame joins any still-pending group for its key (bounded early
    delivery — real transports coalesce the same way).  Loss draws stay
    per *logical* frame, before grouping, so the loss stream is
    identical with batching on or off.

    ``host`` is the owning swarm; the link reads its peer table, latency
    model, loss stream and drop counters directly — it is the swarm's
    delivery path, packaged so local and TCP links are interchangeable.
    """

    def __init__(self, host: "LiveSwarm") -> None:
        self.host = host
        #: Pending coalescing groups keyed by ``(src, dst, data)``.
        self._groups: dict = {}

    def send(self, src: int, dst: int, frame: bytes, data: bool = False) -> None:
        """Ship one frame with link latency (and loss, for data frames)."""
        host = self.host
        is_batch = len(frame) > 4 and frame[4] == wire.WireKind.BATCH
        lossy = host.loss_rng is not None and host.spec.loss_rate > 0.0
        if data and lossy and is_batch:
            # A routed batch from a peer shard: the network loses *inner*
            # frames independently, exactly as if they travelled loose.
            frame = self._lose_from_batch(src, dst, frame)
            if frame is None:
                return
            is_batch = len(frame) > 4 and frame[4] == wire.WireKind.BATCH
        elif data and lossy and host.loss_rng.random() < host.spec.loss_rate:
            host.messages_dropped += 1
            self._refund_lost(src, dst)
            return
        peer = host.peers.get(dst)
        if peer is None or peer.stopped or not peer.node.alive:
            host.messages_dropped += 1
            return
        loop = asyncio.get_running_loop()
        if not host.batching or is_batch:
            delay = host.manager.latency_ms(src, dst) / 1000.0 * host.time_scale
            loop.call_later(delay, self._deliver_now, src, dst, frame, data)
            return
        now = loop.time()
        key = (src, dst, data)
        group = self._groups.get(key)
        if group is not None and (group.born == now or host.clock != "virtual"):
            group.frames.append(frame)
            return
        group = _FlushGroup(now, frame)
        self._groups[key] = group
        delay = host.manager.latency_ms(src, dst) / 1000.0 * host.time_scale
        loop.call_later(delay, self._flush_group, key, group)

    def _flush_group(self, key: Tuple[int, int, bool], group: _FlushGroup) -> None:
        if self._groups.get(key) is group:
            del self._groups[key]
        src, dst, data = key
        for chunk in wire.encode_batch(group.frames):
            self._deliver_now(src, dst, chunk, data)

    def _deliver_now(self, src: int, dst: int, frame: bytes, data: bool) -> None:
        host = self.host
        count = wire.frame_count(frame)
        peer = host.peers.get(dst)
        if peer is None or peer.stopped or not peer.node.alive:
            host.messages_dropped += count
            return
        host.bytes_on_wire += len(frame)
        flows = host._flows
        if flows is not None:
            # Charged beside bytes_on_wire so the shard-pair matrix
            # reconciles with the physical byte counter by construction.
            flows.record_physical(host.shard_of(src), host.shard_of(dst), len(frame), count)
        if not peer.inbox.put(src, frame, control=not data, weight=count):
            # The bounded lane shed the frame.  Flow-control state must
            # survive the shed either way: a data frame's spent credit
            # comes home (the receiver counts it as consumed), and a shed
            # credit grant is applied as if delivered — otherwise the
            # link's window would wedge permanently short.
            host.messages_dropped += count
            if data:
                peer.note_shed_data(src, count)
            else:
                peer.absorb_shed_control(frame)

    def _lose_from_batch(
        self, src: int, dst: int, frame: bytes
    ) -> Optional[bytes]:
        """Apply per-frame loss inside a routed data batch.

        Returns the (possibly re-batched) survivors, or ``None`` when
        the network ate every inner frame.  Each loss refunds its own
        credit, exactly like a loose frame's loss would.
        """
        host = self.host
        survivors = []
        for inner in wire.decode(frame)[0].frames:
            if host.loss_rng.random() < host.spec.loss_rate:
                host.messages_dropped += 1
                self._refund_lost(src, dst)
            else:
                survivors.append(bytes(inner))
        if not survivors:
            return None
        if len(survivors) == 1:
            return survivors[0]
        return wire.encode(wire.FrameBatch(frames=tuple(survivors)))

    def _refund_lost(self, src: int, dst: int) -> None:
        """Return the credit of a data frame the *network* dropped.

        Loss happens before the receiver exists for this frame, so the
        receiving peer (if still alive) refunds on the network's behalf —
        the loopback stand-in for a transport-level retransmit/ack.
        """
        peer = self.host.peers.get(dst)
        if peer is not None and not peer.stopped and peer.node.alive:
            peer.note_shed_data(src)

    def close(self) -> None:
        """Nothing to tear down: loopback state lives in the peers."""
        self._groups.clear()


@dataclass(frozen=True)
class LinkConfig:
    """Knobs of the cluster's TCP links.

    Attributes:
        queue_limit: max frames queued towards one peer shard awaiting
            the socket; past it *data* frames are shed (their credits
            refunded) while credit grants and handovers — the one-shot
            control state the rest of the transport already refuses to
            lose — are always queued.
        reconnect_attempts: redials the dialing side tries after a drop.
        reconnect_delay_s: base backoff between redials (grows linearly).
        reconnect_grace_s: how long the accepting side waits for the
            dialer to come back before declaring the shard lost.
        handshake_timeout_s: budget for the hello exchange on a fresh
            stream.
    """

    queue_limit: int = 8192
    reconnect_attempts: int = 3
    reconnect_delay_s: float = 0.25
    reconnect_grace_s: float = 2.0
    handshake_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")


#: Inner-frame kind bytes a full socket queue must never shed: losing a
#: credit grant wedges the remote window, losing a handover loses a VoD
#: backup store forever (the sender dies right after shipping it).
_UNSHEDDABLE = (bytes([wire.WireKind.CREDIT]), bytes([wire.WireKind.HANDOVER]))

#: Link lifecycle states.
_CONNECTING, _UP, _DOWN, _DEAD = "connecting", "up", "down", "dead"


class ClusterHost(Protocol):
    """Callbacks a :class:`SocketLink` needs from its owning shard."""

    def receive_routed(self, src: int, dst: int, payload: bytes, data: bool) -> None:
        ...  # pragma: no cover - protocol

    def on_link_interrupted(self, shard: int) -> None:
        ...  # pragma: no cover - protocol

    def on_link_restored(self, shard: int) -> None:
        ...  # pragma: no cover - protocol

    def on_link_lost(self, shard: int) -> None:
        ...  # pragma: no cover - protocol

    def note_undeliverable(self, src: int, dst: int, data: bool) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class SocketLinkStats:
    """One TCP link's counters (merged into the shard's socket summary)."""

    frames_out: int = 0
    frames_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    sheds: int = 0
    disconnects: int = 0
    reconnects: int = 0


class SocketLink:
    """One TCP stream to a peer shard, multiplexing routed peer frames.

    The link is created unconnected; the worker's connection machinery
    calls :meth:`attach` once the hello exchange on a fresh stream has
    validated the remote shard (dial side and accept side both land
    here).  ``send`` is synchronous — frames queue in a bounded outbound
    buffer drained by a writer task that honours the kernel's TCP
    backpressure via ``writer.drain()``.
    """

    def __init__(
        self,
        host: ClusterHost,
        shard_index: int,
        config: Optional[LinkConfig] = None,
        dial_address: Optional[Tuple[str, int]] = None,
        hello: Optional[wire.ShardHello] = None,
    ) -> None:
        self.host = host
        self.shard_index = shard_index
        self.config = config if config is not None else LinkConfig()
        #: ``(host, port)`` to redial, or ``None`` on the accepting side.
        self.dial_address = dial_address
        #: The hello this side presents on (re)dial.
        self.hello = hello
        self.stats = SocketLinkStats()
        self.state = _CONNECTING
        #: Coalesce same-pair frames drained in one write-loop pass into
        #: FrameBatch payloads (one RoutedFrame envelope per burst).
        #: Stub hosts in tests carry no flag and default to batching.
        self.batching = bool(getattr(host, "batching", True))
        self._writer: Optional[asyncio.StreamWriter] = None
        self._queue: Deque[Tuple[bytes, int, int, bool]] = deque()
        self._wakeup = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._recovery: Optional[asyncio.Task] = None
        self._closing = False

    @property
    def is_up(self) -> bool:
        return self.state == _UP

    # ------------------------------------------------------------------- sending
    def send(self, src: int, dst: int, frame: bytes, data: bool = False) -> None:
        """Queue one peer frame for the remote shard.

        A dead link drops the frame (refunding a data frame's credit via
        the host); a full queue sheds data frames the same way but never
        the one-shot control frames (credits, handovers) whose loss the
        transport cannot repair.  While the link is *down* (recovering),
        only those one-shot frames queue: anything else queued during the
        outage would either go stale or leak its credit — the windows
        towards the remote shard were already reset when the stream
        broke, so a data frame queued now and flushed later would spend a
        credit no receiver accounts for.  Refund immediately instead;
        the requester's NACK/rescue machinery re-pulls what still
        matters once the link heals.
        """
        if self._closing or self.state == _DEAD:
            self.host.note_undeliverable(src, dst, data)
            return
        if self.state == _DOWN and frame[4:5] not in _UNSHEDDABLE:
            self.stats.sheds += 1
            self.host.note_undeliverable(src, dst, data)
            return
        if len(self._queue) >= self.config.queue_limit and frame[4:5] not in _UNSHEDDABLE:
            self.stats.sheds += 1
            self.host.note_undeliverable(src, dst, data)
            return
        self._queue.append((frame, src, dst, data))
        self._wakeup.set()

    #: Headroom a batch chunk leaves under :data:`wire.MAX_FRAME_PAYLOAD`
    #: for the RoutedFrame envelope that will wrap it (flags + ids).
    _ENVELOPE_HEADROOM = 64

    def _drain_envelopes(self) -> List[bytes]:
        """Drain the queue into encoded RoutedFrame envelopes.

        Frames towards the same ``(src, dst, lane)`` drained in one pass
        coalesce into FrameBatch payloads — one envelope per burst
        instead of one per frame — in first-appearance order, so
        per-pair FIFO survives.  With batching off (or a single frame
        per pair) each frame rides its own envelope, byte-identical to
        the unbatched wire format.
        """
        groups: dict = {}
        while self._queue:
            frame, src, dst, data = self._queue.popleft()
            self.stats.frames_out += 1
            groups.setdefault((src, dst, data), []).append(frame)
        envelopes: List[bytes] = []
        limit = wire.MAX_FRAME_PAYLOAD - self._ENVELOPE_HEADROOM
        for (src, dst, data), frames in groups.items():
            chunks = (
                wire.encode_batch(frames, limit=limit) if self.batching else frames
            )
            envelopes.extend(
                wire.encode(
                    wire.RoutedFrame(src=src, dst=dst, payload=chunk, data=data)
                )
                for chunk in chunks
            )
        return envelopes

    async def _write_loop(self) -> None:
        writer = self._writer
        assert writer is not None
        try:
            while True:
                while not self._queue:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                chunk = b"".join(self._drain_envelopes())
                self.stats.bytes_out += len(chunk)
                writer.write(chunk)
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._handle_disconnect()

    # ----------------------------------------------------------------- receiving
    def _dispatch_incoming(self, msg: wire.WireMessage) -> None:
        if isinstance(msg, wire.RoutedFrame):
            self.stats.frames_in += wire.frame_count(msg.payload)
            self.host.receive_routed(msg.src, msg.dst, msg.payload, msg.data)
        # A late ShardHello (or anything else) is ignored: the handshake
        # happened before attach.

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        decoder: wire.FrameDecoder,
        backlog: Tuple[wire.WireMessage, ...],
    ) -> None:
        try:
            # Frames that coalesced with the handshake reply on the same
            # stream read must be delivered, not dropped — on a mid-run
            # redial the remote side may start routing the instant it
            # attaches.
            for msg in backlog:
                self._dispatch_incoming(msg)
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    self._handle_disconnect()
                    return
                self.stats.bytes_in += len(chunk)
                for msg in decoder.feed(chunk):
                    self._dispatch_incoming(msg)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, wire.WireError):
            # A poisoned stream is indistinguishable from a broken one.
            self._handle_disconnect()

    # ----------------------------------------------------------------- lifecycle
    def attach(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: Optional[wire.FrameDecoder] = None,
        backlog: Tuple[wire.WireMessage, ...] = (),
    ) -> None:
        """Adopt a freshly handshaken stream (initial connect or redial).

        ``decoder``/``backlog`` carry the handshake's stream state over:
        the decoder holds any partial frame that followed the hello in
        the same read, the backlog any complete ones — both continue on
        the new read loop, so no byte of the stream is ever dropped.
        Frames already queued outbound are *kept*: they are either
        pre-start traffic or the one-shot control frames the down-state
        refuses to shed, and both must flush on the healed stream.
        """
        restored = self.state in (_DOWN,)
        self._teardown_tasks()
        self._writer = writer
        self.state = _UP
        self._wakeup = asyncio.Event()
        if self._queue:
            self._wakeup.set()
        self._tasks = [
            asyncio.create_task(
                self._read_loop(reader, decoder or wire.FrameDecoder(), tuple(backlog))
            ),
            asyncio.create_task(self._write_loop()),
        ]
        if restored:
            self.stats.reconnects += 1
            self.host.on_link_restored(self.shard_index)

    def _teardown_tasks(self) -> None:
        for task in self._tasks:
            if task is not asyncio.current_task():
                task.cancel()
        self._tasks = []
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:  # pragma: no cover - loop already closing
                pass
            self._writer = None

    def _handle_disconnect(self) -> None:
        """The stream broke: refund in-flight credits, try to recover.

        Every queued frame dies with the connection (that is what a TCP
        reset does to buffered bytes); the host's ``on_link_interrupted``
        resets the local peers' send windows towards the remote shard, so
        credits spent on frames that can no longer be consumed come home
        immediately — the link may heal, but the flow-control state does
        not wait for it.
        """
        if self._closing or self.state != _UP:
            return
        self.state = _DOWN
        self.stats.disconnects += 1
        self._teardown_tasks()
        self._queue.clear()
        self.host.on_link_interrupted(self.shard_index)
        self._recovery = asyncio.create_task(self._recover())

    async def _recover(self) -> None:
        cfg = self.config
        if self.dial_address is not None and self.hello is not None:
            for attempt in range(cfg.reconnect_attempts):
                await asyncio.sleep(cfg.reconnect_delay_s * (attempt + 1))
                if self._closing or self.state != _DOWN:
                    return
                try:
                    reader, writer, decoder, backlog = await dial_shard(
                        self.dial_address,
                        self.hello,
                        expect_shard=self.shard_index,
                        timeout=cfg.handshake_timeout_s,
                    )
                except (ConnectionError, OSError, wire.WireError, asyncio.TimeoutError):
                    continue
                self.attach(reader, writer, decoder, backlog)
                return
        else:
            # Accepting side: the dialer redials on its own schedule; a
            # successful redial re-attaches through the worker's server.
            await asyncio.sleep(cfg.reconnect_grace_s)
            if self._closing or self.state != _DOWN:
                return
        self.state = _DEAD
        self.host.on_link_lost(self.shard_index)

    def close(self) -> None:
        """Final teardown (shutdown barrier): no recovery, no callbacks."""
        self._closing = True
        if self._recovery is not None:
            self._recovery.cancel()
            self._recovery = None
        self._teardown_tasks()
        self._queue.clear()
        self.state = _DEAD


# ================================================================== handshake
async def read_handshake(
    reader: asyncio.StreamReader, timeout: float
) -> Tuple[wire.WireMessage, wire.FrameDecoder, List[wire.WireMessage]]:
    """Read the first wire frame from a fresh stream, preserving the rest.

    Returns ``(first message, decoder, extra messages)``.  The decoder
    holds any partial frame that followed the first one in the same
    read and the extras any complete ones — the caller must hand both to
    :meth:`SocketLink.attach`, because on a mid-run redial the remote
    side may start routing peer frames the instant it attaches, and
    those bytes can coalesce with the hello reply.
    """

    async def _read() -> Tuple[wire.WireMessage, wire.FrameDecoder, List[wire.WireMessage]]:
        decoder = wire.FrameDecoder()
        while True:
            chunk = await reader.read(4096)
            if not chunk:
                raise ConnectionError("stream closed during handshake")
            messages = decoder.feed(chunk)
            if messages:
                return messages[0], decoder, messages[1:]

    return await asyncio.wait_for(_read(), timeout=timeout)


async def dial_shard(
    address: Tuple[str, int],
    hello: wire.ShardHello,
    expect_shard: int,
    timeout: float,
) -> Tuple[
    asyncio.StreamReader,
    asyncio.StreamWriter,
    wire.FrameDecoder,
    List[wire.WireMessage],
]:
    """Open a stream to a peer shard and run the hello exchange.

    Sends our :class:`~repro.runtime.wire.ShardHello`, waits for the
    acceptor's reply, and validates that the far end is the expected
    shard of the same run (token, shard count and ring size all match).
    Returns the stream plus the handshake's residual decoder state and
    any frames that arrived with the reply (pass all of it to
    :meth:`SocketLink.attach`).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*address), timeout=timeout
    )
    try:
        writer.write(wire.encode(hello))
        await writer.drain()
        reply, decoder, extras = await read_handshake(reader, timeout)
        validate_hello(reply, hello, expect_shard=expect_shard)
    except BaseException:
        writer.close()
        raise
    return reader, writer, decoder, extras


def validate_hello(
    msg: wire.WireMessage, ours: wire.ShardHello, expect_shard: Optional[int] = None
) -> wire.ShardHello:
    """Check a received hello against our own run facts.

    Raises :class:`~repro.runtime.wire.WireError` on any mismatch — a
    stream from another run (token), a differently sized cluster or a
    differently built overlay must never carry peer frames.
    """
    if not isinstance(msg, wire.ShardHello):
        raise wire.WireError(f"expected a shard hello, got {type(msg).__name__}")
    if msg.token != ours.token:
        raise wire.WireError("shard hello from a different cluster run (token mismatch)")
    if msg.num_shards != ours.num_shards or msg.ring_size != ours.ring_size:
        raise wire.WireError(
            f"shard hello topology mismatch: {msg.num_shards} shards / ring "
            f"{msg.ring_size} vs ours {ours.num_shards} / {ours.ring_size}"
        )
    if not (0 <= msg.shard_index < msg.num_shards) or msg.shard_index == ours.shard_index:
        raise wire.WireError(f"invalid peer shard index {msg.shard_index}")
    if expect_shard is not None and msg.shard_index != expect_shard:
        raise wire.WireError(
            f"expected shard {expect_shard} on this stream, got {msg.shard_index}"
        )
    return msg
