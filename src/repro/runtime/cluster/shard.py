"""One shard of a clustered live swarm.

A :class:`ShardSwarm` is a :class:`~repro.runtime.swarm.LiveSwarm` that
*builds* the whole overlay but *hosts* only the peers whose ring id falls
in its shard's range.  Everything the simulator's construction produces —
topology, bandwidth, latency, peer tables, DHT fingers, the churn
schedule and every seeded random stream — is deterministic in the
scenario spec, so the N worker processes build byte-identical overlays
independently and agree, without any synchronisation, on who exists,
who partners whom, and (by replaying the same churn draws at the same
boundaries) who leaves and joins when.  What *differs* per shard is the
live state: only the hosted peers run as tasks, and frames for peers
hosted elsewhere leave through a :class:`~repro.runtime.cluster.links.
SocketLink` instead of the loopback path.

Ring-id ranges partition the identifier space contiguously
(:meth:`ShardSwarm.shard_of`); ids are assigned uniformly at random by
the Rendezvous Point, so the ranges balance.  Cross-process schedule
coherence comes from two mechanisms:

* a shared **start instant** (``start_at``, CLOCK_MONOTONIC — comparable
  across processes on one machine) anchors every shard's period clock;
* the per-boundary **lateness exchange** (:meth:`_boundary_sync`): each
  shard reports its worst observed lateness to the coordinator and
  receives the cluster-wide maximum back, so the adaptive overload
  dilation of PR 4 stays *coherent across processes* — every shard
  stretches its schedule by the same amount at the same boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.obs import ObsConfig
from repro.runtime.cluster.links import Link, LinkConfig, SocketLink, SocketLinkStats
from repro.runtime.swarm import DEFAULT_TIME_SCALE, LiveSwarm
from repro.runtime.transport import TransportConfig
from repro.scenarios.spec import ScenarioSpec


class ClusterControl(Protocol):
    """The shard's handle on the coordinator (the worker implements it)."""

    async def exchange_lateness(self, round_index: int, worst: float) -> float:
        """Report this shard's lateness; return the cluster-wide worst."""
        ...  # pragma: no cover - protocol


def shard_of(ring_id: int, num_shards: int, id_space: int) -> int:
    """The shard index owning ``ring_id`` (contiguous ring ranges)."""
    return min(num_shards - 1, ring_id * num_shards // id_space)


class ShardSwarm(LiveSwarm):
    """A live swarm hosting one ring-range of a multi-process cluster.

    Args:
        spec: the full scenario (identical on every shard).
        shard_index: this worker's shard number in ``[0, num_shards)``.
        num_shards: total worker processes in the cluster.
        rounds / time_scale / transport: as for :class:`LiveSwarm`
            (cluster swarms always run on the wall clock — sockets are
            real I/O, which the virtual clock cannot jump over).
        link_config: TCP link knobs (reconnect budget, queue bound).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        shard_index: int,
        num_shards: int,
        rounds: Optional[int] = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        transport: Optional[TransportConfig] = None,
        link_config: Optional[LinkConfig] = None,
        batching: bool = True,
        delta_maps: bool = True,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        if not (0 <= shard_index < num_shards):
            raise ValueError(f"shard_index {shard_index} outside [0, {num_shards})")
        super().__init__(
            spec,
            rounds=rounds,
            time_scale=time_scale,
            transport=transport,
            clock="wall",
            batching=batching,
            delta_maps=delta_maps,
            obs=obs,
        )
        # Spans/flight events from this process carry the shard tag, so
        # the coordinator's merged view can attribute per-hop timestamps.
        self.obs.bind_shard(shard_index)
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.link_config = link_config if link_config is not None else LinkConfig()
        #: Socket links keyed by remote shard index (wired by the worker).
        self.links: Dict[int, SocketLink] = {}
        #: The coordinator handle for the lateness exchange (worker-set).
        self.control: Optional[ClusterControl] = None
        #: Shards declared lost after their link stayed down past budget.
        self.lost_shards: set = set()
        #: Frames that arrived for a peer this shard does not host.
        self.misrouted_frames = 0
        #: Worst cluster-wide period lateness seen (observability).
        self.worst_lateness_s = 0.0

    # ------------------------------------------------------------------ sharding
    def shard_of(self, ring_id: int) -> int:
        """The shard hosting ``ring_id`` (same function on every shard)."""
        return shard_of(ring_id, self.num_shards, self.id_space)

    def hosts(self, ring_id: int) -> bool:
        return self.shard_of(ring_id) == self.shard_index

    def shard_ring_ids(self, shard: int) -> List[int]:
        """Every known ring id owned by ``shard`` (alive or not)."""
        return [rid for rid in self.manager.nodes if self.shard_of(rid) == shard]

    # ----------------------------------------------------------------- transport
    def link_for(self, dst: int) -> Link:
        owner = self.shard_of(dst)
        if owner == self.shard_index:
            return self.loopback
        return self.links[owner]

    def hop_of(self, dst: int) -> Optional[int]:
        owner = self.shard_of(dst)
        return None if owner == self.shard_index else owner

    def receive_routed(self, src: int, dst: int, payload: bytes, data: bool) -> None:
        """A peer frame arrived over a socket link: deliver it locally.

        The loopback link is the single local tail of every delivery —
        loss injection (data frames), model latency and the bounded-inbox
        credit refunds apply to a routed frame exactly as to a local one.
        The originating shard already counted the send.
        """
        if not self.hosts(dst):
            self.misrouted_frames += 1
            self.messages_dropped += 1
            return
        self.loopback.send(src, dst, payload, data)

    def note_undeliverable(self, src: int, dst: int, data: bool) -> None:
        """A socket link dropped an outbound frame (dead shard or shed).

        The frame dies unseen by any receiver, so a data frame's credit
        is refunded by its own sender — otherwise the window towards the
        unreachable peer would leak a credit per attempt.
        """
        self.messages_dropped += 1
        if data:
            peer = self.peers.get(src)
            if peer is not None and not peer.stopped:
                peer.refund_data_credit(dst)

    # ----------------------------------------------------------- link lifecycle
    def on_link_interrupted(self, shard: int) -> None:
        """The stream to ``shard`` broke: bring every in-flight credit home.

        Mirrors the peer-departure rule — credits spent on frames the
        dead connection swallowed can never be granted back, so every
        hosted peer's send window towards every peer of that shard is
        reset to a full window *now*, while the link attempts recovery.
        Counted per reset in the transport stats (``link_resets``).
        """
        self.obs.flight("link_interrupted", remote_shard=shard)
        remote_ids = self.shard_ring_ids(shard)
        for peer in self.peers.values():
            for rid in remote_ids:
                peer.reset_partner_link(rid)

    def on_link_restored(self, shard: int) -> None:
        """The stream healed: nothing to repair — windows were reset on
        the way down, so both sides meet fresh flow-control state."""
        self.obs.flight("link_restored", remote_shard=shard)

    def on_link_lost(self, shard: int) -> None:
        """The link stayed down past its recovery budget: presume the
        shard (and every peer it hosted) failed.

        Its peers are marked departed in the local overlay view, so the
        liveness oracle, DHT routing and the map quorum all route around
        them — the cluster analogue of a massive correlated failure.  The
        replicated churn driver keeps drawing for them (the streams must
        stay aligned on the surviving shards), but
        :meth:`~repro.runtime.swarm.LiveSwarm._retire_peer` finds them
        already dead and skips.
        """
        if shard in self.lost_shards:
            return
        self.lost_shards.add(shard)
        # A SIGKILLed shard cannot dump its own flight ring; the
        # survivors' postmortems are the readable record of its death.
        self.obs.flight("link_lost", remote_shard=shard)
        self.obs.postmortem(f"shard {shard} presumed dead (link recovery exhausted)")
        for rid in self.shard_ring_ids(shard):
            node = self.manager.nodes.get(rid)
            if node is not None and node.alive:
                node.mark_departed()
        self.on_link_interrupted(shard)
        # Survivors re-partner: drop the dead shard's peers from every
        # neighbour table and refill the slots from the alive population,
        # exactly as a churn boundary would after a massive failure.
        self.manager.repair_neighbors()

    # ------------------------------------------------------------------ clocking
    async def _boundary_sync(self, round_index: int, own_lateness: float) -> None:
        worst = max(self._worst_lateness, own_lateness)
        if self.control is not None:
            worst = max(worst, await self.control.exchange_lateness(round_index, worst))
            self._worst_lateness = worst
        if worst > self.worst_lateness_s:
            self.worst_lateness_s = worst
        self._maybe_dilate(own_lateness)

    # ------------------------------------------------------------------- summary
    def socket_links(self) -> List[Dict[str, int]]:
        """Per shard-pair socket-link stats rows (``src_shard`` is us).

        Exposes every :class:`~repro.runtime.cluster.links.
        SocketLinkStats` field per remote shard instead of only the
        summed :meth:`socket_summary` — link resets show up here as the
        ``disconnects``/``reconnects`` pair.  Rows ride the obs export
        (``obs["socket_links"]``) so they survive the worker process.
        """
        rows: List[Dict[str, int]] = []
        for other in sorted(self.links):
            link = self.links[other]
            row: Dict[str, int] = {
                "src_shard": self.shard_index,
                "dst_shard": other,
            }
            row.update({name: int(value) for name, value in vars(link.stats).items()})
            row["lost"] = int(other in self.lost_shards)
            rows.append(row)
        return rows

    def _telemetry_extras(self) -> Dict[str, object]:
        """Ship per-pair socket counters in each telemetry frame body."""
        if not self.links:
            return {}
        socket: Dict[str, Dict[str, int]] = {}
        for other in sorted(self.links):
            stats = self.links[other].stats
            socket[str(other)] = {
                "frames_out": stats.frames_out,
                "frames_in": stats.frames_in,
                "bytes_out": stats.bytes_out,
                "bytes_in": stats.bytes_in,
                "disconnects": stats.disconnects,
                "reconnects": stats.reconnects,
                "lost": int(other in self.lost_shards),
            }
        return {"socket": socket}

    def _collect(self, wall_time: float):
        result = super()._collect(wall_time)
        if result.obs is not None and self.links:
            result.obs["socket_links"] = self.socket_links()
        return result

    def socket_summary(self) -> Dict[str, int]:
        """Summed socket-link counters of this shard (for the run report)."""
        totals = SocketLinkStats()
        for link in self.links.values():
            for name in vars(totals):
                setattr(totals, name, getattr(totals, name) + getattr(link.stats, name))
        summary = dict(vars(totals))
        summary["links_lost"] = len(self.lost_shards)
        summary["misrouted_frames"] = self.misrouted_frames
        return summary

    def close_links(self) -> None:
        """Final teardown of every socket link (shutdown barrier)."""
        for link in self.links.values():
            link.close()

    # ------------------------------------------------------------- partitioning
    def hosted_ring_ids(self) -> List[int]:
        """The ring ids this shard hosts right now (diagnostics)."""
        return sorted(self.peers)

    def ring_range(self) -> Tuple[int, int]:
        """The half-open ``[lo, hi)`` ring-id range this shard owns."""
        space = self.id_space
        lo = (self.shard_index * space + self.num_shards - 1) // self.num_shards
        # First id NOT owned: smallest id mapping to the next shard.
        hi = ((self.shard_index + 1) * space + self.num_shards - 1) // self.num_shards
        return lo, hi if self.shard_index < self.num_shards - 1 else space
