"""The Urgent Line mechanism (Section 4.3).

The buffer is split by the *urgent line* at ``id_urgent = id_head + α · B``:
segments below the line that have not been received are predicted to be
missed by the gossip data scheduling and become candidates for the on-demand
DHT retrieval.  The urgent ratio ``α`` is tuned online:

* lower bound / initial value (equations (8)-(9)):
  ``α > (p / B) · max(τ, t_fetch)``;
* **overdue data** — a pre-fetched segment arrived after its deadline:
  the line was too short, so ``α ← α + p · t_hop / B``;
* **repeated data** — a pre-fetched segment was also obtained in time by the
  normal scheduling: the line was too long, so ``α ← α − p · t_hop / B``
  (never below the lower bound).

Pre-fetch is only triggered when ``0 < N_miss ≤ l``; a larger backlog is left
to the scheduler to avoid a pre-fetch traffic storm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class MissPrediction:
    """Result of one urgent-line evaluation."""

    urgent_id: int
    missed_segment_ids: tuple[int, ...]
    triggered: bool

    @property
    def miss_count(self) -> int:
        return len(self.missed_segment_ids)


@dataclass
class UrgentLine:
    """Adaptive urgent-ratio state of one node.

    Attributes:
        buffer_capacity: ``B``.
        playback_rate: ``p``.
        period: scheduling period ``τ`` (seconds).
        hop_latency: ``t_hop`` (seconds).
        fetch_time: ``t_fetch`` (seconds), the expected DHT pre-fetch latency.
        prefetch_limit: ``l``, the per-period pre-fetch cap.
        alpha: current urgent ratio.
    """

    buffer_capacity: int
    playback_rate: float
    period: float
    hop_latency: float
    fetch_time: float
    prefetch_limit: int
    alpha: float = field(default=0.0)
    alpha_floor: float = field(default=0.0)
    adjustments: int = 0

    def __post_init__(self) -> None:
        if self.buffer_capacity <= 0 or self.playback_rate <= 0 or self.period <= 0:
            raise ValueError("buffer_capacity, playback_rate and period must be positive")
        if self.hop_latency < 0 or self.fetch_time < 0:
            raise ValueError("latencies must be non-negative")
        floor = (self.playback_rate / self.buffer_capacity) * max(
            self.period, self.fetch_time
        )
        self.alpha_floor = floor
        if self.alpha <= 0.0:
            self.alpha = floor

    # ------------------------------------------------------------------ queries
    @property
    def alpha_step(self) -> float:
        """Per-adjustment change of ``α``: ``p · t_hop / B``."""
        return self.playback_rate * self.hop_latency / self.buffer_capacity

    def urgent_span(self) -> int:
        """Number of segment ids covered by the urgent region (``α · B``)."""
        return max(1, int(round(self.alpha * self.buffer_capacity)))

    def urgent_id(self, head_id: int) -> int:
        """``id_urgent = id_head + α · B`` (equation (4))."""
        return head_id + self.urgent_span()

    # --------------------------------------------------------------- prediction
    def predict(
        self,
        head_id: int,
        held_ids: Iterable[int],
        newest_available_id: int,
        already_scheduled: Iterable[int] = (),
    ) -> MissPrediction:
        """Predict the segments the scheduler is about to miss.

        Args:
            head_id: reference id of the buffer head / playback point.
            held_ids: segment ids currently in the buffer.
            newest_available_id: newest segment id that exists in the system
                (a segment not yet generated cannot be "missed").
            already_scheduled: ids already requested this period by the data
                scheduler (they are not predicted missed).

        Returns:
            The missed ids in ascending order and whether the on-demand
            retrieval should run (``0 < N_miss ≤ l``).
        """
        held = set(held_ids)
        scheduled = set(already_scheduled)
        upper = min(self.urgent_id(head_id), newest_available_id)
        missed: List[int] = [
            sid
            for sid in range(max(0, head_id), upper + 1)
            if sid not in held and sid not in scheduled
        ]
        triggered = 0 < len(missed) <= self.prefetch_limit
        return MissPrediction(
            urgent_id=self.urgent_id(head_id),
            missed_segment_ids=tuple(missed),
            triggered=triggered,
        )

    # --------------------------------------------------------------- adaptation
    def record_overdue(self, count: int = 1) -> float:
        """Pre-fetched segments arrived late: enlarge the urgent region."""
        if count > 0:
            self.alpha += self.alpha_step * count
            self.adjustments += count
        return self.alpha

    def record_repeated(self, count: int = 1) -> float:
        """Pre-fetched segments also arrived via scheduling: shrink the region."""
        if count > 0:
            self.alpha = max(self.alpha_floor, self.alpha - self.alpha_step * count)
            self.adjustments += count
        return self.alpha

    def update(self, overdue: int, repeated: int) -> float:
        """Apply both adaptation rules for one period and return ``α``."""
        self.record_overdue(overdue)
        self.record_repeated(repeated)
        return self.alpha
