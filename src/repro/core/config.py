"""System configuration.

Defaults follow Section 5.2 of the paper exactly:

* streaming rate 300 Kbps, 30 Kbit segments, hence playback rate ``p = 10``
  segments per second;
* per-node buffer ``B = 600`` segments (60 s of media);
* inbound rates uniform in [300 Kbps, 1 Mbps] — i.e. ``I ∈ [10, 33]``
  segments/s with mean 15 — and outbound rates likewise; the source has zero
  inbound and outbound ``≈ 100``;
* scheduling period ``τ = 1.0`` s, ``M = 5`` connected neighbours,
  ``k = 4`` backup replicas, at most ``l = 5`` pre-fetches per period;
* dynamic environments churn 5 % of nodes out and 5 % in per period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.churn import ChurnSchedule
from repro.streaming.segment import DEFAULT_SEGMENT_BITS


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of a streaming simulation run.

    Attributes:
        num_nodes: number of overlay nodes, including the media source.
        id_space: DHT identifier-space size ``N`` (must exceed ``num_nodes``);
            ``0`` means "pick the smallest power of two ≥ 4 × num_nodes,
            but at least 8192" to mirror the paper's sparse-ring setting.
        connected_neighbors: ``M``, gossip neighbours per node.
        overheard_capacity: ``H``, overheard nodes remembered per node.
        buffer_capacity: ``B``, segments the FIFO buffer holds.
        playback_rate: ``p``, segments played per second.
        scheduling_period: ``τ``, seconds between buffer-map exchanges.
        mean_inbound: mean inbound rate ``I`` in segments/s.
        min_inbound / max_inbound: the uniform range inbound rates are drawn
            from in heterogeneous environments.
        source_outbound: outbound rate of the media source (segments/s).
        heterogeneous: draw per-node rates (True) or give everyone the mean.
        backup_replicas: ``k``, nodes each segment is backed up on.
        prefetch_limit: ``l``, maximum pre-fetches per node per period.
        leave_fraction / join_fraction: churn per period (0.05 in the paper's
            dynamic environments, 0 in static).
        churn_schedule: optional time-varying churn profile (see
            :mod:`repro.net.churn`); when set it drives the churn process
            and the flat fractions above are ignored.  The scenario engine
            fills this in for non-constant schedules.
        abrupt_leave_fraction: fraction of departures that are abrupt failures
            (no backup handover); the rest leave gracefully and hand their VoD
            backup to their counter-clockwise closest neighbour.
        segment_bits: segment payload size for overhead accounting.
        startup_segments: buffered segments required before playback starts
            (the startup buffering delay; playback then begins at the oldest
            buffered segment, so slower nodes automatically start with a
            larger safety lag).
        playback_lag_segments: how far behind the live edge a node anchors its
            fetch window *before* playback has started (a joining node
            "follows its neighbours' current steps" rather than chasing the
            beginning of the stream).  Gossip needs several scheduling periods
            to carry a segment from the source to every node, so this lag is
            what turns "eventually received" into "received before the
            deadline".
        stall_on_miss: playback discipline.  True (default) models a real
            streaming client that rebuffers when data is missing — the
            paper's per-round continuity metric is then the fraction of
            non-stalled nodes.  False models hard live deadlines where
            missing segments are skipped.
        scheduling_window: how many segments past the playback point the
            scheduler considers each round.  The paper considers the whole
            buffer; bounding the window is a pure-performance measure (the
            inbound budget ``I·τ ≈ 15`` makes far-ahead segments unschedulable
            anyway) and is set generously by default.
        hop_latency_ms: assumed mean one-hop latency ``t_hop``; ``None``
            estimates it from the trace latencies (the paper uses ≈ 50 ms).
        rounds: number of scheduling periods to simulate.
        seed: root seed for every random stream.
    """

    num_nodes: int = 1000
    id_space: int = 0
    connected_neighbors: int = 5
    overheard_capacity: int = 20
    buffer_capacity: int = 600
    playback_rate: float = 10.0
    scheduling_period: float = 1.0
    mean_inbound: float = 15.0
    min_inbound: float = 10.0
    max_inbound: float = 33.0
    source_outbound: float = 100.0
    heterogeneous: bool = True
    backup_replicas: int = 4
    prefetch_limit: int = 5
    leave_fraction: float = 0.0
    join_fraction: float = 0.0
    churn_schedule: Optional[ChurnSchedule] = None
    abrupt_leave_fraction: float = 0.5
    segment_bits: int = DEFAULT_SEGMENT_BITS
    startup_segments: int = 10
    playback_lag_segments: int = 60
    stall_on_miss: bool = True
    scheduling_window: int = 150
    hop_latency_ms: Optional[float] = None
    rounds: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be at least 2 (source + one peer)")
        if self.id_space and self.id_space <= self.num_nodes:
            raise ValueError("id_space must exceed num_nodes (sparse ring)")
        if self.connected_neighbors < 1:
            raise ValueError("connected_neighbors must be >= 1")
        if self.buffer_capacity < self.playback_rate * self.scheduling_period:
            raise ValueError("buffer must hold at least one round of playback")
        if self.playback_rate <= 0 or self.scheduling_period <= 0:
            raise ValueError("playback_rate and scheduling_period must be positive")
        if not (0 < self.min_inbound <= self.mean_inbound <= self.max_inbound):
            raise ValueError("need 0 < min_inbound <= mean_inbound <= max_inbound")
        if self.backup_replicas < 1:
            raise ValueError("backup_replicas must be >= 1")
        if self.prefetch_limit < 0:
            raise ValueError("prefetch_limit must be >= 0")
        if not (0 <= self.leave_fraction < 1) or not (0 <= self.join_fraction <= 1):
            raise ValueError(
                "invalid churn fractions: need 0 <= leave_fraction < 1 and "
                "0 <= join_fraction <= 1"
            )
        if not (0.0 <= self.abrupt_leave_fraction <= 1.0):
            raise ValueError("abrupt_leave_fraction must be in [0, 1]")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.startup_segments < 1:
            raise ValueError("startup_segments must be >= 1")
        if self.playback_lag_segments < 0:
            raise ValueError("playback_lag_segments must be >= 0")
        if self.playback_lag_segments >= self.buffer_capacity:
            raise ValueError("playback_lag_segments must fit inside the buffer")
        if self.scheduling_window < self.segments_per_round:
            raise ValueError("scheduling_window must cover at least one round")

    # ------------------------------------------------------------------ derived
    @property
    def effective_id_space(self) -> int:
        """The identifier-space size actually used (``N``)."""
        if self.id_space:
            return self.id_space
        target = max(8192, 4 * self.num_nodes)
        return 1 << math.ceil(math.log2(target))

    @property
    def segments_per_round(self) -> int:
        """Segments consumed per scheduling period (``p · τ``)."""
        return max(1, int(round(self.playback_rate * self.scheduling_period)))

    @property
    def is_dynamic(self) -> bool:
        """True when churn is configured.

        A schedule, when present, drives the churn process and the flat
        fractions are ignored — so it alone decides.
        """
        if self.churn_schedule is not None:
            return not self.churn_schedule.is_static
        return self.leave_fraction > 0 or self.join_fraction > 0

    @property
    def duration(self) -> float:
        """Total simulated seconds."""
        return self.rounds * self.scheduling_period

    def expected_fetch_time(self, hop_latency_s: float) -> float:
        """``t_fetch ≈ (log2(n)/2 + 3) · t_hop`` (equation (7))."""
        n = max(2, self.num_nodes)
        return (math.log2(n) / 2.0 + 3.0) * hop_latency_s

    def initial_alpha(self, hop_latency_s: float) -> float:
        """Lower bound / initial value of the urgent ratio ``α`` (eq. (9))."""
        t_fetch = self.expected_fetch_time(hop_latency_s)
        return (self.playback_rate / self.buffer_capacity) * max(
            self.scheduling_period, t_fetch
        )

    def alpha_step(self, hop_latency_s: float) -> float:
        """Per-adjustment increment/decrement of ``α``: ``p · t_hop / B``."""
        return self.playback_rate * hop_latency_s / self.buffer_capacity

    # ------------------------------------------------------------------ variants
    def static_variant(self) -> "SystemConfig":
        """Copy of this config with churn (flat and scheduled) disabled."""
        return replace(
            self, leave_fraction=0.0, join_fraction=0.0, churn_schedule=None
        )

    def dynamic_variant(self, fraction: float = 0.05) -> "SystemConfig":
        """Copy with the paper's 5 %-leave / 5 %-join churn (or ``fraction``)."""
        return replace(
            self, leave_fraction=fraction, join_fraction=fraction,
            churn_schedule=None,
        )

    def homogeneous_variant(self) -> "SystemConfig":
        """Copy with every node given the mean inbound/outbound rate."""
        return replace(self, heterogeneous=False)

    def with_seed(self, seed: int) -> "SystemConfig":
        """Copy with a different root seed."""
        return replace(self, seed=seed)

    def scaled(self, num_nodes: int, rounds: Optional[int] = None) -> "SystemConfig":
        """Copy with a different overlay size (and optionally round count)."""
        return replace(
            self, num_nodes=num_nodes, rounds=self.rounds if rounds is None else rounds
        )


#: The exact parameterisation of the paper's Section 5.2 evaluation.
PAPER_DEFAULTS = SystemConfig()
