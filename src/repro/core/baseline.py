"""The CoolStreaming baseline node.

CoolStreaming/DONet is the representative gossip-based P2P streaming system
the paper compares against: the same periodic buffer-map exchange and pull
scheduling over ``M`` connected neighbours, but

* the requesting priority is plain *rarest-first* (``1 / n_i``, fewer
  suppliers = higher priority), and
* there is no DHT, no urgent line and no on-demand pre-fetch — a segment the
  gossip misses is simply lost.

Everything else (buffers, bandwidth, membership, churn handling) is shared
with :class:`~repro.core.node.StreamingNode` so that the comparison isolates
exactly the mechanisms the paper adds.
"""

from __future__ import annotations

from repro.core.node import StreamingNode


class CoolStreamingNode(StreamingNode):
    """A node running the CoolStreaming (rarest-first, no pre-fetch) policy."""

    POLICY = "rarest_first"

    #: CoolStreaming nodes never pre-fetch; the system checks this flag.
    SUPPORTS_PREFETCH = False
