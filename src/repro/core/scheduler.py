"""Data scheduling: segment priorities and the greedy supplier assignment.

Every scheduling period the Data Scheduler collects, from the buffer maps of
its connected neighbours, the set of *fresh* segments (available at some
neighbour, absent locally) and decides which to request from whom.

Priorities (equations (1)-(3))
------------------------------
* **urgency** of segment ``i``: with the best available receiving rate
  ``R_i = max_j R_ij``, the expected slack before its deadline is
  ``t_i = (id_i - id_play) / p - 1 / R_i``; urgency is ``1 / t_i`` (a segment
  whose slack is already gone gets the maximum urgency).
* **rarity** of segment ``i``: the probability that it is about to be evicted
  from *all* of its suppliers' FIFO buffers, estimated as the product of
  ``p_ij / B`` over its suppliers, where ``p_ij`` is the segment's distance
  from the tail of supplier ``j``'s buffer.  (The paper argues this is more
  informative than the classic ``1 / n_i`` rarest-first count, which the
  CoolStreaming baseline uses.)
* **priority** = ``max(urgency, rarity)``.

Supplier assignment (Algorithm 1)
---------------------------------
Finding the assignment that minimises deadline misses is NP-hard (parallel
machine scheduling), so the scheduler greedily walks the segments in
descending priority, keeps a queueing time ``τ(j)`` per supplier, and gives
each segment to the supplier that can deliver it earliest, provided that the
expected completion time stays within the scheduling period; at most
``min(m, I · τ)`` segments are scheduled per period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

#: Urgency assigned to a segment whose deadline slack is already non-positive.
MAX_URGENCY = 1.0e9


@dataclass(frozen=True)
class SupplierOffer:
    """One neighbour's offer of one segment.

    Attributes:
        supplier_id: the neighbour that advertises the segment.
        position_from_tail: ``p_ij`` — distance of the segment from the tail
            of that neighbour's FIFO buffer (large = about to be evicted).
        rate: estimated receiving rate from that neighbour (segments/s).
    """

    supplier_id: int
    position_from_tail: int
    rate: float


@dataclass(frozen=True)
class SegmentCandidate:
    """A fresh segment together with every neighbour able to supply it."""

    segment_id: int
    offers: tuple[SupplierOffer, ...]

    def supplier_ids(self) -> List[int]:
        return [offer.supplier_id for offer in self.offers]

    def best_rate(self) -> float:
        return max((offer.rate for offer in self.offers), default=0.0)


@dataclass(frozen=True)
class ScheduledRequest:
    """Output row of Algorithm 1: fetch ``segment_id`` from ``supplier_id``."""

    segment_id: int
    supplier_id: int
    expected_time: float
    priority: float


@dataclass(frozen=True)
class PriorityBreakdown:
    """Urgency, rarity and combined priority of one candidate (for inspection)."""

    segment_id: int
    urgency: float
    rarity: float
    priority: float


# --------------------------------------------------------------------------- #
# Priority computation
# --------------------------------------------------------------------------- #
def compute_urgency(
    segment_id: int,
    play_id: int,
    playback_rate: float,
    best_rate: float,
) -> float:
    """Urgency of a segment (equation (1)).

    ``t_i = (id_i - id_play) / p - 1 / R_i``; urgency is ``1 / t_i``, and a
    segment with no positive slack left gets :data:`MAX_URGENCY`.
    """
    if playback_rate <= 0:
        raise ValueError("playback_rate must be positive")
    if best_rate <= 0:
        return MAX_URGENCY
    slack = (segment_id - play_id) / playback_rate - 1.0 / best_rate
    if slack <= 0:
        return MAX_URGENCY
    return 1.0 / slack


def compute_rarity(
    positions_from_tail: Sequence[int],
    buffer_capacity: int,
) -> float:
    """Rarity of a segment (equation (2)).

    The probability that the segment will be evicted from every supplier's
    FIFO buffer, estimated as ``∏_j (p_ij / B)``.
    """
    if buffer_capacity <= 0:
        raise ValueError("buffer_capacity must be positive")
    if not positions_from_tail:
        return 1.0  # no supplier at all: maximally rare
    rarity = 1.0
    for position in positions_from_tail:
        rarity *= min(max(position, 0), buffer_capacity) / buffer_capacity
    return rarity


def compute_priority(urgency: float, rarity: float) -> float:
    """Combined requesting priority (equation (3)): ``max(urgency, rarity)``."""
    return max(urgency, rarity)


def rarest_first_priority(supplier_count: int) -> float:
    """The CoolStreaming baseline priority ``1 / n_i`` (fewer suppliers = rarer)."""
    if supplier_count <= 0:
        return MAX_URGENCY
    return 1.0 / supplier_count


def bucket_priority(priority: float, base: float = 8.0) -> float:
    """Coarsen a continuous priority into factor-of-``base`` bands.

    The urgency/rarity priorities of equations (1)-(3) are continuous, so no
    two segments ever tie exactly and the scheduler would impose one strict
    global order — every node then chases the very same segments, which is
    exactly the convoy behaviour rarest-first avoids.  Segments whose
    priorities fall in the same band are for all practical purposes equally
    important (urgency is only a meaningful signal when the deadline is
    actually looming), so the (randomised) tie-break decides among them.
    """
    if base <= 1.0:
        raise ValueError("base must be > 1")
    if priority >= MAX_URGENCY:
        return MAX_URGENCY
    if priority <= 0.0:
        return 0.0
    return float(base ** math.floor(math.log(priority, base)))


def prioritize_candidates(
    candidates: Sequence[SegmentCandidate],
    play_id: int,
    playback_rate: float,
    buffer_capacity: int,
) -> List[PriorityBreakdown]:
    """Compute the full urgency/rarity/priority breakdown for every candidate."""
    breakdown: List[PriorityBreakdown] = []
    for candidate in candidates:
        urgency = compute_urgency(
            candidate.segment_id, play_id, playback_rate, candidate.best_rate()
        )
        rarity = compute_rarity(
            [offer.position_from_tail for offer in candidate.offers],
            buffer_capacity,
        )
        breakdown.append(
            PriorityBreakdown(
                segment_id=candidate.segment_id,
                urgency=urgency,
                rarity=rarity,
                priority=compute_priority(urgency, rarity),
            )
        )
    return breakdown


# --------------------------------------------------------------------------- #
# Algorithm 1: greedy supplier assignment
# --------------------------------------------------------------------------- #
def schedule_requests(
    candidates: Sequence[SegmentCandidate],
    priorities: Mapping[int, float],
    inbound_rate: float,
    period: float,
    supplier_rate: Optional[Callable[[int, SupplierOffer], float]] = None,
    tiebreak_rng: Optional[np.random.Generator] = None,
) -> List[ScheduledRequest]:
    """Greedy supplier assignment (Algorithm 1).

    Args:
        candidates: the fresh segments with their supplier offers.
        priorities: requesting priority per segment id (any real numbers;
            higher is scheduled earlier).
        inbound_rate: local inbound capacity ``I`` in segments/s; at most
            ``I · period`` segments are scheduled.
        period: the scheduling period ``τ`` in seconds.
        supplier_rate: optional override of the sending rate used for a given
            offer (defaults to the offer's own ``rate``).
        tiebreak_rng: optional random stream used to order candidates of
            (near-)equal priority.  The paper does not prescribe a tie-break;
            randomising it keeps the segments fetched by neighbouring nodes
            diverse, which is what lets them trade with each other instead of
            all queueing on the same supplier.  ``None`` breaks ties by
            ascending segment id (deterministic, useful in tests).

    Returns:
        The scheduled requests in the order they were assigned (descending
        priority), each with its chosen supplier and expected receive time.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if inbound_rate < 0:
        raise ValueError("inbound_rate must be >= 0")

    if tiebreak_rng is None:
        tiebreak = {c.segment_id: float(c.segment_id) for c in candidates}
    else:
        tiebreak = {
            c.segment_id: float(tiebreak_rng.random()) for c in candidates
        }
    ordered = sorted(
        candidates,
        key=lambda c: (
            -priorities.get(c.segment_id, 0.0),
            tiebreak[c.segment_id],
            c.segment_id,
        ),
    )
    max_requests = min(len(ordered), int(inbound_rate * period))
    queue_time: Dict[int, float] = {}
    requests: List[ScheduledRequest] = []

    for candidate in ordered[:max_requests] if max_requests else []:
        best_time = math.inf
        best_supplier: Optional[int] = None
        for offer in candidate.offers:
            rate = offer.rate if supplier_rate is None else supplier_rate(
                candidate.segment_id, offer
            )
            if rate <= 0:
                continue
            transfer_time = 1.0 / rate
            ready_at = transfer_time + queue_time.get(offer.supplier_id, 0.0)
            # The completion must both beat the best alternative and fit the
            # scheduling period, exactly as in Algorithm 1's double condition.
            if ready_at < best_time and ready_at < period:
                best_time = ready_at
                best_supplier = offer.supplier_id
        if best_supplier is not None:
            queue_time[best_supplier] = best_time
            requests.append(
                ScheduledRequest(
                    segment_id=candidate.segment_id,
                    supplier_id=best_supplier,
                    expected_time=best_time,
                    priority=priorities.get(candidate.segment_id, 0.0),
                )
            )
    return requests


@dataclass
class DataScheduler:
    """Stateful wrapper binding the priority policy to Algorithm 1.

    Two policies are provided:

    * ``"continustreaming"`` — the paper's ``max(urgency, rarity)`` priority;
    * ``"rarest_first"`` — the CoolStreaming baseline ``1 / n_i``.
    """

    playback_rate: float
    buffer_capacity: int
    period: float
    policy: str = "continustreaming"
    tiebreak_rng: Optional[np.random.Generator] = None
    quantize_priorities: bool = True
    last_breakdown: List[PriorityBreakdown] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.policy not in ("continustreaming", "rarest_first"):
            raise ValueError(f"unknown scheduling policy {self.policy!r}")

    def priorities_for(
        self, candidates: Sequence[SegmentCandidate], play_id: int
    ) -> Dict[int, float]:
        """Requesting priority per candidate segment id under the policy."""
        if self.policy == "rarest_first":
            self.last_breakdown = []
            return {
                c.segment_id: rarest_first_priority(len(c.offers)) for c in candidates
            }
        breakdown = prioritize_candidates(
            candidates, play_id, self.playback_rate, self.buffer_capacity
        )
        self.last_breakdown = breakdown
        if self.quantize_priorities:
            return {b.segment_id: bucket_priority(b.priority) for b in breakdown}
        return {b.segment_id: b.priority for b in breakdown}

    def schedule(
        self,
        candidates: Sequence[SegmentCandidate],
        play_id: int,
        inbound_rate: float,
    ) -> List[ScheduledRequest]:
        """Prioritise the candidates and run Algorithm 1."""
        priorities = self.priorities_for(candidates, play_id)
        return schedule_requests(
            candidates,
            priorities,
            inbound_rate,
            self.period,
            tiebreak_rng=self.tiebreak_rng,
        )
