"""Core contribution: the ContinuStreaming node and system, plus the baseline.

* :mod:`repro.core.config` — every tunable of the paper's evaluation in one
  validated dataclass.
* :mod:`repro.core.scheduler` — urgency/rarity priorities (equations (1)-(3))
  and the greedy supplier assignment of Algorithm 1; also the rarest-first
  priority used by the CoolStreaming baseline.
* :mod:`repro.core.urgent_line` — the Urgent Line predictor with its
  adaptively tuned urgent ratio ``alpha`` (equations (4), (8), (9) and the
  overdue/repeated update rules).
* :mod:`repro.core.ondemand` — Algorithm 2: DHT location of the ``k`` backup
  holders and selection of the best on-demand supplier.
* :mod:`repro.core.backup` — the per-node VoD Data Backup store and the
  responsibility rule of equation (5), including leave-time handover.
* :mod:`repro.core.rate_controller` — per-neighbour receive-rate estimation.
* :mod:`repro.core.node` / :mod:`repro.core.baseline` /
  :mod:`repro.core.continu` — node state machines.
* :mod:`repro.core.phases` — the pluggable round pipeline: one
  :class:`~repro.core.phases.base.Phase` per step of the scheduling period,
  the shared :class:`~repro.core.phases.base.RoundContext`, and the
  :class:`~repro.core.phases.registry.ProtocolRegistry` that maps protocol
  names to node factories and default pipelines.
* :mod:`repro.core.overlay` — overlay construction and maintenance
  (topology, partnerships, DHT fingers, churn-time admission/removal).
* :mod:`repro.core.system` — the thin facade tying protocol, overlay and
  the discrete-event engine together, producing the metrics the paper
  reports.
"""

from repro.core.baseline import CoolStreamingNode
from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.core.overlay import OverlayManager
from repro.core.phases import (
    Phase,
    PhaseReport,
    ProtocolRegistry,
    RoundContext,
    StreamingProtocol,
)
from repro.core.system import SimulationResult, StreamingSystem

__all__ = [
    "SystemConfig",
    "StreamingNode",
    "CoolStreamingNode",
    "ContinuStreamingNode",
    "StreamingSystem",
    "SimulationResult",
    "OverlayManager",
    "Phase",
    "PhaseReport",
    "RoundContext",
    "StreamingProtocol",
    "ProtocolRegistry",
]
