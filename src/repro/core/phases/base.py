"""The round-pipeline contract: :class:`Phase`, :class:`RoundContext`,
:class:`PhaseReport`.

A streaming protocol is a sequence of :class:`Phase` objects.  Every
scheduling period the :class:`~repro.core.system.StreamingSystem` facade
builds one :class:`RoundContext` — the shared, mutable per-round state that
used to live in ``StreamingSystem`` attributes and ``step_round`` locals —
and feeds it through the pipeline.  Phases communicate exclusively through
the context: earlier phases fill in fields (buffer-map snapshots, bandwidth
budgets, urgent-line predictions), later phases consume them and accumulate
the outcome counters that become the round's
:class:`~repro.core.system.RoundReport`.

Two timing groups exist.  ``timing = "start"`` phases run when the round
begins (simulated time ``round_start``); ``timing = "end"`` phases run when
the period elapses (``round_start + period``).  Both groups execute in
pipeline order within their group, driven by events on the discrete-event
:class:`~repro.sim.engine.Simulator` — phases may schedule additional
intra-round events (e.g. delayed DHT fetch completions) through ``ctx.sim``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.net.message import MessageLedger
from repro.sim.engine import Simulator
from repro.streaming.buffermap import BufferMap
from repro.streaming.playback import ContinuityTracker
from repro.streaming.segment import Segment
from repro.streaming.source import MediaSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.overlay import OverlayManager

#: Phase timing groups: at the start of the period / when the period elapses.
START = "start"
END = "end"


@dataclass
class PhaseReport:
    """What one phase did during one round (diagnostics and taps).

    Attributes:
        phase: the reporting phase's :attr:`Phase.name`.
        details: free-form numeric facts (counts, totals) for analysis.
    """

    phase: str
    details: Dict[str, float] = field(default_factory=dict)


@dataclass
class RoundContext:
    """Shared state of one scheduling period, threaded through the pipeline.

    The first block identifies the round and the world it runs in; the
    second block is filled in by early phases for later ones; the third
    block accumulates the outcome counters the facade turns into a
    :class:`~repro.core.system.RoundReport`.

    Heavyweight collaborators (``sim``, ``tracker``, ``manager``) are
    optional so unit tests can exercise a single phase against a minimal
    synthetic context.
    """

    config: SystemConfig
    protocol: str
    round_index: int
    round_start: float
    period: float
    rng: np.random.Generator
    ledger: MessageLedger
    nodes: Dict[int, StreamingNode]
    source: MediaSource
    source_id: int
    sim: Optional[Simulator] = None
    tracker: Optional[ContinuityTracker] = None
    manager: Optional["OverlayManager"] = None

    # -- filled by early phases for later ones ------------------------------
    newest_segment_id: int = -1
    alive_ids: List[int] = field(default_factory=list)
    consumers: List[int] = field(default_factory=list)
    snapshots: Dict[int, BufferMap] = field(default_factory=dict)
    predictions: Dict[int, List[int]] = field(default_factory=dict)
    inbound_budget: Dict[int, float] = field(default_factory=dict)
    outbound_budget: Dict[int, float] = field(default_factory=dict)

    # -- outcome counters ---------------------------------------------------
    segments_scheduled: int = 0
    segments_prefetched: int = 0
    prefetch_triggers: int = 0
    nodes_playing: int = 0
    continuity: float = 0.0
    nodes_joined: int = 0
    nodes_left: int = 0
    phase_reports: List[PhaseReport] = field(default_factory=list)

    @property
    def round_end(self) -> float:
        """Simulated time at which the period elapses."""
        return self.round_start + self.period

    def node(self, node_id: int) -> StreamingNode:
        """Access a node by ring id."""
        return self.nodes[node_id]

    def consider_backup(self, node: StreamingNode, segment_id: int) -> None:
        """Offer ``segment_id`` to ``node``'s VoD backup store (eq. (5)).

        CoolStreaming nodes have no backup store, so this is a no-op for
        them; the segment payload is materialised from the source store when
        available, otherwise synthesised at the configured size.
        """
        if not isinstance(node, ContinuStreamingNode):
            return
        segment = self.source.store.get(segment_id)
        if segment is None:
            segment = Segment(
                segment_id=segment_id, size_bits=self.config.segment_bits
            )
        node.consider_backup(segment)


class Phase(abc.ABC):
    """One pluggable step of the round pipeline.

    Subclasses set :attr:`name` (for reports) and :attr:`timing` (``"start"``
    to run when the round begins, ``"end"`` to run when the period elapses)
    and implement :meth:`execute`.  Phases must not carry *round-scoped*
    state — everything a round produces or consumes lives on the
    :class:`RoundContext`, so one instance can serve an entire run and be
    inserted via ``StreamingSystem(config, pipeline=...)`` without subtle
    re-entrancy.  Run-scoped accumulation (e.g. a metrics tap summing
    counters across rounds) is fine.
    """

    name: str = "phase"
    timing: str = START

    @abc.abstractmethod
    def execute(self, ctx: RoundContext) -> PhaseReport:
        """Run this phase's slice of the round against ``ctx``."""

    def report(self, **details: float) -> PhaseReport:
        """Convenience constructor for this phase's report."""
        return PhaseReport(phase=self.name, details=dict(details))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} timing={self.timing!r}>"
