"""Phase 6 — playback and the round's continuity sample (period end)."""

from __future__ import annotations

from repro.core.phases.base import END, Phase, PhaseReport, RoundContext


class PlaybackPhase(Phase):
    """Every consumer plays one period of media; continuity is sampled.

    A node that has not started yet waits for its startup buffer, then
    begins ``playback_lag`` behind the live edge — "following its
    neighbours' current steps", since every neighbour maintains the same
    lag.  The continuity sample is the fraction of started nodes that could
    play the whole period without stalling (or, under hard deadlines,
    without skipping).
    """

    name = "playback"
    timing = END

    def execute(self, ctx: RoundContext) -> PhaseReport:
        cfg = ctx.config
        playing = 0
        for nid in ctx.consumers:
            node = ctx.nodes[nid]
            if not node.playback.started:
                node.maybe_start_playback(
                    cfg.startup_segments, newest_available_id=ctx.newest_segment_id
                )
            if node.playback.started and node.can_play_round():
                playing += 1
            node.play_round(newest_available_id=ctx.newest_segment_id)
        ctx.nodes_playing = playing
        if ctx.tracker is not None:
            ctx.continuity = ctx.tracker.record_round(
                ctx.round_end, playing, len(ctx.consumers)
            )
        elif ctx.consumers:
            ctx.continuity = playing / len(ctx.consumers)
        return self.report(nodes_playing=playing, continuity=ctx.continuity)
