"""Phase 7 — churn and membership maintenance (period end)."""

from __future__ import annotations

from repro.core.phases.base import END, Phase, PhaseReport, RoundContext


class ChurnMaintenancePhase(Phase):
    """Apply the round's departures/arrivals, then repair the overlay.

    In dynamic environments the configured churn process removes a fraction
    of the population (graceful leavers hand their VoD backup to the
    counter-clockwise closest neighbour, abrupt failures do not) and admits
    newcomers through the Rendezvous Point.  In every environment, the
    repair pass drops dead partners, refills neighbour slots from overheard
    nodes, and keeps partnerships symmetric.  All overlay surgery lives on
    the :class:`~repro.core.overlay.OverlayManager`; this phase only decides
    *when* it happens.
    """

    name = "churn-maintenance"
    timing = END

    def execute(self, ctx: RoundContext) -> PhaseReport:
        assert ctx.manager is not None, "churn maintenance needs an OverlayManager"
        manager = ctx.manager
        joined = left = 0
        if not manager.churn.is_static:
            event = manager.churn.step(
                ctx.round_index,
                manager.alive_node_ids(),
                manager.streams.get("churn"),
            )
            for nid in event.leaving:
                manager.remove_node(nid, ctx.rng)
            for _ in event.joining:
                manager.admit_node(ctx.rng, now=ctx.round_start)
            joined, left = len(event.joining), len(event.leaving)
        manager.repair_neighbors()
        ctx.nodes_joined = joined
        ctx.nodes_left = left
        return self.report(nodes_joined=joined, nodes_left=left)
