"""Phase 3 — Urgent-Line prediction (ContinuStreaming only)."""

from __future__ import annotations

from repro.core.continu import ContinuStreamingNode
from repro.core.phases.base import Phase, PhaseReport, RoundContext


class UrgentLinePredictionPhase(Phase):
    """Predict which urgent segments gossip is about to miss (eq. (4), (8)).

    Runs on the start-of-period state — *before* the data scheduler — which
    is what lets the on-demand retrieval proceed in parallel with gossip and
    makes the paper's "repeated data" outcome possible: a predicted-missed
    segment may still arrive through the scheduler while its DHT lookup is
    in flight.
    """

    name = "urgent-line-prediction"

    def execute(self, ctx: RoundContext) -> PhaseReport:
        triggers = 0
        for nid in ctx.consumers:
            node = ctx.nodes[nid]
            if not isinstance(node, ContinuStreamingNode):
                continue
            prediction = node.predict_missed(ctx.newest_segment_id)
            if prediction.triggered:
                ctx.predictions[nid] = list(prediction.missed_segment_ids)
                triggers += 1
        ctx.prefetch_triggers = triggers
        return self.report(
            triggers=triggers,
            segments_predicted=sum(len(v) for v in ctx.predictions.values()),
        )
