"""Phase 5 — on-demand DHT retrieval of predicted-missed segments (Alg. 2)."""

from __future__ import annotations

from typing import Any

from repro.core.continu import ContinuStreamingNode
from repro.core.ondemand import OnDemandRetriever, PrefetchPlan
from repro.core.phases.base import Phase, PhaseReport, RoundContext
from repro.net.message import MessageKind
from repro.sim.engine import Simulator


class OnDemandRetrievalPhase(Phase):
    """Locate and download the urgent segments gossip is about to miss.

    The phase fires at the start of the period (the lookups run *in
    parallel* with the data scheduler) but the actual per-node retrieval is
    scheduled as a follow-up event on the discrete-event engine at the
    expected DHT fetch-completion time ``t_fetch`` (eq. (7)), capped at the
    end of the period.  Triggered nodes are visited in a per-round random
    order; because their events share one timestamp, the engine's
    deterministic tie-breaking preserves that order.

    Per node, each :class:`~repro.core.ondemand.PrefetchPlan`:

    * pays its DHT routing cost and lets every node on the routing paths
      overhear the others (peer-table maintenance for free);
    * is dropped as "repeated data" when the data scheduler delivered the
      segment while the lookup was in flight — the urgent ratio ``α``
      shrinks;
    * otherwise downloads from the located backup holder, subject to the
      shared per-period budgets, and the overdue/on-time outcome feeds the
      ``α`` adaptation when the node settles its pre-fetches at period end.
    """

    name = "on-demand-retrieval"

    def execute(self, ctx: RoundContext) -> PhaseReport:
        if not ctx.predictions:
            return self.report(nodes_triggered=0)
        order = list(ctx.predictions)
        ctx.rng.shuffle(order)
        if ctx.sim is None:
            # Minimal synthetic contexts (unit tests) run inline.
            for nid in order:
                self._retrieve_for_node(ctx, nid)
        else:
            delay = min(self._fetch_time(ctx), ctx.period)
            for nid in order:
                ctx.sim.schedule_at(
                    ctx.round_start + delay, self._retrieve_event, (ctx, nid)
                )
        return self.report(nodes_triggered=len(order))

    # ------------------------------------------------------------- internals
    def _retrieve_event(self, sim: Simulator, payload: Any) -> None:
        ctx, nid = payload
        self._retrieve_for_node(ctx, nid)

    def _fetch_time(self, ctx: RoundContext) -> float:
        if ctx.manager is not None:
            return ctx.manager.fetch_time_s
        return ctx.config.expected_fetch_time(0.05)

    def _retrieve_for_node(self, ctx: RoundContext, nid: int) -> None:
        """Run Algorithm 2 for one triggered node and execute the downloads."""
        assert ctx.manager is not None, "on-demand retrieval needs an OverlayManager"
        manager = ctx.manager
        cfg = ctx.config
        node = ctx.nodes[nid]
        assert isinstance(node, ContinuStreamingNode)
        retriever = OnDemandRetriever(
            node_id=nid,
            router=manager.router,
            replicas=cfg.backup_replicas,
            has_segment=self._holder_has_segment_fn(ctx),
            available_rate=lambda holder: self._holder_rate(ctx, holder),
        )
        plans = retriever.retrieve(ctx.predictions[nid])
        for plan in plans:
            ctx.ledger.record(
                MessageKind.DHT_ROUTING,
                plan.routing_bits(),
                count=plan.routing_messages,
            )
            self._overhear_paths(ctx, plan)
            if plan.segment_id in node.buffer:
                # The data scheduler delivered the segment while the DHT
                # lookup was in flight — the paper's "repeated data" case.
                # The routing cost was already paid; the duplicate
                # download is skipped and the urgent ratio shrinks.
                node.stats.prefetch_repeated += 1
                node.urgent_line.record_repeated(1)
                continue
            if not plan.located:
                continue
            supplier = plan.supplier_id
            assert supplier is not None
            if ctx.inbound_budget.get(nid, 0.0) < 1.0:
                continue
            if ctx.outbound_budget.get(supplier, 0.0) < 1.0:
                continue
            ctx.inbound_budget[nid] -= 1.0
            ctx.outbound_budget[supplier] -= 1.0
            arrival = ctx.round_start + manager.fetch_time_s
            deadline = node.deadline_of(plan.segment_id, now=ctx.round_start)
            node.receive_segment(plan.segment_id, prefetched=True)
            node.record_prefetch(plan.segment_id, arrival, deadline)
            ctx.consider_backup(node, plan.segment_id)
            ctx.ledger.record(MessageKind.DATA_PREFETCH, cfg.segment_bits)
            ctx.segments_prefetched += 1
        # Settle at the end of the period: everything launched this period
        # has either met or missed its deadline by then.
        node.settle_prefetches(ctx.round_end)

    @staticmethod
    def _holder_has_segment_fn(ctx: RoundContext):
        def has_segment(holder_id: int, segment_id: int) -> bool:
            holder = ctx.nodes.get(holder_id)
            if holder is None or not holder.alive:
                return False
            if isinstance(holder, ContinuStreamingNode):
                return holder.serves_segment(segment_id)
            return holder.has_segment(segment_id)

        return has_segment

    @staticmethod
    def _holder_rate(ctx: RoundContext, holder_id: int) -> float:
        holder = ctx.nodes.get(holder_id)
        if holder is None or not holder.alive:
            return 0.0
        return max(
            0.0,
            min(holder.outbound_rate, ctx.outbound_budget.get(holder_id, 0.0)),
        )

    @staticmethod
    def _overhear_paths(ctx: RoundContext, plan: PrefetchPlan) -> None:
        """Every node on a routing path overhears the other nodes on it."""
        assert ctx.manager is not None
        for path in plan.routing_paths:
            for hop in path:
                node = ctx.nodes.get(hop)
                if node is None or not node.alive:
                    continue
                ctx.manager.overhearing.overhear_path(
                    node.peer_table, path, now=ctx.round_start
                )
