"""Phase 1 — the media source generates this period's segments."""

from __future__ import annotations

from repro.core.phases.base import Phase, PhaseReport, RoundContext


class SourceGenerationPhase(Phase):
    """Emit every segment whose generation time falls inside this period.

    The source node buffers its own segments immediately (it is the origin
    of the gossip dissemination), and the context learns the new live edge
    ``newest_segment_id`` that every later phase anchors its windows on.
    """

    name = "source-generation"

    def execute(self, ctx: RoundContext) -> PhaseReport:
        generated = 0
        source_node = ctx.nodes[ctx.source_id]
        for segment in ctx.source.generate_until(ctx.round_end):
            source_node.buffer.add(segment.segment_id)
            generated += 1
        ctx.newest_segment_id = ctx.source.newest_segment_id
        return self.report(
            segments_generated=generated, newest_segment_id=ctx.newest_segment_id
        )
