"""Phase 2 — buffer-map gossip: start-of-period snapshots and budgets."""

from __future__ import annotations

from repro.core.phases.base import Phase, PhaseReport, RoundContext


class BufferMapGossipPhase(Phase):
    """Freeze the start-of-period state every other phase works from.

    * census: which nodes are alive this round, and which of them are
      consumers (everyone but the source);
    * per-round node bookkeeping (``begin_round``);
    * one buffer-map snapshot per alive node — the gossip of Section 4.2.
      Snapshots, not live buffers, are what the data scheduler sees, so a
      segment delivered mid-round only becomes visible next round, exactly
      like a real buffer-map exchange;
    * per-period inbound/outbound bandwidth budgets (``rate · τ``) that the
      scheduling and on-demand phases spend from.
    """

    name = "buffer-map-gossip"

    def execute(self, ctx: RoundContext) -> PhaseReport:
        alive = sorted(nid for nid, node in ctx.nodes.items() if node.alive)
        ctx.alive_ids = alive
        ctx.consumers = [nid for nid in alive if nid != ctx.source_id]
        for nid in alive:
            ctx.nodes[nid].begin_round()
        ctx.snapshots = {nid: ctx.nodes[nid].buffer_map() for nid in alive}
        ctx.inbound_budget = {
            nid: ctx.nodes[nid].inbound_rate * ctx.period for nid in alive
        }
        ctx.outbound_budget = {
            nid: ctx.nodes[nid].outbound_rate * ctx.period for nid in alive
        }
        return self.report(nodes_alive=len(alive), consumers=len(ctx.consumers))
