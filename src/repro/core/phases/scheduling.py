"""Phase 4 — data scheduling (Algorithm 1) and the transfers it triggers."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.phases.base import Phase, PhaseReport, RoundContext
from repro.net.message import MessageKind
from repro.streaming.buffermap import BufferMap, buffer_map_bits


class DataSchedulingPhase(Phase):
    """Every consumer plans its pull requests and executes the transfers.

    Consumers are visited in a per-round random order (no node is
    systematically first at the shared uplinks).  Each visit:

    1. fetches the buffer-map snapshot of every partner (control traffic
       charged per map);
    2. runs the node's scheduling policy over the snapshots (urgency+rarity
       for ContinuStreaming, rarest-first for the baseline);
    3. executes the requests against the shared per-period budgets,
       rerouting to a fallback supplier when the chosen uplink is already
       saturated this period;
    4. feeds the per-supplier delivery counts back into the node's
       receive-rate estimator.
    """

    name = "data-scheduling"

    def execute(self, ctx: RoundContext) -> PhaseReport:
        cfg = ctx.config
        map_bits = buffer_map_bits(cfg.buffer_capacity)
        delivered_total = 0
        order = list(ctx.consumers)
        ctx.rng.shuffle(order)
        for nid in order:
            node = ctx.nodes[nid]
            neighbor_maps = {
                nbr: ctx.snapshots[nbr]
                for nbr in node.neighbors
                if nbr in ctx.snapshots
            }
            # Control traffic: fetching the buffer map of each neighbour.
            if neighbor_maps:
                ctx.ledger.record(
                    MessageKind.BUFFER_MAP,
                    map_bits * len(neighbor_maps),
                    count=len(neighbor_maps),
                )
            if not neighbor_maps or ctx.newest_segment_id < 0:
                continue
            requests = node.plan_requests(
                neighbor_maps, ctx.newest_segment_id, cfg.scheduling_window
            )
            # Only suppliers we actually request from get a rate observation;
            # a requested supplier that delivers nothing decays, the others
            # keep their estimate.
            delivered_per_neighbor: Dict[int, int] = {
                request.supplier_id: 0 for request in requests
            }
            for request in requests:
                supplier = request.supplier_id
                if ctx.inbound_budget.get(nid, 0.0) < 1.0:
                    break
                if ctx.outbound_budget.get(supplier, 0.0) < 1.0:
                    # The chosen supplier's uplink is saturated this period;
                    # re-request the segment from any other partner that
                    # advertises it and still has capacity (a pull protocol
                    # retries within the period rather than dropping the
                    # segment on the floor).
                    supplier = self._fallback_supplier(
                        request.segment_id, neighbor_maps, ctx.outbound_budget
                    )
                    if supplier is None:
                        continue
                ctx.inbound_budget[nid] -= 1.0
                ctx.outbound_budget[supplier] -= 1.0
                node.receive_segment(request.segment_id)
                ctx.consider_backup(node, request.segment_id)
                ctx.ledger.record(MessageKind.DATA_SCHEDULED, cfg.segment_bits)
                delivered_per_neighbor[supplier] = (
                    delivered_per_neighbor.get(supplier, 0) + 1
                )
                delivered_total += 1
            node.observe_deliveries(delivered_per_neighbor)
        ctx.segments_scheduled = delivered_total
        return self.report(segments_delivered=delivered_total)

    @staticmethod
    def _fallback_supplier(
        segment_id: int,
        neighbor_maps: Mapping[int, BufferMap],
        outbound_budget: Mapping[int, float],
    ) -> Optional[int]:
        """Another partner that advertises ``segment_id`` and has uplink left."""
        best: Optional[int] = None
        best_budget = 1.0
        for neighbor_id, neighbor_map in neighbor_maps.items():
            if segment_id not in neighbor_map.present:
                continue
            budget = outbound_budget.get(neighbor_id, 0.0)
            if budget >= best_budget:
                best, best_budget = neighbor_id, budget
        return best
