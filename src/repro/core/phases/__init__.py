"""The pluggable round pipeline.

One scheduling period of a streaming protocol is a sequence of
:class:`~repro.core.phases.base.Phase` objects executed against a shared
:class:`~repro.core.phases.base.RoundContext`, driven by events on the
discrete-event engine.  The numbered phases of the paper's round live here,
one module each:

1. :class:`SourceGenerationPhase` — the source emits this period's segments;
2. :class:`BufferMapGossipPhase` — census, buffer-map snapshots, budgets;
3. :class:`UrgentLinePredictionPhase` — eq. (4)/(8) missed-segment prediction;
4. :class:`DataSchedulingPhase` — Algorithm 1 and the resulting transfers;
5. :class:`OnDemandRetrievalPhase` — Algorithm 2 over the DHT, in parallel
   with the scheduler, as delayed intra-round events;
6. :class:`PlaybackPhase` — one period of media, continuity sampled;
7. :class:`ChurnMaintenancePhase` — departures, arrivals, overlay repair.

Protocols bundle a node factory with a default pipeline and self-register
with the :class:`~repro.core.phases.registry.ProtocolRegistry`; see
:mod:`repro.core.phases.registry` for how to add one, and
``docs/architecture.md`` for the full picture.
"""

from repro.core.phases.base import END, START, Phase, PhaseReport, RoundContext
from repro.core.phases.churn import ChurnMaintenancePhase
from repro.core.phases.gossip import BufferMapGossipPhase
from repro.core.phases.ondemand import OnDemandRetrievalPhase
from repro.core.phases.playback import PlaybackPhase
from repro.core.phases.prediction import UrgentLinePredictionPhase
from repro.core.phases.registry import (
    ContinuStreamingProtocol,
    CoolStreamingProtocol,
    ProtocolRegistry,
    StreamingProtocol,
)
from repro.core.phases.scheduling import DataSchedulingPhase
from repro.core.phases.source import SourceGenerationPhase

__all__ = [
    "START",
    "END",
    "Phase",
    "PhaseReport",
    "RoundContext",
    "SourceGenerationPhase",
    "BufferMapGossipPhase",
    "UrgentLinePredictionPhase",
    "DataSchedulingPhase",
    "OnDemandRetrievalPhase",
    "PlaybackPhase",
    "ChurnMaintenancePhase",
    "StreamingProtocol",
    "ProtocolRegistry",
    "ContinuStreamingProtocol",
    "CoolStreamingProtocol",
]
