"""Protocol registration: a name → (node factory, default pipeline) map.

A *protocol* bundles the two things that distinguish one streaming system
from another in this reproduction:

* how its nodes are built (:meth:`StreamingProtocol.make_node`), and
* which phases its rounds run (:meth:`StreamingProtocol.build_pipeline`).

Protocols self-register with the :class:`ProtocolRegistry` through the
:meth:`ProtocolRegistry.register` class decorator, so a new variant — say a
no-prefetch ablation — lives in one file and never touches
:mod:`repro.core.system`::

    @ProtocolRegistry.register("noprefetch")
    class NoPrefetchProtocol(ContinuStreamingProtocol):
        def build_pipeline(self):
            return tuple(
                phase for phase in super().build_pipeline()
                if phase.name not in ("urgent-line-prediction", "on-demand-retrieval")
            )

    StreamingSystem(config, system="noprefetch").run()

The two systems evaluated by the paper are registered below.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Tuple, Type

from repro.core.baseline import CoolStreamingNode
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.core.phases.base import Phase
from repro.core.phases.churn import ChurnMaintenancePhase
from repro.core.phases.gossip import BufferMapGossipPhase
from repro.core.phases.ondemand import OnDemandRetrievalPhase
from repro.core.phases.playback import PlaybackPhase
from repro.core.phases.prediction import UrgentLinePredictionPhase
from repro.core.phases.scheduling import DataSchedulingPhase
from repro.core.phases.source import SourceGenerationPhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.overlay import OverlayManager


class StreamingProtocol(abc.ABC):
    """One streaming system: a node factory plus a default round pipeline."""

    #: Registry key; set by :meth:`ProtocolRegistry.register`.
    name: str = ""

    @abc.abstractmethod
    def make_node(self, env: "OverlayManager", ring_id: int) -> StreamingNode:
        """Build this protocol's node for ``ring_id`` in the given overlay."""

    @abc.abstractmethod
    def build_pipeline(self) -> Tuple[Phase, ...]:
        """The default phase sequence of one scheduling period."""


class ProtocolRegistry:
    """Class-level registry of the known streaming protocols."""

    _protocols: Dict[str, StreamingProtocol] = {}

    @classmethod
    def register(cls, name: str):
        """Class decorator: instantiate and register a protocol under ``name``."""

        def decorator(protocol_cls: Type[StreamingProtocol]) -> Type[StreamingProtocol]:
            instance = protocol_cls()
            # Set on the instance, not the class: registering one class under
            # two names (aliases) must not relabel earlier registrations.
            instance.name = name
            cls._protocols[name] = instance
            return protocol_cls

        return decorator

    @classmethod
    def get(cls, name: str) -> StreamingProtocol:
        """The protocol registered under ``name``.

        Raises:
            ValueError: for unknown names (lists the registered ones).
        """
        protocol = cls._protocols.get(name)
        if protocol is None:
            raise ValueError(
                f"unknown system {name!r}; expected one of {cls.names()}"
            )
        return protocol

    @classmethod
    def names(cls) -> Tuple[str, ...]:
        """Registered protocol names, in registration order."""
        return tuple(cls._protocols)

    @classmethod
    def known(cls, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name in cls._protocols

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove a registration (mainly for tests); unknown names are a no-op."""
        cls._protocols.pop(name, None)


@ProtocolRegistry.register("continustreaming")
class ContinuStreamingProtocol(StreamingProtocol):
    """The paper's system: urgency+rarity gossip plus DHT-assisted pre-fetch."""

    def make_node(self, env: "OverlayManager", ring_id: int) -> StreamingNode:
        cfg = env.config
        capacity = env.bandwidth.of(ring_id)
        return ContinuStreamingNode(
            ring_id,
            env.ring,
            buffer_capacity=cfg.buffer_capacity,
            playback_rate=cfg.playback_rate,
            period=cfg.scheduling_period,
            inbound_rate=capacity.inbound,
            outbound_rate=capacity.outbound,
            backup_replicas=cfg.backup_replicas,
            prefetch_limit=cfg.prefetch_limit,
            hop_latency=env.hop_latency_s,
            fetch_time=env.fetch_time_s,
            max_neighbors=cfg.connected_neighbors,
            overheard_capacity=cfg.overheard_capacity,
            playback_lag=cfg.playback_lag_segments,
            stall_on_miss=cfg.stall_on_miss,
            is_source=ring_id == env.source_id,
        )

    def build_pipeline(self) -> Tuple[Phase, ...]:
        return (
            SourceGenerationPhase(),
            BufferMapGossipPhase(),
            UrgentLinePredictionPhase(),
            DataSchedulingPhase(),
            OnDemandRetrievalPhase(),
            PlaybackPhase(),
            ChurnMaintenancePhase(),
        )


@ProtocolRegistry.register("coolstreaming")
class CoolStreamingProtocol(StreamingProtocol):
    """The rarest-first pull-gossip baseline (no prediction, no DHT)."""

    def make_node(self, env: "OverlayManager", ring_id: int) -> StreamingNode:
        cfg = env.config
        capacity = env.bandwidth.of(ring_id)
        return CoolStreamingNode(
            ring_id,
            env.ring,
            buffer_capacity=cfg.buffer_capacity,
            playback_rate=cfg.playback_rate,
            period=cfg.scheduling_period,
            inbound_rate=capacity.inbound,
            outbound_rate=capacity.outbound,
            max_neighbors=cfg.connected_neighbors,
            overheard_capacity=cfg.overheard_capacity,
            playback_lag=cfg.playback_lag_segments,
            stall_on_miss=cfg.stall_on_miss,
            is_source=ring_id == env.source_id,
        )

    def build_pipeline(self) -> Tuple[Phase, ...]:
        return (
            SourceGenerationPhase(),
            BufferMapGossipPhase(),
            DataSchedulingPhase(),
            PlaybackPhase(),
            ChurnMaintenancePhase(),
        )
