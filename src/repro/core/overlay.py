"""Overlay construction and maintenance, factored out of the system facade.

:class:`OverlayManager` owns everything about *who is in the overlay and how
they are wired*: the synthetic trace topology, the Rendezvous Point, latency
and bandwidth models, symmetric gossip partnerships, DHT finger tables,
churn-time admission/removal, and neighbour repair.  It deliberately knows
nothing about rounds, scheduling or playback — those live in the phase
pipeline (:mod:`repro.core.phases`), which reaches the manager through the
:class:`~repro.core.phases.base.RoundContext`.

Node construction is delegated to a ``node_factory`` callable (supplied by
the active :class:`~repro.core.phases.registry.ProtocolRegistry` entry), so
new protocols plug in without this module changing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.dht.peer_table import NeighborEntry
from repro.dht.ring import IdRing
from repro.dht.routing import GreedyRouter
from repro.membership.overhearing import OverhearingService
from repro.membership.rendezvous import RendezvousPoint
from repro.net.bandwidth import BandwidthModel
from repro.net.churn import ChurnProcess
from repro.net.latency import LatencyModel
from repro.net.topology import OverlayTopology
from repro.net.trace import TraceTopologyGenerator, build_streaming_overlay
from repro.sim.rng import RngStreams

#: Builds a protocol-appropriate node for a ring id.
NodeFactory = Callable[[int], StreamingNode]


class OverlayManager:
    """Builds and maintains one streaming overlay.

    Args:
        config: the run configuration.
        streams: the run's named random streams (shared with the facade so
            both draw from the same seeded universe).
        node_factory: creates the protocol-appropriate node for a ring id;
            assigned by the facade after the protocol is resolved.
    """

    def __init__(
        self,
        config: SystemConfig,
        streams: RngStreams,
        node_factory: Optional[NodeFactory] = None,
    ) -> None:
        self.config = config
        self.streams = streams
        self.node_factory = node_factory
        self.ring = IdRing(config.effective_id_space)
        self.nodes: Dict[int, StreamingNode] = {}
        self.overlay = OverlayTopology()
        self.source_id: Optional[int] = None
        self.rendezvous = RendezvousPoint(ring=self.ring)
        self.rendezvous.seed_rng(streams.get("rendezvous"))
        self.bandwidth = BandwidthModel(
            mean_rate=config.mean_inbound,
            min_rate=config.min_inbound,
            max_rate=config.max_inbound,
            heterogeneous=config.heterogeneous,
            source_outbound=config.source_outbound,
        )
        self.latency: Optional[LatencyModel] = None
        self.churn = ChurnProcess(
            leave_fraction=config.leave_fraction,
            join_fraction=config.join_fraction,
            schedule=config.churn_schedule,
        )
        self.hop_latency_s = 0.05
        self.fetch_time_s = 0.4
        self.router = GreedyRouter(self.ring, self._routing_peers_of)
        self.overhearing = OverhearingService(
            latency_of=self.latency_ms, is_alive=self.is_alive
        )
        self._built = False

    # ======================================================================= build
    def build(self) -> "OverlayManager":
        """Construct the overlay, models and nodes.  Idempotent."""
        if self._built:
            return self
        if self.node_factory is None:
            raise RuntimeError("node_factory must be set before build()")
        cfg = self.config
        trace_gen = TraceTopologyGenerator(seed=cfg.seed)
        trace = trace_gen.generate(cfg.num_nodes)

        # Ring ids come from the Rendezvous Point; trace index i -> ring id.
        ring_ids: List[int] = []
        for _ in range(cfg.num_nodes):
            ticket = self.rendezvous.admit()
            ring_ids.append(ticket.node_id)
        index_to_ring = {i: ring_ids[i] for i in range(cfg.num_nodes)}

        # Latency model keyed by ring id, ping times from the trace records.
        self.latency = LatencyModel(
            {index_to_ring[rec.node_id]: rec.ping_ms for rec in trace.records}
        )
        self.hop_latency_s = (
            cfg.hop_latency_ms / 1000.0
            if cfg.hop_latency_ms is not None
            else self.latency.mean_hop_latency_ms(
                sample_pairs=min(2000, cfg.num_nodes * 4),
                rng=self.streams.get("latency-estimate"),
            )
            / 1000.0
        )
        self.fetch_time_s = cfg.expected_fetch_time(self.hop_latency_s)

        # Streaming overlay: crawl graph densified to M neighbours, re-keyed
        # onto ring ids.
        dense = build_streaming_overlay(
            trace, cfg.connected_neighbors, self.streams.get("topology")
        )
        self.overlay = OverlayTopology(ring_ids)
        for a, b in dense.edges():
            self.overlay.add_edge(index_to_ring[a], index_to_ring[b])

        # The source is the node with the lowest ping time (closest to the
        # crawler / best connected), as good a stand-in as any.
        source_index = min(trace.records, key=lambda r: r.ping_ms).node_id
        self.source_id = index_to_ring[source_index]
        self.churn.protected.add(self.source_id)
        self.churn.reserve_ids(range(cfg.num_nodes))

        # Bandwidth assignment (paired across systems via the shared stream).
        self.bandwidth.assign(
            ring_ids, self.streams.get("bandwidth"), source_id=self.source_id
        )

        # Node objects, built by the active protocol's factory.
        for ring_id in ring_ids:
            self.nodes[ring_id] = self.node_factory(ring_id)

        # Connected neighbours: symmetric partnerships (buffer-map exchange is
        # mutual), ~M partners each, preferring low-latency overlay edges.
        self._install_partnerships()

        # DHT peer tables: loosely organised fingers over the joined ids.
        self._build_all_fingers()
        self._built = True
        return self

    def _install_partnerships(self) -> None:
        """Build the connected-neighbour (partner) relation, symmetrically.

        The buffer-map exchange of Section 4.2 is mutual, so partnerships are
        undirected: every overlay edge ``(a, b)`` becomes a partnership when
        both endpoints still have a free slot, walking the edges in order of
        increasing latency (the paper replaces neighbours by low-latency
        overheard nodes, so low-latency edges are preferred).  A second pass
        tops up nodes that are still short of ``M`` partners with random
        partners, tolerating a slight overshoot on the other endpoint so that
        nobody is left isolated.
        """
        assert self.latency is not None
        edges = sorted(
            self.overlay.edges(),
            key=lambda edge: self.latency_ms(edge[0], edge[1]),
        )
        for a, b in edges:
            self._try_partner(a, b, allow_overflow=False)
        rng = self.streams.get("partners")
        all_ids = sorted(self.nodes)
        for nid in all_ids:
            node = self.nodes[nid]
            attempts = 0
            while node.peer_table.neighbor_slots_free() > 0 and attempts < 50:
                attempts += 1
                other = int(all_ids[int(rng.integers(len(all_ids)))])
                if other == nid or node.peer_table.has_neighbor(other):
                    continue
                self._try_partner(nid, other, allow_overflow=True)

    def _try_partner(self, a: int, b: int, allow_overflow: bool) -> bool:
        """Create the symmetric partnership ``a <-> b`` if slots permit."""
        node_a, node_b = self.nodes.get(a), self.nodes.get(b)
        if node_a is None or node_b is None or a == b:
            return False
        if node_a.peer_table.has_neighbor(b) or node_b.peer_table.has_neighbor(a):
            return False
        if node_a.peer_table.neighbor_slots_free() == 0:
            return False
        if node_b.peer_table.neighbor_slots_free() == 0 and not allow_overflow:
            return False
        latency = self.latency_ms(a, b)
        added_a = node_a.peer_table.add_neighbor(
            NeighborEntry(peer_id=b, latency_ms=latency)
        )
        if not added_a:
            return False
        if not node_b.peer_table.add_neighbor(
            NeighborEntry(peer_id=a, latency_ms=latency)
        ):
            # Overflow path: force the reciprocal entry so the relation stays
            # symmetric even when b is already at capacity.
            node_b.peer_table.neighbors[a] = NeighborEntry(peer_id=a, latency_ms=latency)
        self.overlay.add_edge(a, b)
        # Optimistic rate priors: a TCP pull takes whatever the supplier's
        # uplink has to spare; contention is enforced by the per-period
        # outbound budgets rather than pre-divided here.
        node_a.rate_controller.register_neighbor(b, node_b.outbound_rate, 1)
        node_b.rate_controller.register_neighbor(a, node_a.outbound_rate, 1)
        return True

    def ensure_reciprocal(self, a: int, b: int) -> None:
        """Make sure the partnership ``a -> b`` also exists as ``b -> a``."""
        node_a, node_b = self.nodes.get(a), self.nodes.get(b)
        if node_a is None or node_b is None or a == b:
            return
        latency = self.latency_ms(a, b)
        if not node_b.peer_table.has_neighbor(a):
            entry = NeighborEntry(peer_id=a, latency_ms=latency)
            if not node_b.peer_table.add_neighbor(entry):
                node_b.peer_table.neighbors[a] = entry
            node_b.rate_controller.register_neighbor(a, node_a.outbound_rate, 1)
        if not node_a.peer_table.has_neighbor(b):
            entry = NeighborEntry(peer_id=b, latency_ms=latency)
            if not node_a.peer_table.add_neighbor(entry):
                node_a.peer_table.neighbors[b] = entry
            node_a.rate_controller.register_neighbor(b, node_b.outbound_rate, 1)
        self.overlay.add_edge(a, b)

    def _build_all_fingers(self) -> None:
        """Fill every node's DHT peers with random nodes from each level interval."""
        ids = np.asarray(sorted(self.nodes), dtype=np.int64)
        rng = self.streams.get("dht-fingers")
        for node in self.nodes.values():
            self.fill_fingers_for(node, ids, rng)

    def fill_fingers_for(
        self, node: StreamingNode, sorted_ids: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Populate ``node``'s DHT peer table from each ring-level interval."""
        owner = node.node_id
        for level in range(1, self.ring.bits + 1):
            start, end = self.ring.level_interval(owner, level)
            candidates = self._ids_in_interval(sorted_ids, start, end)
            if candidates.size == 0:
                continue
            peer = int(candidates[int(rng.integers(candidates.size))])
            if peer != owner:
                node.peer_table.set_dht_peer(peer, self.latency_ms(owner, peer))

    @staticmethod
    def _ids_in_interval(sorted_ids: np.ndarray, start: int, end: int) -> np.ndarray:
        if sorted_ids.size == 0 or start == end:
            return np.empty(0, dtype=np.int64)
        if start < end:
            lo = np.searchsorted(sorted_ids, start, side="left")
            hi = np.searchsorted(sorted_ids, end, side="left")
            return sorted_ids[lo:hi]
        lo = np.searchsorted(sorted_ids, start, side="left")
        hi = np.searchsorted(sorted_ids, end, side="left")
        return np.concatenate([sorted_ids[lo:], sorted_ids[:hi]])

    # ================================================================ small helpers
    def latency_ms(self, a: int, b: int) -> float:
        """One-way latency between two nodes (default when unmodelled)."""
        if self.latency is None or a not in self.latency or b not in self.latency:
            return 50.0
        return self.latency.one_way_ms(a, b)

    def is_alive(self, node_id: int) -> bool:
        """Whether ``node_id`` exists and has not departed."""
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def _routing_peers_of(self, node_id: int) -> Sequence[int]:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return ()
        return [
            peer
            for peer in node.peer_table.routing_candidates()
            if self.is_alive(peer)
        ]

    def alive_node_ids(self, include_source: bool = True) -> List[int]:
        """Ids of the currently alive nodes."""
        ids = [nid for nid, node in self.nodes.items() if node.alive]
        if not include_source and self.source_id is not None:
            ids = [nid for nid in ids if nid != self.source_id]
        return sorted(ids)

    # ======================================================== churn-time surgery
    def remove_node(
        self,
        node_id: int,
        rng: np.random.Generator,
        graceful: Optional[bool] = None,
        handover: bool = True,
    ) -> None:
        """Take ``node_id`` out of the overlay (graceful or abrupt).

        Args:
            node_id: the departing node.
            rng: random stream deciding graceful vs abrupt when ``graceful``
                is ``None`` (the simulator's path).
            graceful: force the departure kind instead of drawing it.
            handover: perform the graceful-leave backup handover in-memory.
                The live runtime passes ``False`` because its peers ship the
                handover as a wire message before the removal.
        """
        node = self.nodes.get(node_id)
        if node is None or not node.alive or node_id == self.source_id:
            return
        if graceful is None:
            graceful = rng.random() >= self.config.abrupt_leave_fraction
        if graceful and handover and isinstance(node, ContinuStreamingNode):
            successor = self.counter_clockwise_closest(node_id)
            if successor is not None:
                succ_node = self.nodes.get(successor)
                if isinstance(succ_node, ContinuStreamingNode):
                    succ_node.absorb_handover(node.handover_backup())
        node.mark_departed()
        self.overlay.remove_node(node_id)
        if self.latency is not None:
            self.latency.remove_node(node_id)
        self.bandwidth.remove(node_id)
        self.rendezvous.report_failure(node_id)
        # Other nodes purge it lazily through the overhearing service's
        # is_alive checks during neighbour repair and routing.

    def counter_clockwise_closest(self, node_id: int) -> Optional[int]:
        """The alive node counter-clockwise closest to ``node_id``."""
        best: Optional[int] = None
        best_dist: Optional[int] = None
        for other in self.alive_node_ids():
            if other == node_id:
                continue
            dist = self.ring.counter_clockwise_distance(node_id, other)
            if best_dist is None or dist < best_dist:
                best, best_dist = other, dist
        return best

    def admit_node(self, rng: np.random.Generator, now: float = 0.0) -> int:
        """Admit a newcomer via the Rendezvous Point and wire it up."""
        if self.node_factory is None:
            raise RuntimeError("node_factory must be set before admit_node()")
        cfg = self.config
        ticket = self.rendezvous.admit()
        ring_id = ticket.node_id
        # Synthetic ping time for the newcomer, same distribution as the trace.
        ping_ms = float(np.clip(rng.lognormal(np.log(100.0), 0.6), 5.0, 1500.0))
        if self.latency is not None:
            self.latency.add_node(ring_id, ping_ms)
        self.bandwidth.assign_one(ring_id, self.streams.get("bandwidth"))
        self.overlay.add_node(ring_id)
        node = self.node_factory(ring_id)
        node.join_time = now
        self.nodes[ring_id] = node

        # Contact the closest alive contacts (PING), adopt the nearest one's
        # peer table as a base, and wire up overlay edges.
        alive = self.alive_node_ids(include_source=True)
        contacts = [c for c in ticket.contacts if self.is_alive(c)]
        if not contacts and alive:
            contacts = [alive[int(rng.integers(len(alive)))]]
        if contacts:
            nearest = min(contacts, key=lambda c: self.latency_ms(ring_id, c))
            node.peer_table.adopt_base_table(self.nodes[nearest].peer_table)
        # Connected neighbours: contacts first, then random alive nodes.
        candidates = list(contacts)
        pool = [nid for nid in alive if nid != ring_id]
        if pool:
            extra = rng.choice(
                len(pool), size=min(len(pool), 3 * cfg.connected_neighbors),
                replace=False,
            )
            candidates.extend(pool[int(i)] for i in extra)
        self.overhearing.fill_neighbor_slots(node.peer_table, candidates)
        for nbr in node.neighbors:
            other = self.nodes.get(nbr)
            if other is not None:
                node.rate_controller.register_neighbor(nbr, other.outbound_rate, 1)
            self.ensure_reciprocal(ring_id, nbr)
        # DHT fingers for the newcomer (bootstrap + random fill).
        ids = np.asarray(alive + [ring_id], dtype=np.int64)
        ids.sort()
        self.fill_fingers_for(node, ids, self.streams.get("dht-fingers"))
        return ring_id

    def repair_neighbors(self) -> None:
        """Drop dead neighbours and refill slots from overheard/alive nodes."""
        rng = self.streams.get("repair")
        alive = self.alive_node_ids()
        if len(alive) <= 1:
            return
        for nid in alive:
            node = self.nodes[nid]
            table = node.peer_table
            for nbr in list(table.neighbor_ids()):
                if not self.is_alive(nbr):
                    replacement = self.overhearing.replace_failed_neighbor(table, nbr)
                    node.rate_controller.forget_neighbor(nbr)
                    if replacement is not None:
                        other = self.nodes.get(replacement)
                        if other is not None:
                            node.rate_controller.register_neighbor(
                                replacement, other.outbound_rate, 1
                            )
                        self.ensure_reciprocal(nid, replacement)
            self.overhearing.refresh(table)
            missing = table.neighbor_slots_free()
            if missing > 0:
                pool = [x for x in alive if x != nid and not table.has_neighbor(x)]
                if pool:
                    picks = rng.choice(
                        len(pool), size=min(len(pool), missing), replace=False
                    )
                    chosen = [pool[int(i)] for i in picks]
                    added = self.overhearing.fill_neighbor_slots(table, chosen)
                    for nbr in chosen[:added]:
                        other = self.nodes.get(nbr)
                        if other is not None:
                            node.rate_controller.register_neighbor(
                                nbr, other.outbound_rate, 1
                            )
                        self.ensure_reciprocal(nid, nbr)
